//! The determinism contract of the parallel client-execution engine:
//! running the same seeded course with `parallelism > 1` must produce a
//! [`CourseReport`] bit-identical to the serial run — same accuracy
//! history, same virtual-time accounting, same byte totals, same RNG
//! consumption — for every strategy × workload pair, and every monitor
//! observation must reconcile exactly as well.
//!
//! These tests drive the *speculative* execution path end to end: with
//! `parallelism = 2` the runner snapshots clients, runs their handlers on
//! pool workers at enqueue time, and adopts (or rolls back) the results at
//! the exact virtual-time positions the serial simulator would have used.

use fs_bench::strategies::Strategy;
use fs_bench::workloads::{cifar, femnist, twitter, Workload};
use fs_core::config::{CodecSpec, CompressionConfig};
use fs_core::runner::CourseReport;
use fs_monitor::{MonitorHandle, RecordingMonitor};
use proptest::prelude::*;
use std::sync::{Arc, Mutex, PoisonError};

/// Runs one seeded course at the given parallelism.
fn run_course(wl: &Workload, strat: Strategy, rounds: u64, parallelism: usize) -> CourseReport {
    let mut cfg = strat.configure(wl);
    cfg.target_accuracy = None;
    cfg.total_rounds = rounds;
    cfg.parallelism = parallelism;
    wl.build(cfg).run()
}

/// The acceptance bar: every strategy × workload pair, serial vs parallel.
#[test]
fn every_strategy_workload_pair_is_parallel_deterministic() {
    let seed = 11;
    for wl in [femnist(seed), cifar(seed), twitter(seed)] {
        for strat in Strategy::all() {
            let serial = run_course(&wl, strat, 2, 1);
            let parallel = run_course(&wl, strat, 2, 2);
            assert_eq!(
                serial,
                parallel,
                "{} / {}: parallel run diverged from serial",
                wl.name,
                strat.label()
            );
        }
    }
}

/// Stateful compression (error-feedback residuals + delta references) is
/// part of the client snapshot; a rolled-back speculation must not leak
/// codec state into later rounds.
#[test]
fn parallel_determinism_holds_with_stateful_compression() {
    let wl = femnist(5);
    let mut cfg = Strategy::GoalReceUnif.configure(&wl);
    cfg.target_accuracy = None;
    cfg.total_rounds = 4;
    cfg.compression = CompressionConfig {
        upload: Some(CodecSpec::TopK { ratio: 0.25 }),
        upload_delta: true,
        download: Some(CodecSpec::UniformQuant { bits: 8 }),
    };
    let serial = {
        let mut c = cfg.clone();
        c.parallelism = 1;
        wl.build(c).run()
    };
    let parallel = {
        let mut c = cfg;
        c.parallelism = 2;
        wl.build(c).run()
    };
    assert_eq!(serial, parallel, "stateful codecs broke determinism");
}

/// `parallelism = 0` (auto: all cores) must also match serial exactly.
#[test]
fn auto_parallelism_matches_serial() {
    let wl = twitter(3);
    let serial = run_course(&wl, Strategy::SyncVanilla, 3, 1);
    let auto = run_course(&wl, Strategy::SyncVanilla, 3, 0);
    assert_eq!(serial, auto, "parallelism = 0 diverged from serial");
}

/// Monitor reconciliation: every counter, every virtual-time span, and
/// every round record must be identical under parallel execution — the
/// per-client observations replayed from worker buffers land in the same
/// order and with the same values the serial dispatch produces.
#[test]
fn monitor_observations_reconcile_under_parallel_execution() {
    let wl = femnist(7);
    let observe = |parallelism: usize| {
        let mut cfg = Strategy::GoalAggrUnif.configure(&wl);
        cfg.target_accuracy = None;
        cfg.total_rounds = 3;
        cfg.parallelism = parallelism;
        let monitor = Arc::new(Mutex::new(RecordingMonitor::new()));
        let report = wl
            .build(cfg)
            .with_monitor(MonitorHandle::from_shared(monitor.clone()))
            .run();
        let mon = Arc::try_unwrap(monitor)
            .unwrap_or_else(|_| panic!("monitor still shared after run"))
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        (report, mon)
    };
    let (serial_report, serial_mon) = observe(1);
    let (parallel_report, parallel_mon) = observe(2);

    assert_eq!(serial_report, parallel_report);
    assert_eq!(
        serial_mon.counters(),
        parallel_mon.counters(),
        "counter totals diverged under parallel execution"
    );
    assert_eq!(
        serial_mon.rounds(),
        parallel_mon.rounds(),
        "round records diverged under parallel execution"
    );
    assert_eq!(
        serial_mon.spans(),
        parallel_mon.spans(),
        "virtual-time spans diverged under parallel execution"
    );
    parallel_mon
        .validate_nesting()
        .expect("replayed per-client spans stay well-nested");
    assert_eq!(parallel_mon.unbalanced_exits(), 0);

    // the byte counters must still reconcile against the sim-charged totals
    assert_eq!(
        parallel_mon.counter(fs_monitor::counters::UPLOADED_BYTES),
        parallel_report.uploaded_bytes
    );
    assert_eq!(
        parallel_mon.counter(fs_monitor::counters::DOWNLOADED_BYTES),
        parallel_report.downloaded_bytes
    );
}

proptest! {
    /// Randomized sweep over (seed, rounds, strategy, workload): serial and
    /// parallel runs of the same seeded course are always identical. Each
    /// case runs two full (tiny) courses, so the shape space is kept small.
    /// Invoked through the `#[test]` wrapper below, which bounds the default
    /// case count (each case costs two course runs).
    #[allow(dead_code)]
    fn random_courses_property(
        seed in 0u64..1000,
        rounds in 1u64..3,
        strat_idx in 0usize..Strategy::all().len(),
        wl_idx in 0usize..3,
        threads in 2usize..5,
    ) {
        let wl = match wl_idx {
            0 => femnist(seed),
            1 => cifar(seed),
            _ => twitter(seed),
        };
        let strat = Strategy::all()[strat_idx];
        let serial = run_course(&wl, strat, rounds, 1);
        let parallel = run_course(&wl, strat, rounds, threads);
        prop_assert_eq!(serial, parallel);
    }
}

#[test]
fn serial_equals_parallel_for_random_courses() {
    // default to a CI-sized sweep; PROPTEST_CASES still overrides
    if std::env::var_os("PROPTEST_CASES").is_none() {
        std::env::set_var("PROPTEST_CASES", "12");
    }
    random_courses_property();
}
