//! Guards the committed static-analysis debt baseline, the same way the
//! perf suite guards `results/BENCH_perf.json`: `ANALYZE_baseline.json` must
//! stay well-formed, and the live workspace must not owe more findings than
//! it records. This puts the FSA ratchet inside plain `cargo test`, so a
//! regression fails locally before CI's dedicated `fsa --check` step sees it.

use fs_analyze::{analyze_workspace, ratchet, Baseline};
use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn committed_analyze_baseline_is_valid() {
    let path = repo_root().join("ANALYZE_baseline.json");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let baseline = Baseline::from_json(&text).expect("well-formed baseline");
    baseline.validate().expect("internally consistent baseline");
}

#[test]
fn workspace_findings_stay_within_the_baseline() {
    let text = std::fs::read_to_string(repo_root().join("ANALYZE_baseline.json"))
        .expect("committed baseline");
    let baseline = Baseline::from_json(&text).expect("well-formed baseline");
    let report = analyze_workspace(repo_root()).expect("workspace scan");
    let outcome = ratchet(&report.findings, &baseline);
    assert!(
        outcome.passes(),
        "new static-analysis findings beyond ANALYZE_baseline.json:\n{}",
        outcome
            .new
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
