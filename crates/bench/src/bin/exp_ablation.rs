//! **Ablations** — the design choices DESIGN.md calls out, isolated:
//!
//! 1. *staleness discount exponent* `a` (update weight `1/(1+τ)^a`): off /
//!    mild / strong, under an aggressive async schedule that produces stale
//!    updates;
//! 2. *staleness tolerance*: drop-everything-stale (0) vs tolerate (20) —
//!    the paper's observation that Sync-OS is exactly tolerance 0;
//! 3. *aggregation goal*: the concurrency fraction that triggers
//!    `goal_achieved`, trading per-round information for round frequency;
//! 4. *server optimizer* (FedOpt family): plain averaging vs server-side
//!    Adam / Yogi on the aggregated delta.
//!
//! ```text
//! cargo run -p fs-bench --release --bin exp_ablation -- [--seed N] [--rounds N]
//! ```

use fs_bench::args::ExpArgs;
use fs_bench::output::{render_table, write_json};
use fs_bench::workloads::femnist;
use fs_core::aggregator::FedAvg;
use fs_core::config::{BroadcastManner, SamplerKind};
use fs_tensor::optim::ServerOpt;
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    study: String,
    setting: String,
    final_accuracy: f32,
    hours_to_target: Option<f64>,
    dropped_updates: u64,
    mean_staleness: f64,
}

fn main() {
    let args = ExpArgs::parse();
    let wl = femnist(args.seed_or(7));
    let rounds = args.rounds_or(150);
    let mut rows: Vec<AblationRow> = Vec::new();

    let run = |study: &str,
               setting: &str,
               goal: usize,
               tolerance: u64,
               discount: f32,
               server_opt: Option<ServerOpt>,
               rows: &mut Vec<AblationRow>| {
        let mut cfg = wl.base_cfg.clone().async_goal(
            goal,
            BroadcastManner::AfterReceiving,
            SamplerKind::Uniform,
        );
        cfg.total_rounds = rounds;
        cfg.staleness_tolerance = tolerance;
        cfg.staleness_discount = discount;
        cfg.target_accuracy = None;
        cfg.parallelism = args.threads_or(1);
        let factory = (wl.model_factory_builder)(&wl.dataset);
        let mut builder = fs_core::course::CourseBuilder::new(wl.dataset.clone(), factory, cfg)
            .fleet_config(wl.fleet_cfg.clone());
        if let Some(opt) = server_opt {
            builder = builder.aggregator(Box::new(FedAvg::with_server_opt(opt, discount)));
        }
        let mut runner = builder.build();
        let report = runner.run();
        let final_accuracy = report
            .history
            .last()
            .map(|r| r.metrics.accuracy)
            .unwrap_or(0.0);
        let hours = report
            .time_to_accuracy(wl.target_accuracy)
            .map(|s| s / 3600.0);
        let log = &runner.server.state.staleness_log;
        let mean_staleness = log.iter().sum::<u64>() as f64 / log.len().max(1) as f64;
        eprintln!(
            "  {study} / {setting}: acc {final_accuracy:.4}, hours {hours:?}, dropped {}, staleness {mean_staleness:.2}",
            report.dropped_updates
        );
        rows.push(AblationRow {
            study: study.to_string(),
            setting: setting.to_string(),
            final_accuracy,
            hours_to_target: hours,
            dropped_updates: report.dropped_updates,
            mean_staleness,
        });
    };

    // 1. staleness discount sweep (small goal -> lots of staleness)
    for a in [0.0f32, 0.5, 2.0] {
        run("discount", &format!("a={a}"), 4, 20, a, None, &mut rows);
    }
    // 2. staleness tolerance sweep
    for tol in [0u64, 2, 20] {
        run(
            "tolerance",
            &format!("tol={tol}"),
            4,
            tol,
            0.5,
            None,
            &mut rows,
        );
    }
    // 3. aggregation goal sweep
    for goal in [4usize, 8, 16] {
        run(
            "goal",
            &format!("goal={goal}"),
            goal,
            20,
            0.5,
            None,
            &mut rows,
        );
    }
    // 4. server optimizer (FedOpt family)
    run(
        "server_opt",
        "sgd(lr=1)",
        8,
        20,
        0.5,
        Some(ServerOpt::fedavg()),
        &mut rows,
    );
    run(
        "server_opt",
        "adam(lr=0.1)",
        8,
        20,
        0.5,
        Some(ServerOpt::adam(0.1)),
        &mut rows,
    );
    run(
        "server_opt",
        "yogi(lr=0.1)",
        8,
        20,
        0.5,
        Some(ServerOpt::yogi(0.1)),
        &mut rows,
    );

    println!("\nAblations on FEMNIST-like (async, after-receiving)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.study.clone(),
                r.setting.clone(),
                format!("{:.4}", r.final_accuracy),
                r.hours_to_target.map_or("—".into(), |h| format!("{h:.4}")),
                r.dropped_updates.to_string(),
                format!("{:.2}", r.mean_staleness),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "study",
                "setting",
                "final acc",
                "hours to 90%",
                "dropped",
                "mean staleness"
            ],
            &table
        )
    );
    let path = write_json("ablation", &rows).expect("write results");
    println!("wrote {path}");
}
