//! Events — the unit of control flow in FederatedScope (§3.2).
//!
//! The vocabulary itself lives in [`fs_net::event`], next to
//! [`fs_net::MessageKind`], so the static verifier (`fs-verify`) can share it
//! with the engine without a dependency cycle. This module re-exports it
//! under the historical `fs_core::event` path; handlers for condition events
//! are raised *by other handlers* via [`crate::ctx::Ctx::raise`], or by
//! timers ([`crate::ctx::Ctx::arm_timer`]).

pub use fs_net::event::{Condition, Event};
