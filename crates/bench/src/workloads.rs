//! Benchmark workloads: the three datasets + models of §5.2, at a scale that
//! completes in minutes on a laptop.
//!
//! | paper | here | model |
//! |---|---|---|
//! | FEMNIST (3,597 writers) | `femnist` — 60 writer-style clients | ConvNet2 |
//! | CIFAR-10 (Dirichlet, 1,000 clients) | `cifar` — 50 Dirichlet clients | ConvNet2 |
//! | Twitter (6,602 users) | `twitter` — 120 tiny users | logistic regression |

use fs_core::config::FlConfig;
use fs_core::course::{CourseBuilder, ModelFactory};
use fs_core::runner::StandaloneRunner;
use fs_data::synth::{cifar_like, femnist_like, twitter_like, ImageConfig, TwitterConfig};
use fs_data::FedDataset;
use fs_sim::FleetConfig;
use fs_tensor::model::{convnet2, logistic_regression};
use fs_tensor::optim::SgdConfig;

/// A ready-to-run benchmark workload.
pub struct Workload {
    /// Display name (matches the paper's dataset column).
    pub name: &'static str,
    /// The federated dataset.
    pub dataset: FedDataset,
    /// Builds the model for servers and clients.
    pub model_factory_builder: fn(&FedDataset) -> ModelFactory,
    /// Base course configuration (strategy fields overwritten per run).
    pub base_cfg: FlConfig,
    /// Fleet heterogeneity configuration.
    pub fleet_cfg: FleetConfig,
    /// The Table-1 target accuracy for time-to-accuracy runs.
    pub target_accuracy: f32,
    /// The aggregation goal used by `goal_achieved` strategies (App. F).
    pub aggregation_goal: usize,
    /// The per-round time budget used by `time_up` strategies (App. F).
    pub time_budget_secs: f64,
}

fn image_model_factory(dataset: &FedDataset) -> ModelFactory {
    let img = dataset.feature_shape[2];
    let classes = dataset.num_classes;
    Box::new(move |rng| Box::new(convnet2(1, img, 32, classes, 0.0, rng)))
}

fn linear_model_factory(dataset: &FedDataset) -> ModelFactory {
    let dim = dataset.input_dim();
    let classes = dataset.num_classes;
    Box::new(move |rng| Box::new(logistic_regression(dim, classes, rng)))
}

/// FEMNIST-like: writer feature skew, CNN. Target accuracy mirrors the
/// paper's 85%-of-achievable threshold at this scale.
pub fn femnist(seed: u64) -> Workload {
    let dataset = femnist_like(&ImageConfig {
        num_clients: 60,
        num_classes: 10,
        img: 8,
        per_client: 30,
        noise: 0.35,
        size_skew: 0.0,
        seed,
    });
    Workload {
        name: "FEMNIST-like",
        dataset,
        model_factory_builder: image_model_factory,
        base_cfg: FlConfig {
            total_rounds: 300,
            concurrency: 20,
            local_steps: 4,
            batch_size: 20,
            sgd: SgdConfig::with_lr(0.25),
            eval_every: 1,
            seed,
            ..Default::default()
        },
        fleet_cfg: FleetConfig {
            num_clients: 60,
            speed_sigma: 1.5,
            seed: seed ^ 0xf1ee,
            ..Default::default()
        },
        target_accuracy: 0.90,
        aggregation_goal: 8,
        time_budget_secs: 1.5,
    }
}

/// CIFAR-like: Dirichlet(0.5) label skew, CNN.
pub fn cifar(seed: u64) -> Workload {
    let dataset = cifar_like(
        &ImageConfig {
            num_clients: 50,
            num_classes: 10,
            img: 8,
            per_client: 40,
            noise: 0.35,
            size_skew: 0.0,
            seed,
        },
        Some(0.5),
    );
    Workload {
        name: "CIFAR-like",
        dataset,
        model_factory_builder: image_model_factory,
        base_cfg: FlConfig {
            total_rounds: 300,
            concurrency: 20,
            local_steps: 4,
            batch_size: 20,
            sgd: SgdConfig::with_lr(0.25),
            eval_every: 1,
            seed,
            ..Default::default()
        },
        fleet_cfg: FleetConfig {
            num_clients: 50,
            speed_sigma: 1.5,
            seed: seed ^ 0xf1ee,
            ..Default::default()
        },
        target_accuracy: 0.95,
        aggregation_goal: 8,
        time_budget_secs: 1.5,
    }
}

/// Twitter-like: many tiny users, logistic regression on bag-of-words.
pub fn twitter(seed: u64) -> Workload {
    // the dataset is pinned (the paper evaluates one fixed Twitter corpus;
    // run-to-run variation comes from the course/fleet seeds below): seed 21
    // draws a topic pair separable enough to reach the 70% target under the
    // in-repo RNG
    let dataset = twitter_like(&TwitterConfig {
        num_clients: 120,
        vocab: 60,
        words_per_text: 12,
        per_client: 10,
        seed: 21,
    });
    Workload {
        name: "Twitter-like",
        dataset,
        model_factory_builder: linear_model_factory,
        base_cfg: FlConfig {
            total_rounds: 300,
            concurrency: 40,
            local_steps: 4,
            batch_size: 2,
            sgd: SgdConfig::with_lr(0.3),
            eval_every: 1,
            seed,
            ..Default::default()
        },
        fleet_cfg: FleetConfig {
            num_clients: 120,
            speed_sigma: 1.5,
            seed: seed ^ 0xf1ee,
            ..Default::default()
        },
        target_accuracy: 0.70,
        aggregation_goal: 16,
        time_budget_secs: 0.15,
    }
}

impl Workload {
    /// Builds a runner for this workload under `cfg`.
    pub fn build(&self, cfg: FlConfig) -> StandaloneRunner {
        let factory = (self.model_factory_builder)(&self.dataset);
        CourseBuilder::new(self.dataset.clone(), factory, cfg)
            .fleet_config(self.fleet_cfg.clone())
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build_and_run_one_round() {
        for wl in [femnist(1), cifar(1), twitter(1)] {
            let mut cfg = wl.base_cfg.clone();
            cfg.total_rounds = 1;
            let mut runner = wl.build(cfg);
            let report = runner.run();
            assert_eq!(report.rounds, 1, "{}", wl.name);
            assert!(!report.history.is_empty());
        }
    }
}
