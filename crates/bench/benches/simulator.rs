//! Criterion: full-course event throughput of the standalone runner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fs_core::config::FlConfig;
use fs_core::course::CourseBuilder;
use fs_data::synth::{twitter_like, TwitterConfig};
use fs_tensor::model::logistic_regression;
use fs_tensor::optim::SgdConfig;

fn bench_course(c: &mut Criterion) {
    let mut group = c.benchmark_group("standalone_runner");
    group.sample_size(10);
    for clients in [20usize, 60] {
        let data = twitter_like(&TwitterConfig {
            num_clients: clients,
            per_client: 10,
            ..Default::default()
        });
        let dim = data.input_dim();
        group.bench_with_input(
            BenchmarkId::new("sync_course_10_rounds", clients),
            &data,
            |b, data| {
                b.iter(|| {
                    let cfg = FlConfig {
                        total_rounds: 10,
                        concurrency: clients / 2,
                        local_steps: 2,
                        batch_size: 4,
                        sgd: SgdConfig::with_lr(0.3),
                        ..Default::default()
                    };
                    let mut runner = CourseBuilder::new(
                        data.clone(),
                        Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
                        cfg,
                    )
                    .build();
                    runner.run()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_course);
criterion_main!(benches);
