//! The timestamp-ordered discrete-event queue.

use crate::VirtualTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An entry in the queue: a payload scheduled at a virtual time.
///
/// Ties are broken by insertion sequence number, so execution is fully
/// deterministic even when many events share a timestamp (e.g. a broadcast to
/// 100 clients all stamped with the same instant).
struct Entry<T> {
    at: VirtualTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic min-heap of `(VirtualTime, T)` events.
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `item` at virtual time `at`.
    pub fn push(&mut self, at: VirtualTime, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, item }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(VirtualTime, T)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.item))
    }

    /// Timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<VirtualTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A stable handle into an [`IndexedEventQueue`].
///
/// Handles are generation-checked: once the entry it names has been popped or
/// cancelled, the handle goes stale and every operation on it becomes a no-op
/// (`cancel` returns `None`, `contains` returns `false`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Handle {
    slot: u32,
    generation: u32,
}

/// Sentinel for "this slot is not currently in the heap".
const FREE: u32 = u32::MAX;

struct IndexedEntry<T> {
    at: VirtualTime,
    seq: u64,
    generation: u32,
    /// Position in `heap`, or [`FREE`] when the slot is unscheduled.
    pos: u32,
    item: Option<T>,
}

/// An indexed min-heap of `(VirtualTime, seq, T)` events with stable handles,
/// cancellation, and rescheduling.
///
/// This extends [`EventQueue`] with the operations a cohort-granular scheduler
/// needs: every `push` returns a [`Handle`] that can later `cancel` or
/// `reschedule` the entry in `O(log n)`. Determinism follows the same rule as
/// the plain queue — entries pop in `(at, seq)` order, where `seq` is the
/// insertion sequence number — and `push_at_seq` / `reserve_seqs` let a caller
/// reproduce a specific interleaving (e.g. the legacy runner's per-client
/// push order) while scheduling at batch granularity.
pub struct IndexedEventQueue<T> {
    slots: Vec<IndexedEntry<T>>,
    free: Vec<u32>,
    /// Binary min-heap of slot indices, keyed by `(slots[i].at, slots[i].seq)`.
    heap: Vec<u32>,
    next_seq: u64,
}

impl<T> Default for IndexedEventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> IndexedEventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            heap: Vec::new(),
            next_seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `item` at `at` with the next insertion sequence number.
    pub fn push(&mut self, at: VirtualTime, item: T) -> Handle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(at, seq, item)
    }

    /// Schedules `item` at `at` under an explicit sequence number.
    ///
    /// The caller must guarantee `(at, seq)` pairs are unique across live
    /// entries; the internal counter is bumped past `seq` so later `push`
    /// calls never collide.
    pub fn push_at_seq(&mut self, at: VirtualTime, seq: u64, item: T) -> Handle {
        self.next_seq = self.next_seq.max(seq + 1);
        self.insert(at, seq, item)
    }

    /// Reserves `n` consecutive sequence numbers and returns the first, for
    /// callers that stamp a batch of future entries up front.
    pub fn reserve_seqs(&mut self, n: u64) -> u64 {
        let first = self.next_seq;
        self.next_seq += n;
        first
    }

    /// Removes and returns the earliest event as `(at, seq, item)`.
    pub fn pop(&mut self) -> Option<(VirtualTime, u64, T)> {
        if self.heap.is_empty() {
            return None;
        }
        let slot = self.heap[0];
        let last = self.heap.pop().expect("heap non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.slots[last as usize].pos = 0;
            self.sift_down(0);
        }
        let e = &mut self.slots[slot as usize];
        e.pos = FREE;
        e.generation = e.generation.wrapping_add(1);
        let item = e.item.take().expect("scheduled slot holds an item");
        let (at, seq) = (e.at, e.seq);
        self.free.push(slot);
        Some((at, seq, item))
    }

    /// Key of the earliest event without removing it.
    pub fn peek_key(&self) -> Option<(VirtualTime, u64)> {
        self.heap.first().map(|&s| {
            let e = &self.slots[s as usize];
            (e.at, e.seq)
        })
    }

    /// `true` if `h` still names a scheduled entry.
    pub fn contains(&self, h: Handle) -> bool {
        self.slots
            .get(h.slot as usize)
            .is_some_and(|e| e.generation == h.generation && e.pos != FREE)
    }

    /// Cancels the entry named by `h`, returning its item, or `None` if the
    /// handle is stale.
    pub fn cancel(&mut self, h: Handle) -> Option<T> {
        if !self.contains(h) {
            return None;
        }
        let slot = h.slot;
        let pos = self.slots[slot as usize].pos as usize;
        let last = self.heap.pop().expect("heap non-empty");
        if pos < self.heap.len() {
            self.heap[pos] = last;
            self.slots[last as usize].pos = pos as u32;
            // The replacement may need to move either direction.
            self.sift_down(pos);
            self.sift_up(self.slots[last as usize].pos as usize);
        }
        let e = &mut self.slots[slot as usize];
        e.pos = FREE;
        e.generation = e.generation.wrapping_add(1);
        let item = e.item.take();
        self.free.push(slot);
        item
    }

    /// Moves the entry named by `h` to `at` under a fresh sequence number.
    /// Returns `false` (and does nothing) if the handle is stale. The handle
    /// remains valid after a successful reschedule.
    pub fn reschedule(&mut self, h: Handle, at: VirtualTime) -> bool {
        if !self.contains(h) {
            return false;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let e = &mut self.slots[h.slot as usize];
        e.at = at;
        e.seq = seq;
        let pos = e.pos as usize;
        self.sift_down(pos);
        self.sift_up(self.slots[h.slot as usize].pos as usize);
        true
    }

    fn insert(&mut self, at: VirtualTime, seq: u64, item: T) -> Handle {
        let slot = match self.free.pop() {
            Some(s) => {
                let e = &mut self.slots[s as usize];
                e.at = at;
                e.seq = seq;
                e.item = Some(item);
                s
            }
            None => {
                assert!(
                    self.slots.len() < FREE as usize,
                    "event queue slot overflow"
                );
                self.slots.push(IndexedEntry {
                    at,
                    seq,
                    generation: 0,
                    pos: FREE,
                    item: Some(item),
                });
                (self.slots.len() - 1) as u32
            }
        };
        let pos = self.heap.len();
        self.heap.push(slot);
        self.slots[slot as usize].pos = pos as u32;
        self.sift_up(pos);
        Handle {
            slot,
            generation: self.slots[slot as usize].generation,
        }
    }

    fn key(&self, slot: u32) -> (VirtualTime, u64) {
        let e = &self.slots[slot as usize];
        (e.at, e.seq)
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.key(self.heap[pos]) < self.key(self.heap[parent]) {
                self.swap(pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut pos: usize) {
        loop {
            let left = 2 * pos + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let mut smallest = left;
            if right < self.heap.len() && self.key(self.heap[right]) < self.key(self.heap[left]) {
                smallest = right;
            }
            if self.key(self.heap[smallest]) < self.key(self.heap[pos]) {
                self.swap(pos, smallest);
                pos = smallest;
            } else {
                break;
            }
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.slots[self.heap[a] as usize].pos = a as u32;
        self.slots[self.heap[b] as usize].pos = b as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(VirtualTime::from_secs(3.0), "c");
        q.push(VirtualTime::from_secs(1.0), "a");
        q.push(VirtualTime::from_secs(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = VirtualTime::from_secs(5.0);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(VirtualTime::from_secs(1.0), ());
        assert_eq!(q.peek_time(), Some(VirtualTime::from_secs(1.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(VirtualTime::from_secs(10.0), "late");
        q.push(VirtualTime::from_secs(1.0), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(VirtualTime::from_secs(5.0), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn indexed_pops_in_key_order() {
        let mut q = IndexedEventQueue::new();
        q.push(VirtualTime::from_secs(3.0), "c");
        q.push(VirtualTime::from_secs(1.0), "a");
        q.push(VirtualTime::from_secs(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, v)| v)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert!(q.is_empty());
    }

    #[test]
    fn indexed_ties_break_by_seq() {
        let mut q = IndexedEventQueue::new();
        let t = VirtualTime::from_secs(5.0);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<(u64, i32)> =
            std::iter::from_fn(|| q.pop().map(|(_, s, v)| (s, v))).collect();
        assert_eq!(order, (0..10).map(|i| (i as u64, i)).collect::<Vec<_>>());
    }

    #[test]
    fn indexed_cancel_removes_middle_entry() {
        let mut q = IndexedEventQueue::new();
        let _a = q.push(VirtualTime::from_secs(1.0), "a");
        let b = q.push(VirtualTime::from_secs(2.0), "b");
        let _c = q.push(VirtualTime::from_secs(3.0), "c");
        assert!(q.contains(b));
        assert_eq!(q.cancel(b), Some("b"));
        assert!(!q.contains(b));
        // A stale handle is inert.
        assert_eq!(q.cancel(b), None);
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, v)| v)).collect();
        assert_eq!(order, vec!["a", "c"]);
    }

    #[test]
    fn indexed_pop_invalidates_handle_even_after_slot_reuse() {
        let mut q = IndexedEventQueue::new();
        let a = q.push(VirtualTime::from_secs(1.0), "a");
        assert_eq!(q.pop().unwrap().2, "a");
        // Slot is reused with a bumped generation: the old handle stays stale.
        let b = q.push(VirtualTime::from_secs(2.0), "b");
        assert!(!q.contains(a));
        assert_eq!(q.cancel(a), None);
        assert!(q.contains(b));
        assert_eq!(q.cancel(b), Some("b"));
    }

    #[test]
    fn indexed_reschedule_moves_entry_and_keeps_handle() {
        let mut q = IndexedEventQueue::new();
        let a = q.push(VirtualTime::from_secs(10.0), "a");
        q.push(VirtualTime::from_secs(5.0), "b");
        assert!(q.reschedule(a, VirtualTime::from_secs(1.0)));
        assert_eq!(q.pop().unwrap().2, "a");
        assert!(!q.reschedule(a, VirtualTime::from_secs(1.0)));
        assert_eq!(q.pop().unwrap().2, "b");
    }

    #[test]
    fn indexed_explicit_seqs_reproduce_interleaving() {
        let mut q = IndexedEventQueue::new();
        let first = q.reserve_seqs(3);
        assert_eq!(first, 0);
        let t = VirtualTime::from_secs(1.0);
        // Insert out of order; pops must follow seq, not insertion.
        q.push_at_seq(t, first + 2, "third");
        q.push_at_seq(t, first, "first");
        q.push_at_seq(t, first + 1, "second");
        // A plain push after explicit seqs never collides.
        q.push(t, "fourth");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, v)| v)).collect();
        assert_eq!(order, vec!["first", "second", "third", "fourth"]);
    }

    #[test]
    fn indexed_peek_key_matches_next_pop() {
        let mut q = IndexedEventQueue::new();
        assert_eq!(q.peek_key(), None);
        q.push(VirtualTime::from_secs(2.0), "b");
        q.push(VirtualTime::from_secs(1.0), "a");
        assert_eq!(q.peek_key(), Some((VirtualTime::from_secs(1.0), 1)));
        let (at, seq, v) = q.pop().unwrap();
        assert_eq!((at, seq, v), (VirtualTime::from_secs(1.0), 1, "a"));
    }

    #[test]
    fn indexed_interleaved_matches_plain_queue() {
        let mut plain = EventQueue::new();
        let mut indexed = IndexedEventQueue::new();
        let times = [7.0, 1.0, 4.0, 4.0, 2.0, 9.0, 0.5, 4.0];
        for (i, &t) in times.iter().enumerate() {
            plain.push(VirtualTime::from_secs(t), i);
            indexed.push(VirtualTime::from_secs(t), i);
        }
        loop {
            match (plain.pop(), indexed.pop()) {
                (Some((ta, va)), Some((tb, _, vb))) => {
                    assert_eq!((ta, va), (tb, vb));
                }
                (None, None) => break,
                other => panic!("queues diverged: {other:?}"),
            }
        }
    }
}

#[cfg(test)]
mod indexed_proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Push(u16),
        Pop,
        Cancel(usize),
        Reschedule(usize, u16),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // The vendored proptest has no `prop_oneof`; pick the variant by a
        // mapped discriminant with the same 4:3:1:1 weighting.
        (0u8..9, 0u16..1000, 0usize..64).prop_map(|(which, t, i)| match which {
            0..=3 => Op::Push(t),
            4..=6 => Op::Pop,
            7 => Op::Cancel(i),
            _ => Op::Reschedule(i, t),
        })
    }

    proptest! {
        /// Random push/pop/cancel/reschedule sequences agree with a sorted
        /// reference model keyed by `(at, seq)`.
        #[test]
        fn matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
            let mut q = IndexedEventQueue::new();
            // Reference: live entries as (at, seq, id); handles by insertion id.
            let mut live: Vec<(VirtualTime, u64, u32)> = Vec::new();
            let mut handles: Vec<Handle> = Vec::new();
            let mut next_id = 0u32;
            let mut next_seq = 0u64;
            for op in ops {
                match op {
                    Op::Push(t) => {
                        let at = VirtualTime::from_secs(t as f64);
                        let h = q.push(at, next_id);
                        handles.push(h);
                        live.push((at, next_seq, next_id));
                        next_seq += 1;
                        next_id += 1;
                    }
                    Op::Pop => {
                        let got = q.pop();
                        if live.is_empty() {
                            prop_assert!(got.is_none());
                        } else {
                            let min = *live.iter().min().unwrap();
                            live.retain(|e| *e != min);
                            let (at, seq, id) = got.unwrap();
                            prop_assert_eq!((at, seq, id), min);
                        }
                    }
                    Op::Cancel(i) => {
                        if handles.is_empty() { continue; }
                        let h = handles[i % handles.len()];
                        let was_live = q.contains(h);
                        let got = q.cancel(h);
                        prop_assert_eq!(got.is_some(), was_live);
                        if let Some(id) = got {
                            prop_assert!(live.iter().any(|e| e.2 == id));
                            live.retain(|e| e.2 != id);
                        }
                    }
                    Op::Reschedule(i, t) => {
                        if handles.is_empty() { continue; }
                        let h = handles[i % handles.len()];
                        let was_live = q.contains(h);
                        let at = VirtualTime::from_secs(t as f64);
                        prop_assert_eq!(q.reschedule(h, at), was_live);
                        if was_live {
                            // Find which id this handle governs by peeking the
                            // queue later; instead track via cancel-free model:
                            // the handle's id is unknown here, so re-derive it
                            // by removing the entry whose id the queue reports
                            // on eventual pop. Simplest correct model update:
                            // reschedule assigns a fresh max seq.
                            let id = {
                                // A live handle maps 1:1 to a live id pushed at
                                // the same position in `handles`.
                                let idx = handles.iter().position(|x| *x == h).unwrap();
                                idx as u32
                            };
                            if let Some(e) = live.iter_mut().find(|e| e.2 == id) {
                                e.0 = at;
                                e.1 = next_seq;
                                next_seq += 1;
                            }
                        }
                    }
                }
            }
            // Drain and compare the tail.
            let mut rest: Vec<(VirtualTime, u64, u32)> =
                std::iter::from_fn(|| q.pop()).collect();
            live.sort();
            prop_assert_eq!(std::mem::take(&mut rest), live);
        }
    }
}
