//! The in-memory monitor backing every exporter.

use crate::api::{Monitor, TrackId};
use fs_sim::VirtualTime;
use fs_tensor::model::Metrics;
use std::collections::BTreeMap;
use std::time::Instant;

/// One completed span: a named virtual-time interval on a participant track.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpanRecord {
    /// Span label, e.g. `"handle:model_para"`.
    pub name: String,
    /// Category, e.g. `"dispatch"`, `"compute"`, `"comm"`.
    pub cat: String,
    /// Participant track the span ran on.
    pub track: u32,
    /// Start, in virtual seconds since the course origin.
    pub start_secs: f64,
    /// Duration in virtual seconds (zero-length spans are legal).
    pub dur_secs: f64,
    /// Nesting depth at which the span opened (0 = top level on its track).
    pub depth: u32,
    /// `true` for spans produced by `enter`/`exit` (strictly LIFO per track,
    /// so well-nested by construction); `false` for charged intervals
    /// (`span`), which model in-flight transfers and local compute and may
    /// legitimately overlap each other on a track.
    pub nested: bool,
}

impl SpanRecord {
    /// End of the span, in virtual seconds.
    pub fn end_secs(&self) -> f64 {
        self.start_secs + self.dur_secs
    }
}

/// Post-aggregation learning metrics for one round.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RoundRecord {
    /// Aggregation round (1-based, matching the server's state counter).
    pub round: u64,
    /// Virtual seconds at which the aggregation completed.
    pub time_secs: f64,
    /// Global-model loss at this round.
    pub loss: f32,
    /// Global-model accuracy at this round.
    pub accuracy: f32,
    /// Evaluated examples behind the metrics.
    pub n: u64,
}

impl RoundRecord {
    /// Reassembles the `Metrics` this record was fed from.
    pub fn metrics(&self) -> Metrics {
        Metrics {
            loss: self.loss,
            accuracy: self.accuracy,
            n: self.n as usize,
        }
    }
}

struct OpenSpan {
    name: &'static str,
    cat: &'static str,
    start: VirtualTime,
}

/// Records everything: spans per track, named counters, round metrics, and
/// wall-clock elapsed time.
///
/// Well-nestedness is an invariant of the data structure, not a convention:
/// each track keeps a stack of open spans, `exit` pops the innermost one,
/// and a completed [`SpanRecord`] carries the depth it opened at. An `exit`
/// with no matching `enter` cannot corrupt the record — it is counted in
/// [`unbalanced_exits`](Self::unbalanced_exits) instead.
pub struct RecordingMonitor {
    spans: Vec<SpanRecord>,
    open: BTreeMap<TrackId, Vec<OpenSpan>>,
    counters: BTreeMap<&'static str, u64>,
    rounds: Vec<RoundRecord>,
    unbalanced_exits: u64,
    wall_start: Instant,
}

impl Default for RecordingMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl RecordingMonitor {
    /// A fresh monitor; wall-clock elapsed time counts from here.
    pub fn new() -> Self {
        Self {
            spans: Vec::new(),
            open: BTreeMap::new(),
            counters: BTreeMap::new(),
            rounds: Vec::new(),
            unbalanced_exits: 0,
            wall_start: Instant::now(),
        }
    }

    /// Completed spans, in completion order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Per-round learning metrics, in recording order.
    pub fn rounds(&self) -> &[RoundRecord] {
        &self.rounds
    }

    /// All counters, name-sorted.
    pub fn counters(&self) -> &BTreeMap<&'static str, u64> {
        &self.counters
    }

    /// Current value of one counter (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// `exit` calls that arrived with no open span on their track.
    pub fn unbalanced_exits(&self) -> u64 {
        self.unbalanced_exits
    }

    /// Spans still open (instrumentation bug or truncated run).
    pub fn open_spans(&self) -> usize {
        self.open.values().map(Vec::len).sum()
    }

    /// Wall-clock seconds since the monitor was created.
    pub fn wall_secs(&self) -> f64 {
        self.wall_start.elapsed().as_secs_f64()
    }

    /// The round with the highest accuracy, if any were recorded.
    pub fn best_round(&self) -> Option<&RoundRecord> {
        self.rounds
            .iter()
            .max_by(|a, b| a.accuracy.total_cmp(&b.accuracy))
    }

    /// Checks the recorded spans for validity.
    ///
    /// Nested (`enter`/`exit`) spans must be well-nested per track: spans at
    /// the same depth must not overlap, and a span must lie within the one
    /// (if any) containing it at the next lower depth. Charged interval
    /// spans (`span`) model in-flight transfers and local compute; they may
    /// overlap freely but must have non-negative finite extents.
    ///
    /// Returns the first violation found, as a human-readable description.
    pub fn validate_nesting(&self) -> Result<(), String> {
        if self.unbalanced_exits > 0 {
            return Err(format!("{} unbalanced exit(s)", self.unbalanced_exits));
        }
        let mut by_track: BTreeMap<u32, Vec<&SpanRecord>> = BTreeMap::new();
        for s in &self.spans {
            if !(s.dur_secs >= 0.0 && s.start_secs.is_finite() && s.dur_secs.is_finite()) {
                return Err(format!("span {:?} has an invalid extent", s.name));
            }
            if s.nested {
                by_track.entry(s.track).or_default().push(s);
            }
        }
        for (track, mut spans) in by_track {
            // sort by start, outermost (lowest depth) first on ties so
            // containment checks see parents before children
            spans.sort_by(|a, b| {
                a.start_secs
                    .total_cmp(&b.start_secs)
                    .then(a.depth.cmp(&b.depth))
            });
            // simulate the stack: an active span at depth d must contain
            // every later span opening at depth > d before it ends. A span
            // whose end touches the next start stays active only when it can
            // still be a parent (deeper child at the shared instant) — this
            // keeps zero-length dispatch spans, where enter and exit share a
            // virtual timestamp, well-defined.
            let mut active: Vec<&SpanRecord> = Vec::new();
            for s in spans {
                while let Some(top) = active.last() {
                    let ended_before = top.end_secs() < s.start_secs - 1e-12;
                    let touches = top.end_secs() <= s.start_secs + 1e-12;
                    if ended_before || (touches && s.depth <= top.depth) {
                        active.pop();
                    } else {
                        break;
                    }
                }
                if s.depth as usize != active.len() {
                    return Err(format!(
                        "track {track}: span {:?} at depth {} but {} ancestors active",
                        s.name,
                        s.depth,
                        active.len()
                    ));
                }
                if let Some(top) = active.last() {
                    if s.end_secs() > top.end_secs() + 1e-12 {
                        return Err(format!(
                            "track {track}: span {:?} escapes its parent {:?}",
                            s.name, top.name
                        ));
                    }
                }
                active.push(s);
            }
        }
        Ok(())
    }
}

impl Monitor for RecordingMonitor {
    fn enter(&mut self, track: TrackId, name: &'static str, cat: &'static str, at: VirtualTime) {
        self.open.entry(track).or_default().push(OpenSpan {
            name,
            cat,
            start: at,
        });
    }

    fn exit(&mut self, track: TrackId, at: VirtualTime) {
        let stack = self.open.entry(track).or_default();
        match stack.pop() {
            Some(span) => {
                let depth = stack.len() as u32;
                self.spans.push(SpanRecord {
                    name: span.name.to_string(),
                    cat: span.cat.to_string(),
                    track,
                    start_secs: span.start.as_secs(),
                    dur_secs: (at - span.start).max(0.0),
                    depth,
                    nested: true,
                });
            }
            None => self.unbalanced_exits += 1,
        }
    }

    fn span(
        &mut self,
        track: TrackId,
        name: &'static str,
        cat: &'static str,
        start: VirtualTime,
        dur_secs: f64,
    ) {
        let depth = self.open.get(&track).map_or(0, Vec::len) as u32;
        self.spans.push(SpanRecord {
            name: name.to_string(),
            cat: cat.to_string(),
            track,
            start_secs: start.as_secs(),
            dur_secs: dur_secs.max(0.0),
            depth,
            nested: false,
        });
    }

    fn add(&mut self, counter: &'static str, delta: u64) {
        *self.counters.entry(counter).or_insert(0) += delta;
    }

    fn round(&mut self, round: u64, time: VirtualTime, metrics: &Metrics) {
        self.rounds.push(RoundRecord {
            round,
            time_secs: time.as_secs(),
            loss: metrics.loss,
            accuracy: metrics.accuracy,
            n: metrics.n as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::counters;
    use proptest::prelude::*;

    fn t(secs: f64) -> VirtualTime {
        VirtualTime::from_secs(secs)
    }

    #[test]
    fn spans_nest_and_record_depth() {
        let mut m = RecordingMonitor::new();
        m.enter(0, "outer", "dispatch", t(0.0));
        m.enter(0, "inner", "compute", t(1.0));
        m.exit(0, t(2.0));
        m.exit(0, t(3.0));
        assert_eq!(m.spans().len(), 2);
        // inner completes first
        assert_eq!(m.spans()[0].name, "inner");
        assert_eq!(m.spans()[0].depth, 1);
        assert_eq!(m.spans()[1].name, "outer");
        assert_eq!(m.spans()[1].depth, 0);
        assert!((m.spans()[1].dur_secs - 3.0).abs() < 1e-12);
        assert_eq!(m.open_spans(), 0);
        m.validate_nesting().unwrap();
    }

    #[test]
    fn tracks_are_independent() {
        let mut m = RecordingMonitor::new();
        m.enter(0, "srv", "dispatch", t(0.0));
        m.enter(3, "cli", "dispatch", t(0.5));
        m.exit(0, t(1.0)); // closes srv, not cli
        m.exit(3, t(2.0));
        assert_eq!(m.spans()[0].name, "srv");
        assert_eq!(m.spans()[0].track, 0);
        assert_eq!(m.spans()[1].name, "cli");
        assert_eq!(m.spans()[1].track, 3);
        m.validate_nesting().unwrap();
    }

    #[test]
    fn unbalanced_exit_is_counted_not_recorded() {
        let mut m = RecordingMonitor::new();
        m.exit(0, t(1.0));
        assert_eq!(m.unbalanced_exits(), 1);
        assert!(m.spans().is_empty());
        assert!(m.validate_nesting().is_err());
    }

    #[test]
    fn complete_span_inherits_current_depth() {
        let mut m = RecordingMonitor::new();
        m.enter(1, "dispatch", "dispatch", t(0.0));
        m.span(1, "compute", "compute", t(0.0), 4.0);
        m.exit(1, t(5.0));
        let compute = &m.spans()[0];
        assert_eq!(compute.depth, 1);
        assert!((compute.dur_secs - 4.0).abs() < 1e-12);
        m.validate_nesting().unwrap();
    }

    #[test]
    fn charged_intervals_may_overlap_but_nested_spans_may_not() {
        // two downloads in flight to the same client at once — legal
        let mut m = RecordingMonitor::new();
        m.span(7, "download", "comm", t(0.0), 5.0);
        m.span(7, "download", "comm", t(2.0), 5.0);
        m.validate_nesting().unwrap();
        // the same shape from enter/exit would be a broken call structure,
        // which the recorder itself straightens into nested spans — so force
        // the overlap through two dispatches whose recorded extents collide
        let mut bad = RecordingMonitor::new();
        bad.spans.push(SpanRecord {
            name: "a".into(),
            cat: "dispatch".into(),
            track: 7,
            start_secs: 0.0,
            dur_secs: 5.0,
            depth: 0,
            nested: true,
        });
        bad.spans.push(SpanRecord {
            name: "b".into(),
            cat: "dispatch".into(),
            track: 7,
            start_secs: 2.0,
            dur_secs: 5.0,
            depth: 0,
            nested: true,
        });
        assert!(bad.validate_nesting().is_err());
    }

    #[test]
    fn zero_length_dispatch_spans_validate() {
        // the engine's handler spans open and close at the same virtual
        // instant; several on one track at the same timestamp are sequential
        let mut m = RecordingMonitor::new();
        m.enter(0, "join_in", "dispatch", t(1.0));
        m.exit(0, t(1.0));
        m.enter(0, "join_in", "dispatch", t(1.0));
        m.exit(0, t(1.0));
        m.enter(0, "model_para", "dispatch", t(2.0));
        m.exit(0, t(2.0));
        m.validate_nesting().unwrap();
    }

    #[test]
    fn counters_accumulate() {
        let mut m = RecordingMonitor::new();
        m.add(counters::UPLOADED_BYTES, 100);
        m.add(counters::UPLOADED_BYTES, 24);
        m.add(counters::MESSAGES_DELIVERED, 1);
        assert_eq!(m.counter(counters::UPLOADED_BYTES), 124);
        assert_eq!(m.counter(counters::MESSAGES_DELIVERED), 1);
        assert_eq!(m.counter("unknown"), 0);
    }

    #[test]
    fn rounds_and_best() {
        let mut m = RecordingMonitor::new();
        m.round(
            1,
            t(10.0),
            &Metrics {
                loss: 1.0,
                accuracy: 0.4,
                n: 50,
            },
        );
        m.round(
            2,
            t(20.0),
            &Metrics {
                loss: 0.8,
                accuracy: 0.6,
                n: 50,
            },
        );
        m.round(
            3,
            t(30.0),
            &Metrics {
                loss: 0.9,
                accuracy: 0.5,
                n: 50,
            },
        );
        let best = m.best_round().unwrap();
        assert_eq!(best.round, 2);
        assert_eq!(best.metrics().n, 50);
    }

    #[test]
    fn round_record_serde_roundtrip() {
        let r = RoundRecord {
            round: 7,
            time_secs: 123.5,
            loss: 0.25,
            accuracy: 0.875,
            n: 1000,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: RoundRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    /// One dispatch on a track: a span that may charge nested compute/comm
    /// intervals and nested sub-spans, mirroring how the engine instruments
    /// handler dispatch.
    fn dispatch(m: &mut RecordingMonitor, track: TrackId, start: f64, shape: &[u8]) -> f64 {
        m.enter(track, "dispatch", "dispatch", t(start));
        let mut now = start;
        for &op in shape {
            match op % 3 {
                0 => {
                    m.span(track, "compute", "compute", t(now), 0.5);
                    now += 0.5;
                }
                1 => {
                    m.enter(track, "sub", "dispatch", t(now));
                    m.span(track, "comm", "comm", t(now), 0.25);
                    now += 0.25;
                    m.exit(track, t(now));
                }
                _ => {
                    now += 0.1;
                }
            }
        }
        now += 0.01;
        m.exit(track, t(now));
        now
    }

    proptest! {
        /// Arbitrary interleavings of dispatches across tracks — the shapes
        /// and ordering the engine can produce — always validate.
        #[test]
        fn arbitrary_interleavings_stay_well_nested(
            work in proptest::collection::vec(
                (0u32..5, proptest::collection::vec(0u8..6, 0..6)),
                0..24,
            )
        ) {
            let mut m = RecordingMonitor::new();
            let mut clocks = std::collections::BTreeMap::new();
            for (track, shape) in work {
                let now = clocks.entry(track).or_insert(0.0);
                *now = dispatch(&mut m, track, *now, &shape);
            }
            prop_assert_eq!(m.open_spans(), 0);
            prop_assert_eq!(m.unbalanced_exits(), 0);
            prop_assert!(m.validate_nesting().is_ok(),
                "nesting violated: {:?}", m.validate_nesting());
        }
    }
}
