//! `fs-tensor` — the machine-learning substrate for fedscope-rs.
//!
//! FederatedScope (VLDB 2023) runs on PyTorch/TensorFlow; mature Rust
//! equivalents do not exist, so this crate implements from scratch everything
//! the platform's `Trainer`s need:
//!
//! * [`Tensor`] — a dense, row-major `f32` tensor with the linear algebra the
//!   layers require (matmul, transpose, elementwise ops, reductions);
//! * [`layer`] — neural-network layers with **manual analytic gradients**
//!   (`Linear`, `Conv2d` via im2col, `BatchNorm1d`, `Relu`, `Dropout`,
//!   `MaxPool2d`, `Flatten`), composed by [`layer::Sequential`];
//! * [`model`] — the [`model::Model`] trait plus the architectures used in the
//!   paper's evaluation: logistic regression (Twitter), a two-convolution CNN
//!   (FEMNIST / CIFAR-10, the paper's "ConvNet2"), an MLP, and a dense GCN for
//!   the multi-goal graph scenarios (§3.4.2);
//! * [`optim`] — client-side SGD with momentum / weight decay / proximal
//!   terms (FedProx, Ditto, pFedMe all need the proximal form) and the
//!   server-side optimizers used by FedOpt (SGD / Adam / Yogi);
//! * [`params`] — [`params::ParamMap`], the name-addressed parameter
//!   collection every FL message carries. Name-addressing is what makes
//!   personalization algorithms such as FedBN ("do not share `bn.*` keys")
//!   one-line filters.
//!
//! Every gradient in this crate is verified against finite differences in the
//! test suite.

pub mod init;
pub mod layer;
pub mod loss;
pub mod model;
pub mod optim;
pub mod params;
pub mod tensor;

pub use params::ParamMap;
pub use tensor::Tensor;
