//! Auto-tuning (§4.3): successive halving over an FL course's
//! hyperparameters, then FedEx adapting client-wise learning rates inside
//! the rounds.
//!
//! ```text
//! cargo run --release --example autotune
//! ```

use fedscope::autotune::objective::{FlObjective, Objective};
use fedscope::autotune::sha::successive_halving;
use fedscope::autotune::space::{Param, SearchSpace};
use fedscope::autotune::FedExHook;
use fedscope::core::config::FlConfig;
use fedscope::data::synth::{twitter_like, TwitterConfig};
use fedscope::tensor::model::{logistic_regression, Model};
use fedscope::tensor::optim::SgdConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let data = twitter_like(&TwitterConfig {
        num_clients: 40,
        per_client: 16,
        ..Default::default()
    });
    let dim = data.input_dim();
    let base = FlConfig {
        concurrency: 20,
        batch_size: 4,
        sgd: SgdConfig::with_lr(0.1),
        seed: 6,
        ..Default::default()
    };
    let space = SearchSpace::new()
        .with(
            "lr",
            Param::Float {
                lo: 0.01,
                hi: 2.0,
                log: true,
            },
        )
        .with("local_steps", Param::Int { lo: 1, hi: 8 });

    // successive halving: 8 configurations, rungs of 3 rounds, keep half
    let mut obj = FlObjective::new(
        data.clone(),
        Arc::new(move |rng: &mut StdRng| {
            Box::new(logistic_regression(dim, 2, rng)) as Box<dyn Model>
        }),
        base.clone(),
    );
    let mut rng = StdRng::seed_from_u64(1);
    let outcome = successive_halving(&space, &mut obj, 8, 3, 2, &mut rng);
    println!(
        "SHA best config: lr={:.3}, local_steps={} -> val loss {:.4}",
        outcome.best_config["lr"], outcome.best_config["local_steps"], outcome.best_result.val_loss
    );
    println!("best-seen trace (rounds spent -> best val loss):");
    for p in outcome.trace.iter().step_by(4) {
        println!("  {:>4} -> {:.4}", p.cumulative_cost, p.best_val_loss);
    }

    // FedEx: client-wise exploration inside the rounds of one course
    let hook = FedExHook::new(0.2);
    let mut obj = FlObjective::new(
        data,
        Arc::new(move |rng: &mut StdRng| {
            Box::new(logistic_regression(dim, 2, rng)) as Box<dyn Model>
        }),
        base,
    );
    obj.trainer_hook = Some(hook.clone());
    let (result, _) = obj.run(&outcome.best_config, 15, None);
    println!(
        "\nFedEx run: val loss {:.4}, test acc {:.4}",
        result.val_loss, result.test_accuracy
    );
    let policy = hook.last_policy.lock().unwrap().clone();
    if let Some(policy) = policy {
        // fsa::allow(FSA040, the binding above clones the Arc out of the guard; no lock is held here)
        let probs = policy.lock().unwrap().probabilities();
        println!("FedEx arm probabilities after the course: {probs:?}");
    }
}
