// FSA090 fixture: a suppression without a reason.
pub fn head(xs: &[u32]) -> u32 {
    // fsa::allow(FSA020)
    *xs.first().unwrap()
}
