// FSA091 fixture: a stale suppression on a clean line.
pub fn id(x: u32) -> u32 {
    // fsa::allow(FSA020, nothing here unwraps anymore)
    x + 1
}
