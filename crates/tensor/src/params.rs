//! Name-addressed parameter collections.
//!
//! Every message exchanged in an FL course carries model parameters (or
//! gradients, deltas, …) as a [`ParamMap`]: an ordered map from parameter name
//! (e.g. `"conv1.weight"`) to [`Tensor`]. Name-addressing is load-bearing for
//! the paper's personalization support — FedBN is literally "share every key
//! that does not start with `bn.`", and multi-goal FL shares only an agreed
//! subset of keys (the *consensus set*, §3.4.2).

use crate::Tensor;
use std::collections::BTreeMap;

/// An ordered map of named tensors.
///
/// Backed by a `BTreeMap` so iteration order is deterministic — determinism
/// matters because aggregation, wire encoding, and test assertions all iterate
/// the map.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParamMap {
    entries: BTreeMap<String, Tensor>,
}

impl ParamMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a named tensor.
    pub fn insert(&mut self, name: impl Into<String>, t: Tensor) {
        self.entries.insert(name.into(), t);
    }

    /// Looks up a tensor by name.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.entries.get(name)
    }

    /// Mutable lookup by name.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Tensor> {
        self.entries.get_mut(name)
    }

    /// Removes and returns a named tensor.
    pub fn remove(&mut self, name: &str) -> Option<Tensor> {
        self.entries.remove(name)
    }

    /// `true` when the map contains `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Number of named tensors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the map holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(name, tensor)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates with mutable tensors, in name order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&str, &mut Tensor)> {
        self.entries.iter_mut().map(|(k, v)| (k.as_str(), v))
    }

    /// Parameter names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(|k| k.as_str())
    }

    /// Total number of scalar elements across all tensors.
    pub fn numel(&self) -> usize {
        self.entries.values().map(Tensor::numel).sum()
    }

    /// A map with the same keys/shapes, all zeros.
    pub fn zeros_like(&self) -> Self {
        let entries = self
            .entries
            .iter()
            .map(|(k, v)| (k.clone(), v.zeros_like()))
            .collect();
        Self { entries }
    }

    /// `self[k] += alpha * rhs[k]` for every key of `rhs`.
    ///
    /// # Panics
    /// Panics if `rhs` contains a key missing from `self` or with a different
    /// shape — both indicate a protocol error in the FL course.
    pub fn add_scaled(&mut self, alpha: f32, rhs: &ParamMap) {
        for (k, v) in rhs.iter() {
            let dst = self
                .entries
                .get_mut(k)
                .unwrap_or_else(|| panic!("add_scaled: missing key {k:?}"));
            dst.add_scaled(alpha, v);
        }
    }

    /// Multiplies every tensor by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for t in self.entries.values_mut() {
            t.scale(alpha);
        }
    }

    /// Elementwise difference `self - rhs` over the keys of `self`.
    ///
    /// # Panics
    /// Panics if `rhs` is missing any key of `self`.
    pub fn sub(&self, rhs: &ParamMap) -> ParamMap {
        let entries = self
            .entries
            .iter()
            .map(|(k, v)| {
                let other = rhs
                    .get(k)
                    .unwrap_or_else(|| panic!("sub: missing key {k:?}"));
                (k.clone(), v.sub(other))
            })
            .collect();
        ParamMap { entries }
    }

    /// Flattened inner product over shared structure.
    ///
    /// # Panics
    /// Panics on key or shape mismatch.
    pub fn dot(&self, rhs: &ParamMap) -> f32 {
        self.entries
            .iter()
            .map(|(k, v)| {
                let other = rhs
                    .get(k)
                    .unwrap_or_else(|| panic!("dot: missing key {k:?}"));
                v.dot(other)
            })
            .sum()
    }

    /// Euclidean norm over all elements of all tensors.
    pub fn norm(&self) -> f32 {
        self.entries
            .values()
            .map(|t| {
                let n = t.norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Squared Euclidean distance to `rhs` over the keys of `self`.
    pub fn sq_dist(&self, rhs: &ParamMap) -> f32 {
        self.entries
            .iter()
            .map(|(k, v)| {
                let other = rhs
                    .get(k)
                    .unwrap_or_else(|| panic!("sq_dist: missing key {k:?}"));
                v.sq_dist(other)
            })
            .sum()
    }

    /// Keeps only the entries whose name satisfies `pred` (e.g. FedBN's
    /// "everything except `bn.*`").
    pub fn filter(&self, pred: impl Fn(&str) -> bool) -> ParamMap {
        let entries = self
            .entries
            .iter()
            .filter(|(k, _)| pred(k))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        ParamMap { entries }
    }

    /// Copies every entry of `src` into `self`, replacing same-named entries
    /// and inserting new ones. This is the "load the shared part of the
    /// global model" operation: keys in `self` but not in `src` (e.g. local
    /// BatchNorm stats under FedBN) are left untouched.
    pub fn merge_from(&mut self, src: &ParamMap) {
        for (k, v) in src.iter() {
            self.entries.insert(k.to_string(), v.clone());
        }
    }

    /// Clips the global L2 norm to `max_norm`, returning the scaling factor
    /// applied (1.0 when no clipping occurred). Used by DP-FL (§4.1).
    pub fn clip_norm(&mut self, max_norm: f32) -> f32 {
        let n = self.norm();
        if n > max_norm && n > 0.0 {
            let s = max_norm / n;
            self.scale(s);
            s
        } else {
            1.0
        }
    }

    /// `true` when every tensor contains only finite values.
    pub fn is_finite(&self) -> bool {
        self.entries.values().all(Tensor::is_finite)
    }
}

impl FromIterator<(String, Tensor)> for ParamMap {
    fn from_iter<I: IntoIterator<Item = (String, Tensor)>>(iter: I) -> Self {
        Self {
            entries: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for ParamMap {
    type Item = (String, Tensor);
    type IntoIter = std::collections::btree_map::IntoIter<String, Tensor>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ParamMap {
        let mut p = ParamMap::new();
        p.insert(
            "fc.weight",
            Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]),
        );
        p.insert("fc.bias", Tensor::from_vec(vec![2], vec![0.5, -0.5]));
        p.insert("bn.gamma", Tensor::from_vec(vec![2], vec![1.0, 1.0]));
        p
    }

    #[test]
    fn insert_get_iter_order() {
        let p = sample();
        assert_eq!(p.len(), 3);
        assert_eq!(p.get("fc.bias").unwrap().data(), &[0.5, -0.5]);
        let names: Vec<_> = p.names().collect();
        assert_eq!(names, vec!["bn.gamma", "fc.bias", "fc.weight"]);
        assert_eq!(p.numel(), 8);
    }

    #[test]
    fn add_scaled_updates_in_place() {
        let mut p = sample();
        let q = p.clone();
        p.add_scaled(2.0, &q);
        assert_eq!(p.get("fc.weight").unwrap().data(), &[3.0, 6.0, 9.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "missing key")]
    fn add_scaled_missing_key_panics() {
        let mut p = ParamMap::new();
        p.insert("a", Tensor::zeros(&[1]));
        let mut q = ParamMap::new();
        q.insert("b", Tensor::zeros(&[1]));
        p.add_scaled(1.0, &q);
    }

    #[test]
    fn sub_and_dot() {
        let p = sample();
        let z = p.zeros_like();
        let d = p.sub(&z);
        assert_eq!(d, p);
        assert!((p.dot(&p) - (1.0 + 4.0 + 9.0 + 16.0 + 0.25 + 0.25 + 1.0 + 1.0)).abs() < 1e-6);
    }

    #[test]
    fn filter_excludes_bn_keys() {
        let p = sample();
        let shared = p.filter(|k| !k.starts_with("bn."));
        assert_eq!(shared.len(), 2);
        assert!(!shared.contains("bn.gamma"));
    }

    #[test]
    fn merge_from_preserves_local_only_keys() {
        let mut local = sample();
        let mut incoming = ParamMap::new();
        incoming.insert("fc.weight", Tensor::zeros(&[2, 2]));
        local.merge_from(&incoming);
        assert_eq!(local.get("fc.weight").unwrap().data(), &[0.0; 4]);
        // bn.gamma untouched
        assert_eq!(local.get("bn.gamma").unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn clip_norm_scales_down_only_when_needed() {
        let mut p = ParamMap::new();
        p.insert("w", Tensor::from_vec(vec![2], vec![3.0, 4.0])); // norm 5
        let s = p.clip_norm(10.0);
        assert_eq!(s, 1.0);
        let s = p.clip_norm(1.0);
        assert!((s - 0.2).abs() < 1e-6);
        assert!((p.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn norm_matches_flat_norm() {
        let p = sample();
        let flat: f32 = p
            .iter()
            .flat_map(|(_, t)| t.data().iter().map(|v| v * v))
            .sum();
        assert!((p.norm() - flat.sqrt()).abs() < 1e-6);
    }
}
