//! FL course configuration.

use fs_compress::{Compressor, DeltaEncode, Identity, TopK, UniformQuant};
use fs_tensor::optim::SgdConfig;
use fs_verify::{CodecFacts, ConfigFacts, RuleFacts, VerifyMode};

/// Which codec compresses a parameter payload (see `fs-compress`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CodecSpec {
    /// Dense f32 passthrough (framing only, no size reduction).
    Identity,
    /// Uniform linear quantization with per-tensor min/max.
    UniformQuant {
        /// Quantization width: 4 or 8 bits per value.
        bits: u8,
    },
    /// Top-k magnitude sparsification with error-feedback residuals.
    TopK {
        /// Fraction of entries kept per tensor, in `(0, 1]`.
        ratio: f32,
    },
}

impl CodecSpec {
    /// Instantiates the codec. Each participant gets its own instance, so
    /// stateful codecs (error feedback, delta references) stay per-sender.
    pub fn build(self) -> Box<dyn Compressor> {
        match self {
            CodecSpec::Identity => Box::new(Identity),
            CodecSpec::UniformQuant { bits } => Box::new(UniformQuant::new(bits)),
            CodecSpec::TopK { ratio } => Box::new(TopK::new(ratio)),
        }
    }
}

/// Update-compression configuration for a course.
///
/// Upload (client → server) and download (server → client) directions are
/// configured independently; `Default` disables both, preserving the dense
/// `Payload::Model` / `Payload::Update` wire behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct CompressionConfig {
    /// Codec for client updates, or `None` for dense uploads.
    pub upload: Option<CodecSpec>,
    /// Encode uploads as deltas against the received broadcast model (the
    /// server keeps a bounded history of past globals to reconstruct them).
    pub upload_delta: bool,
    /// Codec for model broadcasts, or `None` for dense downloads.
    pub download: Option<CodecSpec>,
}

impl CompressionConfig {
    /// 8-bit quantized uploads — the paper-style default for shrinking the
    /// client uplink, usually the bottleneck.
    pub fn quant8_upload() -> Self {
        Self {
            upload: Some(CodecSpec::UniformQuant { bits: 8 }),
            ..Default::default()
        }
    }

    /// Builds the (stateful) upload codec for one client.
    pub fn build_upload(&self) -> Option<Box<dyn Compressor>> {
        self.upload.map(|spec| {
            let inner = spec.build();
            if self.upload_delta {
                Box::new(DeltaEncode::new(inner)) as Box<dyn Compressor>
            } else {
                inner
            }
        })
    }

    /// Builds the download codec (one instance, held by the server).
    pub fn build_download(&self) -> Option<Box<dyn Compressor>> {
        self.download.map(CodecSpec::build)
    }
}

/// When the server performs federated aggregation — the condition-checking
/// event family of §3.3.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AggregationRule {
    /// Wait for every sampled client (vanilla synchronous FL).
    AllReceived,
    /// Aggregate once `goal` usable updates are buffered
    /// (`goal_achieved`; FedBuff-style, also Sync-OS when tolerance = 0).
    GoalAchieved {
        /// Number of usable updates that triggers aggregation.
        goal: usize,
    },
    /// Aggregate when the round's time budget runs out (`time_up`).
    TimeUp {
        /// Per-round virtual-time budget, seconds.
        budget_secs: f64,
        /// Minimum usable updates required; fewer triggers a remedial
        /// measure (the budget is extended, §3.3.2).
        min_feedback: usize,
    },
}

/// When the server broadcasts models in asynchronous FL (§3.3.1 (iii)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BroadcastManner {
    /// Broadcast the new global model to freshly sampled clients after each
    /// aggregation (also the synchronous behaviour).
    AfterAggregating,
    /// Send the current model to one sampled idle client as soon as any
    /// feedback is received, keeping concurrency constant (FedBuff).
    AfterReceiving,
}

/// Client sampling strategy (§3.3.1 (ii)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplerKind {
    /// Uniform over idle clients.
    Uniform,
    /// Probability proportional to estimated response speed.
    Responsiveness,
    /// Sample within one responsiveness group per round, rotating groups.
    Group,
}

/// What a distributed runner does when a client connection dies mid-course
/// (standalone simulation has no real sockets, so it ignores this).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropoutPolicy {
    /// Abort the course with the disconnect error.
    Fail,
    /// Remove the dead client from the roster and finish the course with the
    /// survivors, as long as at least `min_survivors` remain.
    Survivors {
        /// Fewest clients the course may shrink to before aborting.
        min_survivors: usize,
    },
}

impl Default for DropoutPolicy {
    fn default() -> Self {
        DropoutPolicy::Survivors { min_survivors: 1 }
    }
}

/// Which standalone execution core drives the course.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecutionMode {
    /// The legacy runner: every client fully materialized for the whole
    /// course. Supports custom handlers, speculation, and parallelism.
    #[default]
    Legacy,
    /// The fs-scale runner: lazy client state with cohort-granular
    /// scheduling. Handles millions of clients; requires default handlers
    /// and `LocalTrainer`-backed clients, and always runs serially.
    Scale,
}

/// Full configuration of an FL course.
#[derive(Clone, Debug)]
pub struct FlConfig {
    /// Maximum number of aggregation rounds.
    pub total_rounds: u64,
    /// Target number of clients training concurrently.
    pub concurrency: usize,
    /// Aggregation trigger.
    pub rule: AggregationRule,
    /// Broadcast manner.
    pub broadcast: BroadcastManner,
    /// Sampling strategy.
    pub sampler: SamplerKind,
    /// Maximum tolerated staleness; staler updates are dropped (§3.3.1 (i)).
    pub staleness_tolerance: u64,
    /// Staleness discount exponent `a`: update weight is scaled by
    /// `1/(1+tau)^a`. Zero disables discounting.
    pub staleness_discount: f32,
    /// Extra fraction of clients sampled beyond `concurrency`
    /// (the over-selection mechanism; 0.3 in the paper's Sync-OS).
    pub over_selection: f32,
    /// Evaluate the global model every this many rounds.
    pub eval_every: u64,
    /// Stop as soon as global test accuracy reaches this value.
    pub target_accuracy: Option<f32>,
    /// Early-stop patience in evaluations without improvement.
    pub patience: Option<u64>,
    /// Local training steps per round (the paper's `Q`).
    pub local_steps: usize,
    /// Local minibatch size.
    pub batch_size: usize,
    /// Local optimizer configuration.
    pub sgd: SgdConfig,
    /// Update compression (both directions disabled by default).
    pub compression: CompressionConfig,
    /// What runners do with static verification before starting the course.
    pub verify: VerifyMode,
    /// How distributed runners handle mid-course client disconnects.
    pub dropout: DropoutPolicy,
    /// Course RNG seed.
    pub seed: u64,
    /// Worker threads for the standalone runner's speculative client
    /// execution: `1` (the default) runs every handler serially on the
    /// simulation thread, `0` uses all available cores, `n > 1` uses `n`
    /// workers. Any setting produces bit-identical reports, RNG streams, and
    /// virtual-time accounting — parallelism only changes wall-clock time.
    pub parallelism: usize,
    /// Which standalone execution core to use. `Scale` trades handler
    /// flexibility for million-client capacity; reports are bit-identical
    /// on overlapping scales.
    pub execution: ExecutionMode,
}

impl Default for FlConfig {
    fn default() -> Self {
        Self {
            total_rounds: 50,
            concurrency: 10,
            rule: AggregationRule::AllReceived,
            broadcast: BroadcastManner::AfterAggregating,
            sampler: SamplerKind::Uniform,
            staleness_tolerance: 20,
            staleness_discount: 0.5,
            over_selection: 0.0,
            eval_every: 1,
            target_accuracy: None,
            patience: None,
            local_steps: 4,
            batch_size: 20,
            sgd: SgdConfig::with_lr(0.1),
            compression: CompressionConfig::default(),
            verify: VerifyMode::Enforce,
            dropout: DropoutPolicy::default(),
            seed: 42,
            parallelism: 1,
            execution: ExecutionMode::default(),
        }
    }
}

impl CodecSpec {
    fn facts(self) -> CodecFacts {
        match self {
            CodecSpec::Identity => CodecFacts::Identity,
            CodecSpec::UniformQuant { bits } => CodecFacts::Quantize { bits },
            CodecSpec::TopK { ratio } => CodecFacts::TopK { ratio },
        }
    }
}

impl FlConfig {
    /// Number of clients sampled when (re)filling the concurrency target,
    /// including over-selection.
    pub fn sample_target(&self) -> usize {
        ((self.concurrency as f32) * (1.0 + self.over_selection)).round() as usize
    }

    /// Lowers the config into the verifier's backend-neutral facts.
    /// `num_clients` is the population size when the course is assembled.
    pub fn facts(&self, num_clients: Option<usize>) -> ConfigFacts {
        ConfigFacts {
            total_rounds: self.total_rounds,
            concurrency: self.concurrency,
            sample_target: self.sample_target(),
            num_clients,
            rule: match self.rule {
                AggregationRule::AllReceived => RuleFacts::AllReceived,
                AggregationRule::GoalAchieved { goal } => RuleFacts::GoalAchieved { goal },
                AggregationRule::TimeUp {
                    budget_secs,
                    min_feedback,
                } => RuleFacts::TimeUp {
                    budget_secs,
                    min_feedback,
                },
            },
            after_receiving_broadcast: self.broadcast == BroadcastManner::AfterReceiving,
            staleness_tolerance: self.staleness_tolerance,
            staleness_discount: self.staleness_discount,
            over_selection: self.over_selection,
            eval_every: self.eval_every,
            target_accuracy: self.target_accuracy,
            patience: self.patience,
            local_steps: self.local_steps,
            batch_size: self.batch_size,
            lr: self.sgd.lr,
            upload: self.compression.upload.map(CodecSpec::facts),
            upload_delta: self.compression.upload_delta,
            download: self.compression.download.map(CodecSpec::facts),
        }
    }

    /// Convenience: the paper's `Sync-vanilla` strategy.
    pub fn sync_vanilla(mut self) -> Self {
        self.rule = AggregationRule::AllReceived;
        self.broadcast = BroadcastManner::AfterAggregating;
        self.over_selection = 0.0;
        self
    }

    /// Convenience: the paper's `Sync-OS` (over-selection) strategy —
    /// `goal_achieved` with goal = concurrency and zero staleness tolerance.
    pub fn sync_over_selection(mut self, extra: f32) -> Self {
        self.rule = AggregationRule::GoalAchieved {
            goal: self.concurrency,
        };
        self.broadcast = BroadcastManner::AfterAggregating;
        self.over_selection = extra;
        self.staleness_tolerance = 0;
        self
    }

    /// Convenience: `Async-Goal-<manner>-<sampler>` with the given goal.
    pub fn async_goal(
        mut self,
        goal: usize,
        manner: BroadcastManner,
        sampler: SamplerKind,
    ) -> Self {
        self.rule = AggregationRule::GoalAchieved { goal };
        self.broadcast = manner;
        self.sampler = sampler;
        self
    }

    /// Convenience: `Async-Time-<manner>-<sampler>` with the given budget.
    pub fn async_time(
        mut self,
        budget_secs: f64,
        min_feedback: usize,
        manner: BroadcastManner,
        sampler: SamplerKind,
    ) -> Self {
        self.rule = AggregationRule::TimeUp {
            budget_secs,
            min_feedback,
        };
        self.broadcast = manner;
        self.sampler = sampler;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_target_includes_over_selection() {
        let cfg = FlConfig {
            concurrency: 100,
            over_selection: 0.3,
            ..Default::default()
        };
        assert_eq!(cfg.sample_target(), 130);
        let cfg = FlConfig {
            concurrency: 10,
            over_selection: 0.0,
            ..Default::default()
        };
        assert_eq!(cfg.sample_target(), 10);
    }

    #[test]
    fn sync_os_is_goal_with_zero_tolerance() {
        let cfg = FlConfig {
            concurrency: 100,
            ..Default::default()
        }
        .sync_over_selection(0.3);
        assert_eq!(cfg.rule, AggregationRule::GoalAchieved { goal: 100 });
        assert_eq!(cfg.staleness_tolerance, 0);
        assert_eq!(cfg.sample_target(), 130);
    }

    #[test]
    fn builders_set_strategy_fields() {
        let cfg =
            FlConfig::default().async_goal(40, BroadcastManner::AfterReceiving, SamplerKind::Group);
        assert_eq!(cfg.rule, AggregationRule::GoalAchieved { goal: 40 });
        assert_eq!(cfg.broadcast, BroadcastManner::AfterReceiving);
        assert_eq!(cfg.sampler, SamplerKind::Group);
        let cfg = FlConfig::default().async_time(
            60.0,
            5,
            BroadcastManner::AfterAggregating,
            SamplerKind::Uniform,
        );
        match cfg.rule {
            AggregationRule::TimeUp {
                budget_secs,
                min_feedback,
            } => {
                assert_eq!(budget_secs, 60.0);
                assert_eq!(min_feedback, 5);
            }
            _ => panic!("wrong rule"),
        }
    }
}
