//! Criterion: update-compression codecs — throughput plus the bytes-on-wire
//! table quoted in README.md / DESIGN.md (run with
//! `cargo bench --bench compression`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fs_compress::{
    decompress, encode_block, Compressor, DeltaEncode, Identity, TopK, UniformQuant,
};
use fs_net::wire::params_wire_len;
use fs_tensor::{ParamMap, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A model-shaped parameter map with varied values so quantization and
/// top-k selection do real work (constant tensors would be degenerate).
fn make_params(numel: usize, rng: &mut StdRng) -> ParamMap {
    let quarter = numel / 4;
    let mut p = ParamMap::new();
    for name in ["conv1.weight", "conv1.bias", "fc.weight", "fc.bias"] {
        let data: Vec<f32> = (0..quarter).map(|_| rng.gen_range(-1.0..1.0)).collect();
        p.insert(name, Tensor::from_vec(vec![quarter], data));
    }
    p
}

fn encoded_bytes(codec: &mut dyn Compressor, params: &ParamMap) -> usize {
    encode_block(&codec.compress(params)).len()
}

/// Print the dense vs compressed bytes-on-wire table for one payload size.
fn print_table(numel: usize, rng: &mut StdRng) {
    let params = make_params(numel, rng);
    let dense = params_wire_len(&params);
    println!("\nbytes on wire, {numel}-parameter model (dense = {dense} B):");
    println!("  {:<22} {:>10} {:>8}", "codec", "bytes", "ratio");
    let mut codecs: Vec<(&str, Box<dyn Compressor>)> = vec![
        ("identity", Box::new(Identity)),
        ("quant8", Box::new(UniformQuant::new(8))),
        ("quant4", Box::new(UniformQuant::new(4))),
        ("topk 25%", Box::new(TopK::new(0.25))),
        ("topk 10%", Box::new(TopK::new(0.1))),
        ("topk 1%", Box::new(TopK::new(0.01))),
        (
            "delta+quant8",
            Box::new(DeltaEncode::new(Box::new(UniformQuant::new(8)))),
        ),
    ];
    for (name, codec) in &mut codecs {
        codec.set_reference(&params, 1);
        let bytes = encoded_bytes(codec.as_mut(), &params);
        println!(
            "  {:<22} {:>10} {:>7.2}x",
            name,
            bytes,
            dense as f64 / bytes as f64
        );
    }
}

fn bench_compression(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    for numel in [1_000usize, 100_000] {
        print_table(numel, &mut rng);
    }

    let mut group = c.benchmark_group("compression");
    for numel in [1_000usize, 10_000, 100_000] {
        let params = make_params(numel, &mut rng);
        group.throughput(Throughput::Bytes((4 * numel) as u64));
        group.bench_with_input(BenchmarkId::new("quant8", numel), &params, |b, p| {
            let mut codec = UniformQuant::new(8);
            b.iter(|| codec.compress(std::hint::black_box(p)))
        });
        group.bench_with_input(BenchmarkId::new("quant4", numel), &params, |b, p| {
            let mut codec = UniformQuant::new(4);
            b.iter(|| codec.compress(std::hint::black_box(p)))
        });
        group.bench_with_input(BenchmarkId::new("topk10", numel), &params, |b, p| {
            let mut codec = TopK::new(0.1);
            b.iter(|| codec.compress(std::hint::black_box(p)))
        });
        let block = UniformQuant::new(8).compress(&params);
        group.bench_with_input(BenchmarkId::new("dequant8", numel), &block, |b, blk| {
            b.iter(|| decompress(std::hint::black_box(blk), None).expect("valid"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compression);
criterion_main!(benches);
