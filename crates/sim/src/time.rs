//! Virtual timestamps.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point on the virtual clock, in seconds.
///
/// Wraps a finite `f64` and provides the total ordering the event queue
/// needs. Construction asserts finiteness, so `Ord` is safe.
#[derive(Clone, Copy, PartialEq, PartialOrd)]
pub struct VirtualTime(f64);

impl VirtualTime {
    /// The origin of every FL course (the paper: "the server begins to
    /// broadcast at timestamp 0").
    pub const ZERO: VirtualTime = VirtualTime(0.0);

    /// Creates a timestamp.
    ///
    /// # Panics
    /// Panics if `secs` is not finite or is negative.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "invalid virtual time {secs}"
        );
        VirtualTime(secs)
    }

    /// Seconds since the course origin.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Hours since the course origin (the unit Table 1 reports).
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }
}

impl Eq for VirtualTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for VirtualTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("virtual times are finite")
    }
}

impl Add<f64> for VirtualTime {
    type Output = VirtualTime;
    fn add(self, rhs: f64) -> VirtualTime {
        VirtualTime::from_secs(self.0 + rhs)
    }
}

impl AddAssign<f64> for VirtualTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub for VirtualTime {
    type Output = f64;
    fn sub(self, rhs: VirtualTime) -> f64 {
        self.0 - rhs.0
    }
}

// Serialized as the bare seconds value; the tuple-struct shape (unsupported
// by the in-repo derive) and the finiteness invariant both want manual impls.
impl serde::Serialize for VirtualTime {
    fn to_value(&self) -> serde::Value {
        serde::Value::F64(self.0)
    }
}

impl serde::Deserialize for VirtualTime {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let secs = v
            .as_f64()
            .ok_or_else(|| serde::DeError::mismatch("number (virtual seconds)", v))?;
        if !(secs.is_finite() && secs >= 0.0) {
            return Err(serde::DeError(format!("invalid virtual time {secs}")));
        }
        Ok(VirtualTime(secs))
    }
}

impl fmt::Debug for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.0)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = VirtualTime::from_secs(1.0);
        let b = a + 2.5;
        assert!(b > a);
        assert_eq!(b.as_secs(), 3.5);
        assert!((b - a - 2.5).abs() < 1e-12);
        assert_eq!(VirtualTime::ZERO.as_secs(), 0.0);
    }

    #[test]
    fn hours_conversion() {
        let t = VirtualTime::from_secs(7200.0);
        assert!((t.as_hours() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip_preserves_seconds() {
        use serde::{Deserialize, Serialize};
        let t = VirtualTime::from_secs(12.25);
        assert_eq!(t.to_value(), serde::Value::F64(12.25));
        assert_eq!(VirtualTime::from_value(&t.to_value()).unwrap(), t);
        // integer-typed JSON numbers widen
        assert_eq!(
            VirtualTime::from_value(&serde::Value::UInt(3)).unwrap(),
            VirtualTime::from_secs(3.0)
        );
        // the finiteness/non-negativity invariant survives deserialization
        assert!(VirtualTime::from_value(&serde::Value::F64(-1.0)).is_err());
        assert!(VirtualTime::from_value(&serde::Value::F64(f64::NAN)).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid virtual time")]
    fn rejects_nan() {
        let _ = VirtualTime::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "invalid virtual time")]
    fn rejects_negative() {
        let _ = VirtualTime::from_secs(-1.0);
    }
}
