//! **Robustness matrix** (§3.6 "Robustness Against Malicious Participants")
//! — not a numbered figure in the paper, but the paper ships Byzantine fault
//! tolerance as a first-class feature, so this harness quantifies it: every
//! provided aggregation rule against every provided model-poisoning attack.
//!
//! Expected shape: plain FedAvg collapses under boosted attacks; Krum,
//! coordinate-median, trimmed-mean, and norm-bounding all hold the line, at
//! a small cost in clean accuracy.
//!
//! ```text
//! cargo run -p fs-bench --release --bin exp_byzantine
//! ```

use fs_attack::backdoor::label_flip;
use fs_attack::malicious::{AttackMode, MaliciousTrainer};
use fs_bench::output::{render_table, write_json};
use fs_core::aggregator::{Aggregator, CoordinateMedian, FedAvg, Krum, NormBounded, TrimmedMean};
use fs_core::config::FlConfig;
use fs_core::course::CourseBuilder;
use fs_core::trainer::{share_all, LocalTrainer, TrainConfig};
use fs_data::synth::{twitter_like, TwitterConfig};
use fs_tensor::model::{logistic_regression, Model};
use fs_tensor::optim::SgdConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    aggregator: String,
    attack: String,
    accuracy: f32,
}

fn make_aggregator(name: &str) -> Box<dyn Aggregator> {
    match name {
        "fedavg" => Box::new(FedAvg::new(0.0)),
        "multi-krum" => Box::new(Krum::multi(2, 6)),
        "median" => Box::new(CoordinateMedian),
        "trimmed-mean" => Box::new(TrimmedMean { trim: 0.2 }),
        "norm-bounded" => Box::new(NormBounded::new(2.0, Box::new(FedAvg::new(0.0)))),
        other => panic!("unknown aggregator {other}"),
    }
}

/// Runs a 12-client course where clients 0 and 1 run `attack`; returns the
/// final global test accuracy.
fn run(agg_name: &str, attack: &str) -> f32 {
    let data = twitter_like(&TwitterConfig {
        num_clients: 12,
        per_client: 80,
        seed: 7,
        ..Default::default()
    });
    let dim = data.input_dim();
    let cfg = FlConfig {
        total_rounds: 40,
        concurrency: 12,
        local_steps: 6,
        batch_size: 4,
        sgd: SgdConfig::with_lr(0.5),
        eval_every: 5,
        seed: 7,
        ..Default::default()
    };
    let attack = attack.to_string();
    let mut runner = CourseBuilder::new(
        data,
        Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng)) as Box<dyn Model>),
        cfg,
    )
    .aggregator(make_aggregator(agg_name))
    .trainer_factory(Box::new(move |i, model, mut split, cfg| {
        let malicious = i < 2 && attack != "none";
        if malicious {
            // all attacks train on flipped labels (swap 0 <-> 1)
            label_flip(&mut split.train, 1, 2);
            label_flip(&mut split.train, 0, 1);
            label_flip(&mut split.train, 2, 0);
        }
        let inner = LocalTrainer::new(
            model,
            split,
            TrainConfig {
                local_steps: cfg.local_steps,
                batch_size: cfg.batch_size,
                sgd: cfg.sgd,
            },
            share_all(),
            cfg.seed ^ (i as u64 + 1),
        );
        if malicious && attack == "replacement" {
            Box::new(MaliciousTrainer::new(
                inner,
                AttackMode::ModelReplacement { n_participants: 12 },
                cfg.seed ^ (0xbad + i as u64),
            ))
        } else {
            Box::new(inner)
        }
    }))
    .build();
    let report = runner.run();
    report
        .history
        .last()
        .map(|r| r.metrics.accuracy)
        .unwrap_or(0.0)
}

fn main() {
    let aggregators = [
        "fedavg",
        "multi-krum",
        "median",
        "trimmed-mean",
        "norm-bounded",
    ];
    let attacks = ["none", "label-flip", "replacement"];
    let mut cells = Vec::new();
    for agg in aggregators {
        for attack in attacks {
            let acc = run(agg, attack);
            eprintln!("  {agg} vs {attack}: {acc:.4}");
            cells.push(Cell {
                aggregator: agg.into(),
                attack: attack.into(),
                accuracy: acc,
            });
        }
    }
    println!("\nRobustness matrix — final accuracy, 2/12 malicious clients\n");
    let rows: Vec<Vec<String>> = aggregators
        .iter()
        .map(|agg| {
            let mut row = vec![agg.to_string()];
            for attack in attacks {
                let c = cells
                    .iter()
                    .find(|c| c.aggregator == *agg && c.attack == attack)
                    .expect("cell");
                row.push(format!("{:.4}", c.accuracy));
            }
            row
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["aggregator", "no attack", "label-flip", "replacement"],
            &rows
        )
    );
    let path = write_json("byzantine", &cells).expect("write results");
    println!("wrote {path}");
}
