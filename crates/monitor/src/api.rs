//! The recording API: the [`Monitor`] trait and the [`MonitorHandle`] the
//! hot paths carry.

use fs_sim::VirtualTime;
use fs_tensor::model::Metrics;
use std::sync::{Arc, Mutex, PoisonError};

/// A span/counter track: `0` is the server, `n >= 1` is client `n` —
/// the same numbering as [`fs_net`-style] participant ids.
pub type TrackId = u32;

/// The server's track id.
pub const SERVER_TRACK: TrackId = 0;

/// Canonical counter names.
///
/// Producers and consumers meet here: fs-core's standalone runner bumps the
/// byte counters at the exact statements where the simulator charges
/// communication cost, fs-net's TCP backend bumps the `wire.*` counters from
/// real socket frames, and the exporters/tests read them back by the same
/// names.
pub mod counters {
    /// Messages delivered to any participant by the runner.
    pub const MESSAGES_DELIVERED: &str = "messages.delivered";
    /// Messages emitted through handler contexts.
    pub const MESSAGES_SENT: &str = "messages.sent";
    /// Payload bytes charged client → server (reconciles with
    /// `CourseReport::uploaded_bytes` exactly).
    pub const UPLOADED_BYTES: &str = "bytes.uploaded";
    /// Payload bytes charged server → clients (reconciles with
    /// `CourseReport::downloaded_bytes` exactly).
    pub const DOWNLOADED_BYTES: &str = "bytes.downloaded";
    /// Model broadcasts delivered to clients (each is one unit of client
    /// participation: a local-training activation).
    pub const PARTICIPATION: &str = "clients.participation";
    /// Updates received by the server.
    pub const UPDATES_RECEIVED: &str = "updates.received";
    /// Updates dropped for exceeding the staleness tolerance.
    pub const UPDATES_DROPPED: &str = "updates.dropped";
    /// Sum of staleness over all aggregated updates (divide by
    /// `updates.aggregated` for the mean).
    pub const STALENESS_SUM: &str = "updates.staleness_sum";
    /// Updates that made it into an aggregation.
    pub const UPDATES_AGGREGATED: &str = "updates.aggregated";
    /// Federated aggregations performed.
    pub const AGGREGATIONS: &str = "rounds.aggregations";
    /// Remedial-measure activations (`time_up` with insufficient feedback).
    pub const REMEDIAL: &str = "rounds.remedial";
    /// Broadcast deliveries lost to simulated device crashes.
    pub const CRASHED_DELIVERIES: &str = "deliveries.crashed";
    /// Real bytes written to TCP sockets (frame header + wire payload).
    pub const WIRE_BYTES_OUT: &str = "wire.bytes_out";
    /// Real bytes read from TCP sockets (frame header + wire payload).
    pub const WIRE_BYTES_IN: &str = "wire.bytes_in";
    /// Frames written to TCP sockets.
    pub const WIRE_FRAMES_OUT: &str = "wire.frames_out";
    /// Frames read from TCP sockets.
    pub const WIRE_FRAMES_IN: &str = "wire.frames_in";
    /// Clients dropped from a distributed course after disconnecting.
    pub const DROPOUTS: &str = "clients.dropouts";
    /// Successful client reconnections (rejoin handshakes completed).
    pub const RECONNECTS: &str = "clients.reconnects";
}

/// An observability sink.
///
/// Implementations must keep spans well-nested *per track*: `exit` always
/// closes the most recent unclosed `enter` on that track. The engine opens
/// and closes spans in strict LIFO order per participant, so a stack-based
/// implementation satisfies this by construction.
pub trait Monitor: Send {
    /// Opens a span on `track` at virtual time `at`.
    fn enter(&mut self, track: TrackId, name: &'static str, cat: &'static str, at: VirtualTime);

    /// Closes the innermost open span on `track` at virtual time `at`.
    fn exit(&mut self, track: TrackId, at: VirtualTime);

    /// Records a complete span (used for charged virtual-time intervals —
    /// compute and communication — whose duration is known up front).
    fn span(
        &mut self,
        track: TrackId,
        name: &'static str,
        cat: &'static str,
        start: VirtualTime,
        dur_secs: f64,
    );

    /// Adds `delta` to the named counter.
    fn add(&mut self, counter: &'static str, delta: u64);

    /// Records the global model's metrics after aggregation `round`.
    fn round(&mut self, round: u64, time: VirtualTime, metrics: &Metrics);
}

/// A monitor that records nothing. Exists so `dyn Monitor` call sites have a
/// default; the even cheaper path is a null [`MonitorHandle`], which skips
/// the virtual call entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullMonitor;

impl Monitor for NullMonitor {
    fn enter(&mut self, _: TrackId, _: &'static str, _: &'static str, _: VirtualTime) {}
    fn exit(&mut self, _: TrackId, _: VirtualTime) {}
    fn span(&mut self, _: TrackId, _: &'static str, _: &'static str, _: VirtualTime, _: f64) {}
    fn add(&mut self, _: &'static str, _: u64) {}
    fn round(&mut self, _: u64, _: VirtualTime, _: &Metrics) {}
}

/// The handle instrumented code carries: `Clone`, cheap, and allocation-free
/// when null.
///
/// A null handle (the default) holds no allocation and every record method
/// is a single `Option` test — the engine's non-observed hot path stays as
/// fast as before fs-monitor existed. A live handle shares one monitor
/// behind an `Arc<Mutex<_>>`; cloning it is one atomic increment.
#[derive(Clone, Default)]
pub struct MonitorHandle {
    inner: Option<Arc<Mutex<dyn Monitor>>>,
}

impl std::fmt::Debug for MonitorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorHandle")
            .field("live", &self.is_live())
            .finish()
    }
}

impl MonitorHandle {
    /// The no-op handle: records nothing, allocates nothing.
    pub fn null() -> Self {
        Self { inner: None }
    }

    /// Wraps a monitor into a live handle.
    pub fn new<M: Monitor + 'static>(monitor: M) -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(monitor))),
        }
    }

    /// Builds a handle sharing an already-shared monitor, so the caller can
    /// keep the typed `Arc` and read results back after the run.
    pub fn from_shared<M: Monitor + 'static>(monitor: Arc<Mutex<M>>) -> Self {
        Self {
            inner: Some(monitor),
        }
    }

    /// `true` when records actually go somewhere.
    pub fn is_live(&self) -> bool {
        self.inner.is_some()
    }

    fn with<R>(&self, f: impl FnOnce(&mut dyn Monitor) -> R) -> Option<R> {
        let inner = self.inner.as_ref()?;
        // a monitor poisoned by a panicking instrumented thread still holds
        // usable telemetry — keep recording
        let mut guard = inner.lock().unwrap_or_else(PoisonError::into_inner);
        Some(f(&mut *guard))
    }

    /// Opens a span on `track`.
    pub fn enter(&self, track: TrackId, name: &'static str, cat: &'static str, at: VirtualTime) {
        self.with(|m| m.enter(track, name, cat, at));
    }

    /// Closes the innermost open span on `track`.
    pub fn exit(&self, track: TrackId, at: VirtualTime) {
        self.with(|m| m.exit(track, at));
    }

    /// Records a complete span with a known duration.
    pub fn span(
        &self,
        track: TrackId,
        name: &'static str,
        cat: &'static str,
        start: VirtualTime,
        dur_secs: f64,
    ) {
        self.with(|m| m.span(track, name, cat, start, dur_secs));
    }

    /// Adds `delta` to the named counter.
    pub fn add(&self, counter: &'static str, delta: u64) {
        self.with(|m| m.add(counter, delta));
    }

    /// Records post-aggregation global metrics.
    pub fn round(&self, round: u64, time: VirtualTime, metrics: &Metrics) {
        self.with(|m| m.round(round, time, metrics));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recording::RecordingMonitor;

    #[test]
    fn null_handle_is_inert_and_cheap() {
        let h = MonitorHandle::null();
        assert!(!h.is_live());
        // all calls are no-ops
        h.enter(0, "a", "b", VirtualTime::ZERO);
        h.exit(0, VirtualTime::ZERO);
        h.add(counters::MESSAGES_SENT, 5);
        h.round(1, VirtualTime::ZERO, &Metrics::default());
        assert_eq!(std::mem::size_of::<MonitorHandle>(), 16, "two pointers");
    }

    #[test]
    fn default_handle_is_null() {
        assert!(!MonitorHandle::default().is_live());
    }

    #[test]
    fn live_handle_records_through_shared_arc() {
        let mon = Arc::new(Mutex::new(RecordingMonitor::new()));
        let h = MonitorHandle::from_shared(mon.clone());
        assert!(h.is_live());
        h.add(counters::UPLOADED_BYTES, 10);
        h.clone().add(counters::UPLOADED_BYTES, 5);
        let got = mon.lock().unwrap().counter(counters::UPLOADED_BYTES);
        assert_eq!(got, 15);
    }
}
