//! A dense, row-major `f32` tensor.
//!
//! The tensor is deliberately minimal: it supports exactly the operations the
//! layers in [`crate::layer`] need, with shapes checked at call time (a shape
//! mismatch in an FL course is always a programming error, so the methods
//! panic rather than return `Result`).

use std::fmt;

/// Dense row-major tensor of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(
                f,
                ", data=[{:.4}, {:.4}, .. {} values])",
                self.data[0],
                self.data[1],
                self.data.len()
            )
        }
    }
}

impl Tensor {
    /// Creates a tensor from a shape and backing data.
    ///
    /// # Panics
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            data.len(),
            "shape {:?} implies {} elements, got {}",
            shape,
            numel,
            data.len()
        );
        Self { shape, data }
    }

    /// All-zeros tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; numel],
        }
    }

    /// All-`v` tensor of the given shape.
    pub fn full(shape: &[usize], v: f32) -> Self {
        let numel = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![v; numel],
        }
    }

    /// All-ones tensor of the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A zero tensor with the same shape as `self`.
    pub fn zeros_like(&self) -> Self {
        Self::zeros(&self.shape)
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the backing data (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Number of rows of a 2-D tensor.
    #[inline]
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "rows() requires a 2-D tensor");
        self.shape[0]
    }

    /// Number of columns of a 2-D tensor.
    #[inline]
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "cols() requires a 2-D tensor");
        self.shape[1]
    }

    /// Element of a 2-D tensor at `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Mutable element of a 2-D tensor at `(r, c)`.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 2);
        let cols = self.shape[1];
        &mut self.data[r * cols + c]
    }

    /// Returns a tensor with the same data but a new shape.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            self.data.len(),
            "reshape {:?} -> {:?}",
            self.shape,
            shape
        );
        Self {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// Matrix product of two 2-D tensors: `[m,k] x [k,n] -> [m,n]`.
    ///
    /// Backed by the register-blocked kernel (see [`Tensor::matmul_into`]);
    /// numerically bit-identical to [`Tensor::matmul_naive`] for finite
    /// inputs, since every output element accumulates its products in the
    /// same strict increasing-`k` order with a single accumulator.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(&[0]);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Reference kernel: the original cache-friendly i-k-j triple loop with
    /// a zero-skip. Kept as the baseline the criterion benches (and the
    /// `BENCH_perf.json` micro-bench) compare the blocked kernel against.
    pub fn matmul_naive(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(
            k, k2,
            "matmul inner dims: {:?} x {:?}",
            self.shape, rhs.shape
        );
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o_row = &mut out[i * n..(i + 1) * n];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[kk * n..(kk + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// `out = self x rhs`, reusing `out`'s allocation when its element count
    /// already matches (`out` is reshaped; the hot training loop hits the
    /// no-allocation path every step).
    pub fn matmul_into(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(
            k, k2,
            "matmul inner dims: {:?} x {:?}",
            self.shape, rhs.shape
        );
        out.reset_to(&[m, n]);
        kernels::matmul_blocked(&self.data, &rhs.data, &mut out.data, m, k, n);
    }

    /// Transposed-RHS fast path: `self [m,k] x rhs^T` where `rhs` is stored
    /// `[n,k]` — the layout of `Linear`/`Conv2d` weights, so the forward
    /// pass never materializes `w.t()` as a fresh tensor.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(&[0]);
        let mut scratch = Vec::new();
        self.matmul_nt_into(rhs, &mut out, &mut scratch);
        out
    }

    /// [`Tensor::matmul_nt`] writing into `out`, with the transposed copy of
    /// `rhs` staged in `scratch` (both reusable across steps).
    pub fn matmul_nt_into(&self, rhs: &Tensor, out: &mut Tensor, scratch: &mut Vec<f32>) {
        assert_eq!(self.shape.len(), 2, "matmul_nt lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "matmul_nt rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(
            k, k2,
            "matmul_nt inner dims: {:?} x {:?}^T",
            self.shape, rhs.shape
        );
        // stage rhs^T once; the transpose is O(k·n) against O(m·k·n) math
        scratch.clear();
        scratch.resize(k * n, 0.0);
        for j in 0..n {
            let row = &rhs.data[j * k..(j + 1) * k];
            for (kk, &v) in row.iter().enumerate() {
                scratch[kk * n + j] = v;
            }
        }
        out.reset_to(&[m, n]);
        kernels::matmul_blocked(&self.data, scratch, &mut out.data, m, k, n);
    }

    /// Transposed-LHS accumulating product: `out += self^T x rhs` where
    /// `self` is stored `[k,m]`. This is the gradient-of-weights shape
    /// (`gw += grad_out^T x input`) and accumulates directly into the grad
    /// buffer — no temporary, no transpose copy.
    pub fn matmul_tn_acc(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(self.shape.len(), 2, "matmul_tn lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "matmul_tn rhs must be 2-D");
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(
            k, k2,
            "matmul_tn inner dims: {:?}^T x {:?}",
            self.shape, rhs.shape
        );
        assert_eq!(out.shape, vec![m, n], "matmul_tn_acc out shape");
        kernels::matmul_tn(&self.data, &rhs.data, &mut out.data, m, k, n);
    }

    /// Transpose of a 2-D tensor.
    pub fn t(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "t() requires a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            shape: vec![n, m],
            data: out,
        }
    }

    /// Elementwise sum; shapes must match exactly.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Elementwise difference; shapes must match exactly.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Elementwise (Hadamard) product; shapes must match exactly.
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "mul shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a * b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// `self += alpha * rhs` in place; shapes must match exactly.
    pub fn add_scaled(&mut self, alpha: f32, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape, "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place — the allocation-free [`map`]
    /// the optimizer hot loops use.
    ///
    /// [`map`]: Tensor::map
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Copies `src`'s contents into `self`; shapes must match exactly.
    pub fn copy_from(&mut self, src: &Tensor) {
        assert_eq!(self.shape, src.shape, "copy_from shape mismatch");
        self.data.copy_from_slice(&src.data);
    }

    /// Reshapes in place to `shape`, resizing the backing buffer. Contents
    /// are unspecified afterwards; kernels writing every element call this
    /// to reuse the allocation across steps.
    pub(crate) fn reset_to(&mut self, shape: &[usize]) {
        let numel = shape.iter().product();
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        self.data.resize(numel, 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Inner product of the flattened tensors; shapes must match exactly.
    pub fn dot(&self, rhs: &Tensor) -> f32 {
        assert_eq!(self.shape, rhs.shape, "dot shape mismatch");
        self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).sum()
    }

    /// Euclidean (Frobenius) norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Squared Euclidean distance to `rhs`.
    pub fn sq_dist(&self, rhs: &Tensor) -> f32 {
        assert_eq!(self.shape, rhs.shape, "sq_dist shape mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Row `r` of a 2-D tensor as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.shape.len(), 2);
        let n = self.shape[1];
        &self.data[r * n..(r + 1) * n]
    }

    /// Stacks 1-D row slices into a 2-D tensor `[rows.len(), width]`.
    ///
    /// # Panics
    /// Panics if any row's length differs from `width`.
    pub fn stack_rows(rows: &[&[f32]], width: usize) -> Tensor {
        let mut data = Vec::with_capacity(rows.len() * width);
        for r in rows {
            assert_eq!(r.len(), width, "stack_rows width mismatch");
            data.extend_from_slice(r);
        }
        Tensor {
            shape: vec![rows.len(), width],
            data,
        }
    }

    /// Argmax index of each row of a 2-D tensor.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.len(), 2);
        let n = self.shape[1];
        self.data
            .chunks_exact(n)
            .map(|row| {
                let mut best = 0usize;
                for (i, &v) in row.iter().enumerate().skip(1) {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// `true` when every element is finite (no NaN / infinity).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

/// Register-blocked matmul micro-kernels.
///
/// Both kernels compute each output element with a *single accumulator in
/// strict increasing-`k` order* — the same order as the naive i-k-j loop —
/// so for finite inputs their results are bit-identical to
/// [`Tensor::matmul_naive`] (dropping the naive kernel's `a == 0.0` skip is
/// also exact: the accumulator starts at `+0.0` and can never become `-0.0`
/// under round-to-nearest, so adding a signed-zero product is the
/// identity). The speed comes purely from blocking: an `MR x NR` tile of
/// accumulators lives in registers across the whole `k` loop, so `out` is
/// touched once per tile instead of once per `k` step, and the compiler
/// vectorizes the constant-width column loop.
mod kernels {
    /// Accumulator tile rows (distinct output rows per tile).
    const MR: usize = 4;
    /// Accumulator tile columns. At `MR x NR = 4 x 16` the tile is 8 AVX2
    /// registers, leaving room for the broadcast multipliers — the whole
    /// accumulator state lives in the register file across the `k` loop.
    const NR: usize = 16;

    /// `out = a [m,k] x b [k,n]`, overwriting every element of `out`.
    pub(super) fn matmul_blocked(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(out.len(), m * n);
        // The wide paths are the same Rust code monomorphized with wider
        // vector features enabled; lanes are independent accumulators, so
        // the result is bitwise the same on every path.
        #[cfg(target_arch = "x86_64")]
        {
            if std::is_x86_feature_detected!("avx512f") {
                // SAFETY: the avx512f feature was just detected at runtime
                unsafe { matmul_blocked_avx512(a, b, out, m, k, n) };
                return;
            }
            if std::is_x86_feature_detected!("avx2") {
                // SAFETY: the avx2 feature was just detected at runtime
                unsafe { matmul_blocked_avx2(a, b, out, m, k, n) };
                return;
            }
        }
        matmul_blocked_impl(a, b, out, m, k, n);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn matmul_blocked_avx512(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        matmul_blocked_impl(a, b, out, m, k, n);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn matmul_blocked_avx2(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        matmul_blocked_impl(a, b, out, m, k, n);
    }

    #[inline(always)]
    fn matmul_blocked_impl(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        let mut i = 0;
        while i < m {
            let ib = MR.min(m - i);
            let mut j = 0;
            while j < n {
                let jb = NR.min(n - j);
                if ib == MR && jb == NR {
                    // full tile: separate fixed-size accumulators and
                    // hoisted row slices, so every inner bound is a
                    // compile-time constant and the c-loop vectorizes
                    let a0 = &a[i * k..i * k + k];
                    let a1 = &a[(i + 1) * k..(i + 1) * k + k];
                    let a2 = &a[(i + 2) * k..(i + 2) * k + k];
                    let a3 = &a[(i + 3) * k..(i + 3) * k + k];
                    let mut acc0 = [0.0f32; NR];
                    let mut acc1 = [0.0f32; NR];
                    let mut acc2 = [0.0f32; NR];
                    let mut acc3 = [0.0f32; NR];
                    for kk in 0..k {
                        let b_row = &b[kk * n + j..kk * n + j + NR];
                        let (av0, av1, av2, av3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
                        for c in 0..NR {
                            let bv = b_row[c];
                            acc0[c] += av0 * bv;
                            acc1[c] += av1 * bv;
                            acc2[c] += av2 * bv;
                            acc3[c] += av3 * bv;
                        }
                    }
                    out[i * n + j..i * n + j + NR].copy_from_slice(&acc0);
                    out[(i + 1) * n + j..(i + 1) * n + j + NR].copy_from_slice(&acc1);
                    out[(i + 2) * n + j..(i + 2) * n + j + NR].copy_from_slice(&acc2);
                    out[(i + 3) * n + j..(i + 3) * n + j + NR].copy_from_slice(&acc3);
                } else {
                    let mut acc = [[0.0f32; NR]; MR];
                    for kk in 0..k {
                        let b_row = &b[kk * n + j..kk * n + j + jb];
                        for (r, acc_r) in acc.iter_mut().enumerate().take(ib) {
                            let av = a[(i + r) * k + kk];
                            for (x, &bv) in acc_r[..jb].iter_mut().zip(b_row) {
                                *x += av * bv;
                            }
                        }
                    }
                    for (r, acc_r) in acc.iter().enumerate().take(ib) {
                        let o_row = &mut out[(i + r) * n + j..(i + r) * n + j + jb];
                        o_row.copy_from_slice(&acc_r[..jb]);
                    }
                }
                j += jb;
            }
            i += MR;
        }
    }

    /// `out += a^T x b` where `a` is stored `[k,m]` and `b` `[k,n]`.
    ///
    /// Accumulating (`+=`) mirrors the gradient path it replaces
    /// (`gw.add_scaled(1.0, &temp)`), keeping the result bitwise equal to
    /// the old two-step form.
    pub(super) fn matmul_tn(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(a.len(), k * m);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(out.len(), m * n);
        #[cfg(target_arch = "x86_64")]
        {
            if std::is_x86_feature_detected!("avx512f") {
                // SAFETY: the avx512f feature was just detected at runtime
                unsafe { matmul_tn_avx512(a, b, out, m, k, n) };
                return;
            }
            if std::is_x86_feature_detected!("avx2") {
                // SAFETY: the avx2 feature was just detected at runtime
                unsafe { matmul_tn_avx2(a, b, out, m, k, n) };
                return;
            }
        }
        matmul_tn_impl(a, b, out, m, k, n);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn matmul_tn_avx512(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        matmul_tn_impl(a, b, out, m, k, n);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn matmul_tn_avx2(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        matmul_tn_impl(a, b, out, m, k, n);
    }

    #[inline(always)]
    fn matmul_tn_impl(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        let mut i = 0;
        while i < m {
            let ib = MR.min(m - i);
            let mut j = 0;
            while j < n {
                let jb = NR.min(n - j);
                if ib == MR && jb == NR {
                    let mut acc0 = [0.0f32; NR];
                    let mut acc1 = [0.0f32; NR];
                    let mut acc2 = [0.0f32; NR];
                    let mut acc3 = [0.0f32; NR];
                    for kk in 0..k {
                        // a's row is contiguous across the tile's i range
                        let a_row = &a[kk * m + i..kk * m + i + MR];
                        let b_row = &b[kk * n + j..kk * n + j + NR];
                        let (av0, av1, av2, av3) = (a_row[0], a_row[1], a_row[2], a_row[3]);
                        for c in 0..NR {
                            let bv = b_row[c];
                            acc0[c] += av0 * bv;
                            acc1[c] += av1 * bv;
                            acc2[c] += av2 * bv;
                            acc3[c] += av3 * bv;
                        }
                    }
                    for (o, &v) in out[i * n + j..i * n + j + NR].iter_mut().zip(&acc0) {
                        *o += v;
                    }
                    for (o, &v) in out[(i + 1) * n + j..(i + 1) * n + j + NR]
                        .iter_mut()
                        .zip(&acc1)
                    {
                        *o += v;
                    }
                    for (o, &v) in out[(i + 2) * n + j..(i + 2) * n + j + NR]
                        .iter_mut()
                        .zip(&acc2)
                    {
                        *o += v;
                    }
                    for (o, &v) in out[(i + 3) * n + j..(i + 3) * n + j + NR]
                        .iter_mut()
                        .zip(&acc3)
                    {
                        *o += v;
                    }
                } else {
                    let mut acc = [[0.0f32; NR]; MR];
                    for kk in 0..k {
                        let a_row = &a[kk * m + i..kk * m + i + ib];
                        let b_row = &b[kk * n + j..kk * n + j + jb];
                        for (acc_r, &av) in acc.iter_mut().zip(a_row) {
                            for (x, &bv) in acc_r[..jb].iter_mut().zip(b_row) {
                                *x += av * bv;
                            }
                        }
                    }
                    for (r, acc_r) in acc.iter().enumerate().take(ib) {
                        let o_row = &mut out[(i + r) * n + j..(i + r) * n + j + jb];
                        for (o, &v) in o_row.iter_mut().zip(acc_r[..jb].iter()) {
                            *o += v;
                        }
                    }
                }
                j += jb;
            }
            i += MR;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.at(1, 2), 6.0);
        assert_eq!(t.numel(), 6);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_shape_mismatch_panics() {
        let _ = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(vec![3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![2, 2], vec![3.0, -1.0, 2.0, 5.0]);
        let eye = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&eye).data(), a.data());
        assert_eq!(eye.matmul(&a).data(), a.data());
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.t().t(), a);
        assert_eq!(a.t().shape(), &[3, 2]);
        assert_eq!(a.t().at(2, 1), 6.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(vec![3], vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.dot(&b), 32.0);
    }

    #[test]
    fn add_scaled_and_scale() {
        let mut a = Tensor::from_vec(vec![2], vec![1.0, 2.0]);
        let b = Tensor::from_vec(vec![2], vec![10.0, 20.0]);
        a.add_scaled(0.5, &b);
        assert_eq!(a.data(), &[6.0, 12.0]);
        a.scale(2.0);
        assert_eq!(a.data(), &[12.0, 24.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert!((a.norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let a = Tensor::from_vec(vec![2, 3], vec![0.1, 0.9, 0.5, 2.0, 2.0, 1.0]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn stack_rows_builds_matrix() {
        let r0 = [1.0f32, 2.0];
        let r1 = [3.0f32, 4.0];
        let t = Tensor::stack_rows(&[&r0, &r1], 2);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn finite_check() {
        let t = Tensor::from_vec(vec![2], vec![1.0, 2.0]);
        assert!(t.is_finite());
        let t = Tensor::from_vec(vec![2], vec![1.0, f32::NAN]);
        assert!(!t.is_finite());
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = a.reshape(&[3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data(), a.data());
    }

    /// Deterministic pseudo-random matrix (no RNG dep in this crate).
    fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let data = (0..rows * cols)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // map to [-1, 1), with exact zeros sprinkled in to exercise
                // the naive kernel's zero-skip branch
                let v = ((s >> 33) as f32 / (1u64 << 31) as f32) - 1.0;
                if (s >> 20).is_multiple_of(17) {
                    0.0
                } else {
                    v
                }
            })
            .collect();
        Tensor::from_vec(vec![rows, cols], data)
    }

    #[test]
    fn blocked_matmul_is_bit_identical_to_naive() {
        // dims straddle the MR=4 / NR=16 tile boundaries
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 8, 16),
            (5, 9, 17),
            (16, 33, 20),
            (13, 64, 31),
        ] {
            let a = lcg_matrix(m, k, (m * 1000 + n) as u64);
            let b = lcg_matrix(k, n, (k * 7 + 3) as u64);
            let blocked = a.matmul(&b);
            let naive = a.matmul_naive(&b);
            assert_eq!(blocked.shape(), naive.shape());
            for (x, y) in blocked.data().iter().zip(naive.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{m}x{k}x{n} diverged");
            }
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = lcg_matrix(6, 10, 1);
        let b = lcg_matrix(9, 10, 2); // [n, k] layout
        let fast = a.matmul_nt(&b);
        let reference = a.matmul_naive(&b.t());
        assert_eq!(fast.shape(), &[6, 9]);
        for (x, y) in fast.data().iter().zip(reference.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn matmul_tn_acc_matches_two_step_form() {
        let a = lcg_matrix(10, 6, 3); // [k, m]
        let b = lcg_matrix(10, 9, 4); // [k, n]
        let mut acc = lcg_matrix(6, 9, 5);
        let mut reference = acc.clone();
        a.matmul_tn_acc(&b, &mut acc);
        reference.add_scaled(1.0, &a.t().matmul_naive(&b));
        for (x, y) in acc.data().iter().zip(reference.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn matmul_into_reuses_and_reshapes() {
        let a = lcg_matrix(4, 5, 6);
        let b = lcg_matrix(5, 3, 7);
        let mut out = Tensor::zeros(&[2, 2]); // wrong shape: must be fixed up
        a.matmul_into(&b, &mut out);
        assert_eq!(out.shape(), &[4, 3]);
        assert_eq!(out.data(), a.matmul_naive(&b).data());
        // second call reuses the now-correct allocation
        a.matmul_into(&b, &mut out);
        assert_eq!(out.data(), a.matmul_naive(&b).data());
    }

    #[test]
    fn map_inplace_matches_map() {
        let a = lcg_matrix(3, 4, 8);
        let mut b = a.clone();
        b.map_inplace(|v| v * 2.0 - 1.0);
        assert_eq!(b.data(), a.map(|v| v * 2.0 - 1.0).data());
    }

    #[test]
    fn copy_from_copies() {
        let a = lcg_matrix(3, 4, 9);
        let mut b = Tensor::zeros(&[3, 4]);
        b.copy_from(&a);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    #[should_panic(expected = "copy_from shape mismatch")]
    fn copy_from_rejects_shape_mismatch() {
        let mut b = Tensor::zeros(&[3, 4]);
        b.copy_from(&Tensor::zeros(&[4, 3]));
    }
}
