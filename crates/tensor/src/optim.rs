//! Optimizers.
//!
//! * [`Sgd`] — the client-side optimizer. Supports momentum, weight decay,
//!   gradient clipping, and a **proximal term** toward an anchor parameter
//!   set: `grad += mu * (theta - anchor)`. The proximal form is what FedProx,
//!   Ditto, and pFedMe all reduce to, so the personalization crate reuses it.
//! * [`ServerOpt`] — the server-side optimizer family used by FedOpt
//!   (Reddi et al.): the aggregated client delta is treated as a
//!   pseudo-gradient and applied with SGD, Adam, or Yogi.

use crate::ParamMap;

/// Configuration for client-side SGD.
#[derive(Clone, Copy, Debug)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay added to the gradient.
    pub weight_decay: f32,
    /// Proximal coefficient `mu`; 0 disables the proximal term.
    pub prox_mu: f32,
    /// Optional global gradient-norm clip.
    pub max_grad_norm: Option<f32>,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
            prox_mu: 0.0,
            max_grad_norm: None,
        }
    }
}

impl SgdConfig {
    /// Plain SGD with the given learning rate.
    pub fn with_lr(lr: f32) -> Self {
        Self {
            lr,
            ..Self::default()
        }
    }
}

/// Stochastic gradient descent over a [`ParamMap`].
#[derive(Clone, Debug)]
pub struct Sgd {
    cfg: SgdConfig,
    velocity: Option<ParamMap>,
}

impl Sgd {
    /// Creates an optimizer with the given configuration.
    pub fn new(cfg: SgdConfig) -> Self {
        Self {
            cfg,
            velocity: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SgdConfig {
        &self.cfg
    }

    /// Replaces the configuration (e.g. when FedEx re-specifies client
    /// hyperparameters mid-course); momentum state is kept.
    pub fn set_config(&mut self, cfg: SgdConfig) {
        self.cfg = cfg;
    }

    /// Performs one SGD step on `params` given `grads`.
    ///
    /// `anchor`, when present, adds the proximal term
    /// `prox_mu * (params - anchor)` to the gradient *before* momentum.
    /// Only keys present in `grads` are updated, so buffers (batch-norm
    /// running statistics) are never touched.
    pub fn step(&mut self, params: &mut ParamMap, grads: &ParamMap, anchor: Option<&ParamMap>) {
        let cfg = self.cfg;
        // Gradient transforms (decay / proximal / clip) need a scratch copy;
        // the common training configuration needs none, so the hot paths
        // below apply `grads` (or the velocity) directly — no per-step
        // allocation, and numerically identical to the scratch-copy route.
        let needs_scratch = cfg.weight_decay != 0.0
            || (cfg.prox_mu != 0.0 && anchor.is_some())
            || cfg.max_grad_norm.is_some();
        if !needs_scratch {
            if cfg.momentum == 0.0 {
                for (k, g) in grads.iter() {
                    if let Some(p) = params.get_mut(k) {
                        p.add_scaled(-cfg.lr, g);
                    }
                }
            } else {
                let vel = self.velocity.get_or_insert_with(|| grads.zeros_like());
                // ensure velocity covers all grad keys
                for (k, g) in grads.iter() {
                    if !vel.contains(k) {
                        vel.insert(k.to_string(), g.zeros_like());
                    }
                }
                for (k, g) in grads.iter() {
                    let v = vel.get_mut(k).expect("velocity key");
                    v.scale(cfg.momentum);
                    v.add_scaled(1.0, g);
                    if let Some(p) = params.get_mut(k) {
                        p.add_scaled(-cfg.lr, v);
                    }
                }
            }
            return;
        }
        let mut eff = grads.clone();
        if self.cfg.weight_decay != 0.0 {
            for (k, g) in eff.iter_mut() {
                if let Some(p) = params.get(k) {
                    g.add_scaled(self.cfg.weight_decay, p);
                }
            }
        }
        if self.cfg.prox_mu != 0.0 {
            if let Some(anchor) = anchor {
                for (k, g) in eff.iter_mut() {
                    if let (Some(p), Some(a)) = (params.get(k), anchor.get(k)) {
                        let mut diff = p.clone();
                        diff.add_scaled(-1.0, a);
                        g.add_scaled(self.cfg.prox_mu, &diff);
                    }
                }
            }
        }
        if let Some(max) = self.cfg.max_grad_norm {
            eff.clip_norm(max);
        }
        if self.cfg.momentum != 0.0 {
            let vel = self.velocity.get_or_insert_with(|| eff.zeros_like());
            // ensure velocity covers all grad keys (e.g. after key-set change)
            for (k, g) in eff.iter() {
                if !vel.contains(k) {
                    vel.insert(k.to_string(), g.zeros_like());
                }
            }
            for (k, g) in eff.iter_mut() {
                let v = vel.get_mut(k).expect("velocity key");
                v.scale(self.cfg.momentum);
                v.add_scaled(1.0, g);
                *g = v.clone();
            }
        }
        for (k, g) in eff.iter() {
            if let Some(p) = params.get_mut(k) {
                p.add_scaled(-self.cfg.lr, g);
            }
        }
    }

    /// Clears momentum state.
    pub fn reset_state(&mut self) {
        self.velocity = None;
    }
}

/// Server-side optimizer family for FedOpt.
#[derive(Clone, Debug)]
pub enum ServerOpt {
    /// `theta += lr * delta` — plain FedAvg when `lr = 1`.
    Sgd {
        /// Server learning rate.
        lr: f32,
    },
    /// FedAdam: adaptive moments on the pseudo-gradient.
    Adam {
        /// Server learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Adaptivity epsilon.
        eps: f32,
        /// First-moment state (lazily initialized).
        m: Option<ParamMap>,
        /// Second-moment state (lazily initialized).
        v: Option<ParamMap>,
    },
    /// FedYogi: like Adam but with a sign-controlled second-moment update,
    /// which is less aggressive when gradients are sparse/heterogeneous.
    Yogi {
        /// Server learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Adaptivity epsilon.
        eps: f32,
        /// First-moment state (lazily initialized).
        m: Option<ParamMap>,
        /// Second-moment state (lazily initialized).
        v: Option<ParamMap>,
    },
}

impl ServerOpt {
    /// FedAvg-compatible server SGD with `lr = 1`.
    pub fn fedavg() -> Self {
        ServerOpt::Sgd { lr: 1.0 }
    }

    /// FedAdam with standard betas.
    pub fn adam(lr: f32) -> Self {
        ServerOpt::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.99,
            eps: 1e-3,
            m: None,
            v: None,
        }
    }

    /// FedYogi with standard betas.
    pub fn yogi(lr: f32) -> Self {
        ServerOpt::Yogi {
            lr,
            beta1: 0.9,
            beta2: 0.99,
            eps: 1e-3,
            m: None,
            v: None,
        }
    }

    /// Applies the aggregated client delta to the global model.
    pub fn apply(&mut self, global: &mut ParamMap, delta: &ParamMap) {
        match self {
            ServerOpt::Sgd { lr } => {
                global.add_scaled(*lr, delta);
            }
            ServerOpt::Adam {
                lr,
                beta1,
                beta2,
                eps,
                m,
                v,
            } => {
                let m = m.get_or_insert_with(|| delta.zeros_like());
                let v = v.get_or_insert_with(|| delta.zeros_like());
                for (k, d) in delta.iter() {
                    let mk = m.get_mut(k).expect("adam m key");
                    mk.scale(*beta1);
                    mk.add_scaled(1.0 - *beta1, d);
                    let vk = v.get_mut(k).expect("adam v key");
                    for (vv, dd) in vk.data_mut().iter_mut().zip(d.data()) {
                        *vv = *beta2 * *vv + (1.0 - *beta2) * dd * dd;
                    }
                }
                for (k, g) in global.iter_mut() {
                    if let (Some(mk), Some(vk)) = (m.get(k), v.get(k)) {
                        for ((p, mm), vv) in g.data_mut().iter_mut().zip(mk.data()).zip(vk.data()) {
                            *p += *lr * mm / (vv.sqrt() + *eps);
                        }
                    }
                }
            }
            ServerOpt::Yogi {
                lr,
                beta1,
                beta2,
                eps,
                m,
                v,
            } => {
                let m = m.get_or_insert_with(|| delta.zeros_like());
                let v = v.get_or_insert_with(|| delta.zeros_like());
                for (k, d) in delta.iter() {
                    let mk = m.get_mut(k).expect("yogi m key");
                    mk.scale(*beta1);
                    mk.add_scaled(1.0 - *beta1, d);
                    let vk = v.get_mut(k).expect("yogi v key");
                    for (vv, dd) in vk.data_mut().iter_mut().zip(d.data()) {
                        let d2 = dd * dd;
                        *vv -= (1.0 - *beta2) * d2 * (*vv - d2).signum();
                    }
                }
                for (k, g) in global.iter_mut() {
                    if let (Some(mk), Some(vk)) = (m.get(k), v.get(k)) {
                        for ((p, mm), vv) in g.data_mut().iter_mut().zip(mk.data()).zip(vk.data()) {
                            *p += *lr * mm / (vv.abs().sqrt() + *eps);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    fn p(v: &[f32]) -> ParamMap {
        let mut m = ParamMap::new();
        m.insert("w", Tensor::from_vec(vec![v.len()], v.to_vec()));
        m
    }

    #[test]
    fn plain_sgd_step() {
        let mut opt = Sgd::new(SgdConfig::with_lr(0.1));
        let mut params = p(&[1.0, 2.0]);
        let grads = p(&[10.0, -10.0]);
        opt.step(&mut params, &grads, None);
        assert_eq!(params.get("w").unwrap().data(), &[0.0, 3.0]);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = Sgd::new(SgdConfig {
            lr: 1.0,
            momentum: 0.5,
            ..Default::default()
        });
        let mut params = p(&[0.0]);
        let grads = p(&[1.0]);
        opt.step(&mut params, &grads, None); // v=1, p=-1
        opt.step(&mut params, &grads, None); // v=1.5, p=-2.5
        assert!((params.get("w").unwrap().data()[0] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut opt = Sgd::new(SgdConfig {
            lr: 0.1,
            weight_decay: 1.0,
            ..Default::default()
        });
        let mut params = p(&[1.0]);
        let grads = p(&[0.0]);
        opt.step(&mut params, &grads, None);
        assert!((params.get("w").unwrap().data()[0] - 0.9).abs() < 1e-6);
    }

    #[test]
    fn proximal_pulls_toward_anchor() {
        let mut opt = Sgd::new(SgdConfig {
            lr: 0.1,
            prox_mu: 1.0,
            ..Default::default()
        });
        let mut params = p(&[2.0]);
        let grads = p(&[0.0]);
        let anchor = p(&[0.0]);
        opt.step(&mut params, &grads, Some(&anchor));
        // grad_eff = 1.0 * (2 - 0) = 2 -> p = 2 - 0.2
        assert!((params.get("w").unwrap().data()[0] - 1.8).abs() < 1e-6);
    }

    #[test]
    fn grad_clipping_caps_step() {
        let mut opt = Sgd::new(SgdConfig {
            lr: 1.0,
            max_grad_norm: Some(1.0),
            ..Default::default()
        });
        let mut params = p(&[0.0, 0.0]);
        let grads = p(&[30.0, 40.0]); // norm 50 -> clipped to 1
        opt.step(&mut params, &grads, None);
        let w = params.get("w").unwrap();
        assert!((w.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn fedavg_server_is_plain_add() {
        let mut opt = ServerOpt::fedavg();
        let mut global = p(&[1.0]);
        let delta = p(&[0.5]);
        opt.apply(&mut global, &delta);
        assert_eq!(global.get("w").unwrap().data(), &[1.5]);
    }

    #[test]
    fn adam_moves_in_delta_direction() {
        let mut opt = ServerOpt::adam(0.1);
        let mut global = p(&[0.0]);
        let delta = p(&[1.0]);
        for _ in 0..5 {
            opt.apply(&mut global, &delta);
        }
        assert!(global.get("w").unwrap().data()[0] > 0.0);
    }

    #[test]
    fn yogi_moves_in_delta_direction() {
        let mut opt = ServerOpt::yogi(0.1);
        let mut global = p(&[0.0]);
        let delta = p(&[-1.0]);
        for _ in 0..5 {
            opt.apply(&mut global, &delta);
        }
        assert!(global.get("w").unwrap().data()[0] < 0.0);
    }

    #[test]
    fn sgd_ignores_buffer_keys_missing_from_grads() {
        let mut opt = Sgd::new(SgdConfig::with_lr(0.1));
        let mut params = p(&[1.0]);
        params.insert("bn.running_mean", Tensor::from_vec(vec![1], vec![5.0]));
        let grads = p(&[1.0]);
        opt.step(&mut params, &grads, None);
        assert_eq!(params.get("bn.running_mean").unwrap().data(), &[5.0]);
    }
}
