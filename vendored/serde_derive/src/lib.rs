//! Minimal in-repo stand-in for the `serde_derive` crate.
//!
//! Implements `#[derive(Serialize)]` for structs with named fields — the only
//! shape the workspace derives — by walking the raw `TokenStream` (no
//! syn/quote in the offline registry) and emitting an impl of the in-repo
//! `serde::Serialize` trait that builds a `serde::Value::Object` in field
//! declaration order.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a struct with named fields.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let name = struct_name(&tokens);
    let fields = named_fields(&tokens);

    let mut entries = String::new();
    for field in &fields {
        entries.push_str(&format!(
            "(String::from(\"{field}\"), serde::Serialize::to_value(&self.{field})),"
        ));
    }
    let output = format!(
        "impl serde::Serialize for {name} {{\n\
         \tfn to_value(&self) -> serde::Value {{\n\
         \t\tserde::Value::Object(vec![{entries}])\n\
         \t}}\n\
         }}"
    );
    output.parse().expect("derive(Serialize): generated impl must parse")
}

/// Returns the identifier following the `struct` keyword.
fn struct_name(tokens: &[TokenTree]) -> String {
    let mut iter = tokens.iter();
    while let Some(tree) = iter.next() {
        if matches!(tree, TokenTree::Ident(i) if i.to_string() == "struct") {
            if let Some(TokenTree::Ident(name)) = iter.next() {
                return name.to_string();
            }
            panic!("derive(Serialize): expected an identifier after `struct`");
        }
    }
    panic!("derive(Serialize): only structs are supported");
}

/// Returns the field names from the struct's brace-delimited body.
fn named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let body = tokens
        .iter()
        .rev()
        .find_map(|tree| match tree {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .expect("derive(Serialize): only structs with named fields are supported");

    let mut fields = Vec::new();
    let mut trees = body.into_iter().peekable();
    loop {
        // skip attributes (e.g. doc comments) and visibility before the name
        match trees.peek() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                trees.next();
                trees.next(); // the bracketed attribute body
                continue;
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                trees.next();
                if matches!(trees.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    trees.next(); // pub(crate) and friends
                }
                continue;
            }
            _ => {}
        }
        match trees.next() {
            Some(TokenTree::Ident(name)) => fields.push(name.to_string()),
            Some(other) => panic!("derive(Serialize): unexpected token `{other}` in struct body"),
            None => break,
        }
        // consume `: Type` up to the next top-level comma; groups nest angle
        // brackets safely, but bare `<`/`>` need explicit depth tracking
        let mut angle_depth = 0i32;
        for tree in trees.by_ref() {
            match tree {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}
