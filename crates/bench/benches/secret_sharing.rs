//! Criterion: additive secret sharing round-trips.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fs_privacy::secret_sharing::{reconstruct, share};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("secret_sharing");
    for len in [1_000usize, 100_000] {
        let values: Vec<f32> = (0..len).map(|i| i as f32 * 0.001).collect();
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("share_n5", len), &values, |b, v| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| share(std::hint::black_box(v), 5, &mut rng))
        });
        let mut rng = StdRng::seed_from_u64(1);
        let shares = share(&values, 5, &mut rng);
        group.bench_with_input(BenchmarkId::new("reconstruct_n5", len), &shares, |b, s| {
            b.iter(|| reconstruct(std::hint::black_box(s)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharing);
criterion_main!(benches);
