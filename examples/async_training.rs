//! Asynchronous training strategies (§3.3): swapping one condition event
//! turns synchronous FedAvg into FedBuff-style asynchronous FL.
//!
//! Runs the same FEMNIST-like workload under `all_received` (vanilla sync),
//! `goal_achieved` + after-receiving (FedBuff), and `time_up`, and compares
//! virtual time to the target accuracy.
//!
//! ```text
//! cargo run --release --example async_training
//! ```

use fedscope::core::config::{BroadcastManner, FlConfig, SamplerKind};
use fedscope::core::course::CourseBuilder;
use fedscope::data::synth::{femnist_like, ImageConfig};
use fedscope::sim::FleetConfig;
use fedscope::tensor::model::convnet2;
use fedscope::tensor::optim::SgdConfig;

fn main() {
    let data = femnist_like(&ImageConfig {
        num_clients: 60,
        per_client: 30,
        img: 8,
        num_classes: 10,
        ..Default::default()
    });
    let target = 0.9f32;
    let base = FlConfig {
        total_rounds: 200,
        concurrency: 20,
        local_steps: 4,
        batch_size: 20,
        sgd: SgdConfig::with_lr(0.25),
        target_accuracy: Some(target),
        seed: 2,
        ..Default::default()
    };
    let fleet_cfg = FleetConfig {
        num_clients: 60,
        speed_sigma: 1.5,
        seed: 99,
        ..Default::default()
    };

    let strategies: Vec<(&str, FlConfig)> = vec![
        ("all_received (sync vanilla)", base.clone().sync_vanilla()),
        (
            "goal_achieved + after-receiving (FedBuff)",
            base.clone()
                .async_goal(8, BroadcastManner::AfterReceiving, SamplerKind::Uniform),
        ),
        (
            "time_up + after-aggregating",
            base.clone().async_time(
                2.0,
                1,
                BroadcastManner::AfterAggregating,
                SamplerKind::Uniform,
            ),
        ),
    ];

    let mut sync_time = None;
    for (name, cfg) in strategies {
        let mut runner = CourseBuilder::new(
            data.clone(),
            Box::new(|rng| Box::new(convnet2(1, 8, 32, 10, 0.0, rng))),
            cfg,
        )
        .fleet_config(fleet_cfg.clone())
        .build();
        runner.run();
        match runner.time_to_accuracy(target) {
            Some(secs) => {
                let speedup = sync_time.map(|s: f64| s / secs);
                sync_time.get_or_insert(secs);
                println!(
                    "{name}: reached {:.0}% in {secs:.1} virtual seconds{}",
                    target * 100.0,
                    speedup.map_or(String::new(), |s| format!("  ({s:.2}x vs sync)"))
                );
            }
            None => println!("{name}: did not reach the target"),
        }
    }
}
