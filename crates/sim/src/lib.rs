//! `fs-sim` — virtual time, device heterogeneity, and the discrete-event queue.
//!
//! The paper evaluates by *simulation with virtual timestamps* (§5.3.1,
//! following FedScale's best practice): the server broadcasts at timestamp 0,
//! each client replies at `received + compute + communication`, the server
//! handles messages in timestamp order, and the next broadcast inherits the
//! timestamp of the message that triggered it. This crate provides the three
//! pieces that protocol needs:
//!
//! * [`time::VirtualTime`] — a totally ordered virtual clock;
//! * [`device::DeviceProfile`] / [`device::Fleet`] — per-client compute speed,
//!   bandwidth, and reliability drawn from heavy-tailed distributions (the
//!   paper uses FedScale device traces; we substitute log-normal draws, which
//!   reproduce the heterogeneity the async experiments exercise);
//! * [`queue::EventQueue`] — the deterministic timestamp-ordered event queue
//!   the standalone runner drains.

pub mod device;
pub mod queue;
pub mod time;

pub use device::{DeviceProfile, Fleet, FleetConfig};
pub use queue::{EventQueue, Handle, IndexedEventQueue};
pub use time::VirtualTime;
