//! Client samplers (§3.3.1 (ii)).
//!
//! Uniform sampling biases asynchronous FL against slow clients (their
//! updates arrive stale and get discounted/dropped), so the paper also
//! provides a responsiveness-weighted sampler and a group sampler.

use fs_net::ParticipantId;
use rand::seq::SliceRandom;
use rand::Rng;

/// A client sampling strategy.
#[derive(Clone, Debug)]
pub enum Sampler {
    /// Uniform over the candidate set.
    Uniform,
    /// Probability proportional to the client's estimated response speed
    /// (`speeds[id - 1]`).
    Responsiveness {
        /// Per-client response speed estimates, indexed by client id - 1.
        speeds: Vec<f64>,
    },
    /// Sample entirely within one responsiveness group per call, rotating
    /// through groups so every group gets rounds at its own pace.
    Group {
        /// Client ids per group.
        groups: Vec<Vec<ParticipantId>>,
        /// Next group to draw from.
        cursor: usize,
    },
}

impl Sampler {
    /// Creates a group sampler from group membership lists.
    pub fn group(groups: Vec<Vec<ParticipantId>>) -> Self {
        Sampler::Group { groups, cursor: 0 }
    }

    /// Samples up to `k` distinct clients from `candidates` (idle clients).
    ///
    /// Returns fewer than `k` when the relevant candidate pool is smaller.
    pub fn sample(
        &mut self,
        candidates: &[ParticipantId],
        k: usize,
        rng: &mut impl Rng,
    ) -> Vec<ParticipantId> {
        if candidates.is_empty() || k == 0 {
            return Vec::new();
        }
        match self {
            Sampler::Uniform => {
                let mut pool = candidates.to_vec();
                pool.shuffle(rng);
                pool.truncate(k);
                pool
            }
            Sampler::Responsiveness { speeds } => {
                // weighted sampling without replacement (successive draws)
                let mut pool: Vec<ParticipantId> = candidates.to_vec();
                let mut out = Vec::with_capacity(k.min(pool.len()));
                while out.len() < k && !pool.is_empty() {
                    let total: f64 = pool
                        .iter()
                        .map(|&c| {
                            speeds
                                .get((c - 1) as usize)
                                .copied()
                                .unwrap_or(1.0)
                                .max(1e-12)
                        })
                        .sum();
                    let mut u: f64 = rng.gen::<f64>() * total;
                    let mut pick = pool.len() - 1;
                    for (i, &c) in pool.iter().enumerate() {
                        let w = speeds
                            .get((c - 1) as usize)
                            .copied()
                            .unwrap_or(1.0)
                            .max(1e-12);
                        if u < w {
                            pick = i;
                            break;
                        }
                        u -= w;
                    }
                    out.push(pool.swap_remove(pick));
                }
                out
            }
            Sampler::Group { groups, cursor } => {
                if groups.is_empty() {
                    return Vec::new();
                }
                // find the next group with available candidates
                for _ in 0..groups.len() {
                    let g = &groups[*cursor % groups.len()];
                    *cursor = (*cursor + 1) % groups.len();
                    let mut pool: Vec<ParticipantId> = g
                        .iter()
                        .copied()
                        .filter(|c| candidates.contains(c))
                        .collect();
                    if pool.is_empty() {
                        continue;
                    }
                    pool.shuffle(rng);
                    pool.truncate(k);
                    return pool;
                }
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_returns_distinct_subset() {
        let mut s = Sampler::Uniform;
        let mut rng = StdRng::seed_from_u64(1);
        let cands: Vec<u32> = (1..=20).collect();
        let picked = s.sample(&cands, 5, &mut rng);
        assert_eq!(picked.len(), 5);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
        assert!(picked.iter().all(|c| cands.contains(c)));
    }

    #[test]
    fn uniform_caps_at_pool_size() {
        let mut s = Sampler::Uniform;
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(s.sample(&[1, 2], 10, &mut rng).len(), 2);
        assert!(s.sample(&[], 3, &mut rng).is_empty());
        assert!(s.sample(&[1, 2], 0, &mut rng).is_empty());
    }

    #[test]
    fn responsiveness_prefers_fast_clients() {
        // client 1 is 50x faster than client 2
        let mut s = Sampler::Responsiveness {
            speeds: vec![50.0, 1.0],
        };
        let mut rng = StdRng::seed_from_u64(2);
        let mut count1 = 0;
        for _ in 0..200 {
            let picked = s.sample(&[1, 2], 1, &mut rng);
            if picked == vec![1] {
                count1 += 1;
            }
        }
        assert!(count1 > 170, "fast client picked only {count1}/200 times");
    }

    #[test]
    fn responsiveness_without_replacement() {
        let mut s = Sampler::Responsiveness {
            speeds: vec![1.0, 1.0, 1.0],
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut picked = s.sample(&[1, 2, 3], 3, &mut rng);
        picked.sort_unstable();
        assert_eq!(picked, vec![1, 2, 3]);
    }

    #[test]
    fn group_rotates_between_groups() {
        let mut s = Sampler::group(vec![vec![1, 2], vec![3, 4]]);
        let mut rng = StdRng::seed_from_u64(4);
        let all: Vec<u32> = vec![1, 2, 3, 4];
        let a = s.sample(&all, 2, &mut rng);
        let b = s.sample(&all, 2, &mut rng);
        let ga: Vec<bool> = a.iter().map(|&c| c <= 2).collect();
        let gb: Vec<bool> = b.iter().map(|&c| c <= 2).collect();
        assert!(ga.iter().all(|&x| x), "first draw crossed groups: {a:?}");
        assert!(gb.iter().all(|&x| !x), "second draw crossed groups: {b:?}");
    }

    #[test]
    fn group_skips_empty_groups() {
        let mut s = Sampler::group(vec![vec![1], vec![2]]);
        let mut rng = StdRng::seed_from_u64(5);
        // only client 2 is idle; the group sampler should skip group 0
        let picked = s.sample(&[2], 1, &mut rng);
        assert_eq!(picked, vec![2]);
    }
}
