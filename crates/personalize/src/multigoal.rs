//! FL with multiple learning goals (§3.4.2).
//!
//! Participants reach a consensus on *what to share* — here, the graph
//! encoder keys `gconv*` — and keep their heads, losses, and even task types
//! private. One client may run graph classification while another regresses
//! edge density; both improve the shared structural encoder.

use fs_core::config::FlConfig;
use fs_core::course::CourseBuilder;
use fs_core::runner::StandaloneRunner;
use fs_core::trainer::{LocalTrainer, ShareFilter, TrainConfig};
use fs_data::graphs::{GraphConfig, GraphTask};
use fs_data::FedDataset;
use fs_tensor::loss::LossKind;
use fs_tensor::model::Gcn;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// The consensus share filter for graph multi-goal courses: only the graph
/// encoder is exchanged.
pub fn encoder_share_filter() -> ShareFilter {
    Arc::new(|name: &str| name.starts_with("gconv"))
}

/// Builds a multi-goal FL course over the synthetic graph tasks: each client
/// gets a [`Gcn`] whose head matches its own goal (classification or
/// regression), and only the encoder is federated.
pub fn multi_goal_course(
    graph_cfg: &GraphConfig,
    data: FedDataset,
    cfg: FlConfig,
) -> StandaloneRunner {
    assert_eq!(
        data.num_clients(),
        graph_cfg.tasks.len(),
        "dataset/tasks mismatch"
    );
    let nodes = graph_cfg.nodes;
    let feats = graph_cfg.feats;
    let tasks = graph_cfg.tasks.clone();
    let hidden = 12usize;
    CourseBuilder::new(
        data,
        // the template (defines the shared global init) is a classifier; only
        // its gconv keys matter because of the share filter
        Box::new(move |rng| {
            Box::new(Gcn::new(
                nodes,
                feats,
                hidden,
                2,
                LossKind::SoftmaxCrossEntropy,
                rng,
            ))
        }),
        cfg,
    )
    .share_filter(encoder_share_filter())
    .no_central_eval() // task types differ; evaluation is client-side
    .trainer_factory(Box::new(move |i, template, split, cfg| {
        // private head per goal; encoder initialized from the template so all
        // clients agree on the shared starting point
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (i as u64 + 101));
        let (out, loss) = match tasks[i] {
            GraphTask::Classification => (2, LossKind::SoftmaxCrossEntropy),
            GraphTask::Regression => (1, LossKind::Mse),
        };
        let mut model = Gcn::new(nodes, feats, hidden, out, loss, &mut rng);
        let shared = template.get_params().filter(|k| k.starts_with("gconv"));
        use fs_tensor::model::Model;
        let mut p = model.get_params();
        p.merge_from(&shared);
        model.set_params(&p);
        Box::new(LocalTrainer::new(
            Box::new(model),
            split,
            TrainConfig {
                local_steps: cfg.local_steps,
                batch_size: cfg.batch_size,
                sgd: cfg.sgd,
            },
            encoder_share_filter(),
            cfg.seed ^ (i as u64 + 1),
        ))
    }))
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_data::graphs::graph_multitask;
    use fs_tensor::optim::SgdConfig;

    #[test]
    fn consensus_filter_selects_encoder_only() {
        let f = encoder_share_filter();
        assert!(f("gconv1.weight"));
        assert!(f("gconv2.weight"));
        assert!(!f("head.weight"));
        assert!(!f("head.bias"));
    }

    #[test]
    fn mixed_goal_course_runs_and_reports() {
        let gcfg = GraphConfig {
            per_client: 20,
            tasks: vec![
                GraphTask::Classification,
                GraphTask::Classification,
                GraphTask::Regression,
            ],
            ..Default::default()
        };
        let data = graph_multitask(&gcfg);
        let cfg = FlConfig {
            total_rounds: 4,
            concurrency: 3,
            local_steps: 4,
            batch_size: 8,
            sgd: SgdConfig::with_lr(0.2),
            ..Default::default()
        };
        let mut runner = multi_goal_course(&gcfg, data, cfg);
        // the global model carries only encoder keys
        let names: Vec<&str> = runner.server.state.global.names().collect();
        assert_eq!(names, vec!["gconv1.weight", "gconv2.weight"]);
        let report = runner.run();
        assert_eq!(report.rounds, 4);
        // all three clients (two classifiers, one regressor) reported
        assert_eq!(runner.server.state.client_reports.len(), 3);
        // the regression client's report has accuracy 0 but n > 0
        let reg = runner.server.state.client_reports[&3];
        assert!(reg.n > 0);
        assert_eq!(reg.accuracy, 0.0);
    }

    #[test]
    fn shared_encoder_helps_classification() {
        // federated encoder vs frozen-at-init encoder: the federated one
        // should reach a lower or equal validation loss on classification
        let gcfg = GraphConfig {
            per_client: 40,
            tasks: vec![
                GraphTask::Classification,
                GraphTask::Classification,
                GraphTask::Regression,
            ],
            ..Default::default()
        };
        let data = graph_multitask(&gcfg);
        let cfg = FlConfig {
            total_rounds: 40,
            concurrency: 3,
            local_steps: 6,
            batch_size: 8,
            sgd: SgdConfig::with_lr(0.3),
            ..Default::default()
        };
        let mut runner = multi_goal_course(&gcfg, data, cfg);
        let report = runner.run();
        assert_eq!(report.rounds, 40);
        let c1 = runner.server.state.client_reports[&1];
        assert!(c1.accuracy > 0.7, "classification client stuck at {c1:?}");
        // the regression client converged too (tiny MSE, no accuracy)
        let c3 = runner.server.state.client_reports[&3];
        assert!(c3.loss < 0.1, "regression client stuck at {c3:?}");
    }
}
