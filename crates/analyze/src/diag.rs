//! Structured source-level diagnostics: stable `FSAnnn` codes, severities,
//! findings, and the report type.
//!
//! The family complements fs-verify's `FSVnnn` codes: fs-verify checks
//! *courses and configs* at runtime-construction time, fs-analyze checks
//! *source text* at CI time. Numeric ranges group the lint families:
//!
//! * `FSA00x` — determinism (ambient RNG, wall-clock in charged crates,
//!   unordered containers, float reductions)
//! * `FSA02x` — panic safety (`unwrap`/`expect`/`panic!`/indexing)
//! * `FSA04x` — concurrency (nested locks, guards across channel ops)
//! * `FSA09x` — pragma hygiene (the suppression grammar policing itself)

use std::fmt;

/// How bad a finding is. Severity is assigned by the per-crate policy tier
/// (see [`crate::policy`]), not fixed per code: the same `unwrap()` is an
/// Error in the distributed runtime and a Warning in a library crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; printed with `--notes`, never gates CI.
    Note,
    /// Counts against the debt ratchet.
    Warning,
    /// Counts against the debt ratchet.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable lint codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// FSA001: ambient RNG (`thread_rng`, `from_entropy`) — every random
    /// draw must come from a seed threaded through the call path.
    AmbientRng,
    /// FSA002: wall-clock (`Instant::now`, `SystemTime`) inside a
    /// sim-charged crate, where time must be virtual.
    WallClock,
    /// FSA003: `HashMap`/`HashSet` in a deterministic crate — iteration
    /// order can leak into delivery, roster, or fault-draw behavior.
    UnorderedContainer,
    /// FSA004: order-sensitive float reduction (`sum::<f32>`, float `fold`)
    /// outside the blessed aggregation kernels.
    FloatReduce,
    /// FSA020: `.unwrap()` in non-test code.
    Unwrap,
    /// FSA021: `.expect(..)` in non-test code.
    Expect,
    /// FSA022: `panic!`/`unreachable!`/`todo!`/`unimplemented!` in non-test
    /// code.
    PanicMacro,
    /// FSA023: direct slice/array indexing (can panic) in runtime crates.
    SliceIndex,
    /// FSA040: a second lock acquired while another guard is held.
    NestedLock,
    /// FSA041: a channel send/recv while a lock guard is held.
    GuardAcrossChannel,
    /// FSA090: an `fsa::allow` pragma without a reason.
    PragmaMissingReason,
    /// FSA091: an `fsa::allow` pragma that suppressed nothing.
    UnusedPragma,
    /// FSA092: an `fsa::allow` pragma naming an unknown code.
    UnknownPragmaCode,
}

/// Every code, in stable order (fixture corpus and docs iterate this).
pub const ALL_CODES: [Code; 13] = [
    Code::AmbientRng,
    Code::WallClock,
    Code::UnorderedContainer,
    Code::FloatReduce,
    Code::Unwrap,
    Code::Expect,
    Code::PanicMacro,
    Code::SliceIndex,
    Code::NestedLock,
    Code::GuardAcrossChannel,
    Code::PragmaMissingReason,
    Code::UnusedPragma,
    Code::UnknownPragmaCode,
];

impl Code {
    /// The stable `FSAnnn` string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::AmbientRng => "FSA001",
            Code::WallClock => "FSA002",
            Code::UnorderedContainer => "FSA003",
            Code::FloatReduce => "FSA004",
            Code::Unwrap => "FSA020",
            Code::Expect => "FSA021",
            Code::PanicMacro => "FSA022",
            Code::SliceIndex => "FSA023",
            Code::NestedLock => "FSA040",
            Code::GuardAcrossChannel => "FSA041",
            Code::PragmaMissingReason => "FSA090",
            Code::UnusedPragma => "FSA091",
            Code::UnknownPragmaCode => "FSA092",
        }
    }

    /// Parses an `FSAnnn` string (the pragma grammar's code field).
    pub fn parse(s: &str) -> Option<Code> {
        ALL_CODES.iter().copied().find(|c| c.as_str() == s)
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One source-level finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Stable code.
    pub code: Code,
    /// Tier-graded severity.
    pub severity: Severity,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// Suggested fix, if one is known.
    pub suggestion: Option<String>,
}

impl Finding {
    /// `file:line: severity [code] message (help: suggestion)` — the CLI line.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{}:{}: {} [{}] {}",
            self.file, self.line, self.severity, self.code, self.message
        );
        if let Some(h) = &self.suggestion {
            s.push_str(&format!(" (help: {h})"));
        }
        s
    }

    /// Whether the finding counts against the debt ratchet.
    pub fn gates(&self) -> bool {
        self.severity > Severity::Note
    }
}

/// The analyzer's output over one file or the whole workspace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AnalyzeReport {
    /// All findings, sorted by (file, line, code).
    pub findings: Vec<Finding>,
}

impl AnalyzeReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds findings and restores the (file, line, code) sort.
    pub fn extend(&mut self, fs: impl IntoIterator<Item = Finding>) {
        self.findings.extend(fs);
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.code).cmp(&(&b.file, b.line, b.code)));
    }

    /// Count at a severity.
    pub fn count(&self, sev: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == sev).count()
    }

    /// The findings that gate the ratchet (Error + Warning).
    pub fn gating(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.gates()).collect()
    }

    /// True if any finding carries the given code.
    pub fn has_code(&self, code: Code) -> bool {
        self.findings.iter().any(|f| f.code == code)
    }

    /// `(errors, warnings, notes)` counts.
    pub fn tally(&self) -> (usize, usize, usize) {
        (
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let mut strs: Vec<&str> = ALL_CODES.iter().map(|c| c.as_str()).collect();
        let n = strs.len();
        strs.sort_unstable();
        strs.dedup();
        assert_eq!(strs.len(), n, "duplicate FSA code strings");
        for c in ALL_CODES {
            assert!(c.as_str().starts_with("FSA"));
            assert_eq!(c.as_str().len(), 6);
            assert_eq!(Code::parse(c.as_str()), Some(c));
        }
        assert_eq!(Code::parse("FSA999"), None);
    }

    #[test]
    fn report_sorts_and_tallies() {
        let f = |file: &str, line: u32, code: Code, sev: Severity| Finding {
            code,
            severity: sev,
            file: file.into(),
            line,
            message: "m".into(),
            suggestion: None,
        };
        let mut r = AnalyzeReport::new();
        r.extend([
            f("b.rs", 3, Code::Unwrap, Severity::Error),
            f("a.rs", 9, Code::AmbientRng, Severity::Warning),
            f("a.rs", 2, Code::SliceIndex, Severity::Note),
        ]);
        assert_eq!(r.findings[0].file, "a.rs");
        assert_eq!(r.findings[0].line, 2);
        assert_eq!(r.tally(), (1, 1, 1));
        assert_eq!(r.gating().len(), 2);
        assert!(r.has_code(Code::Unwrap));
    }
}
