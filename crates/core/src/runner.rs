//! The standalone runner: a deterministic virtual-time simulation.
//!
//! Implements the paper's evaluation protocol (§5.3.1) exactly: the server
//! broadcasts at timestamp 0; a client's reply is stamped
//! `received + compute + communication` (compute from its device profile);
//! the server handles messages in timestamp order and its own time is
//! negligible, so everything it emits inherits the triggering timestamp.
//! Crashed deliveries (device failures) silently drop the round's broadcast,
//! which is what the `time_up` remedial machinery exists to absorb.
//!
//! # Parallel execution (`FlConfig::parallelism`)
//!
//! With `parallelism > 1` the runner speculatively executes client handlers
//! on an `fs-exec` worker pool while keeping the simulation bit-identical to
//! serial execution. When the server emits a message to a client, the runner
//! already knows the exact virtual delivery time, and between that emission
//! and the delivery pop no other event can touch the client *in the common
//! case* — so the client is moved into a worker job that snapshots its state
//! and runs the handler immediately, in parallel with the rest of the
//! simulation. When the delivery event pops, the runner either *adopts* the
//! precomputed result (re-emitting its outputs and monitor records at
//! exactly the serial program point, so queue sequence numbers, RNG draws,
//! timestamps, and report fields all match serially produced ones) or
//! *recalls* the speculation — rolling the client back to its snapshot —
//! when the prediction was wrong: an earlier delivery reached the same
//! client first, or the broadcast was lost to a simulated device crash.
//! See DESIGN.md ("Determinism contract") for the full argument.

use crate::client::Client;
use crate::ctx::Ctx;
use crate::eval::EvalRecord;
use crate::event::Condition;
use crate::server::Server;
use fs_exec::{JobHandle, WorkerPool};
use fs_monitor::{counters, BufferMonitor, MonitorHandle};
use fs_net::{Message, MessageKind, ParticipantId, SERVER_ID};
use fs_sim::{EventQueue, Fleet, VirtualTime};
use fs_verify::{VerifyMode, VerifyReport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// An entry in the simulation's event queue.
enum SimEvent {
    /// Deliver a message to its receiver.
    Deliver(Message),
    /// Deliver a message whose handling was speculatively started on a
    /// worker when the message was emitted. The message itself travels
    /// inside the speculation job; this entry holds just enough to run the
    /// serial bookkeeping (crash draw, counters) at the right queue
    /// position.
    SpecDeliver {
        /// The client the message is addressed to.
        receiver: ParticipantId,
        /// The message kind (drives the crash draw and counters).
        kind: MessageKind,
        /// Key into the runner's outstanding-speculation table.
        spec_id: u64,
    },
    /// Fire a timer-armed condition on a participant.
    Timer {
        /// The participant the timer belongs to (currently always the server).
        to: ParticipantId,
        /// The condition to raise.
        condition: Condition,
        /// The round the timer was armed in.
        round: u64,
    },
}

/// What a speculation job sends back to the simulation thread.
struct SpecResult {
    /// The client, moved back. Post-dispatch state when `run` is `Some`,
    /// untouched when `None`.
    client: Client,
    /// The message the speculation was created for (needed to dispatch
    /// serially on recall or ineligibility).
    msg: Message,
    /// The executed speculation, or `None` when the client's trainer could
    /// not be snapshotted (it then runs serially at the delivery pop).
    run: Option<SpecRun>,
}

/// The outputs of a speculatively executed dispatch.
struct SpecRun {
    /// Pre-dispatch client state, for rollback on recall.
    snapshot: crate::client::ClientSnapshot,
    /// The handler's recorded intents, to be enqueued at adopt time.
    ctx: Ctx,
    /// Monitor operations the handler issued, buffered for in-order replay.
    ops: Vec<fs_monitor::MonitorOp>,
}

/// Outcome summary of a finished course.
///
/// `PartialEq` compares every field — the serial-vs-parallel determinism
/// tests assert whole-report equality.
#[derive(Clone, Debug, PartialEq)]
pub struct CourseReport {
    /// Final virtual time.
    pub final_time_secs: f64,
    /// Aggregation rounds completed.
    pub rounds: u64,
    /// The global learning curve.
    pub history: Vec<EvalRecord>,
    /// Why the course ended.
    pub finish_reason: String,
    /// Updates dropped for staleness.
    pub dropped_updates: u64,
    /// Total updates received.
    pub total_updates: u64,
    /// Broadcast deliveries lost to device crashes.
    pub crashed_deliveries: u64,
    /// Remedial-measure activations.
    pub remedial_count: u64,
    /// Total payload bytes sent client → server (exact wire sizes, so
    /// compressed uploads show their real savings).
    pub uploaded_bytes: u64,
    /// Total payload bytes sent server → clients.
    pub downloaded_bytes: u64,
    /// The effective `<event, handler>` pairs that took effect, per
    /// participant group — "printed out and recorded in the experimental
    /// logs" (§3.2).
    pub effective_handlers: Vec<String>,
    /// Registry overwrite warnings collected while assembling the course.
    pub registry_warnings: Vec<String>,
    /// Emit-conformance violations observed during dispatch (`FSV040`):
    /// handlers that emitted events absent from their declared `emits` list.
    pub conformance_violations: Vec<String>,
    /// Clients dropped from the course after their connection died
    /// (distributed runs only; standalone simulation never drops).
    pub dropouts: Vec<fs_net::ParticipantId>,
    /// Successful client reconnections (distributed TCP runs only).
    pub reconnects: u64,
}

impl CourseReport {
    /// Total payload bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.uploaded_bytes + self.downloaded_bytes
    }

    /// The learning-curve point with the highest accuracy, if any.
    pub fn best(&self) -> Option<&EvalRecord> {
        self.history
            .iter()
            .max_by(|a, b| a.metrics.accuracy.total_cmp(&b.metrics.accuracy))
    }

    /// Best global accuracy observed over the course (0 when never evaluated).
    pub fn best_accuracy(&self) -> f32 {
        self.best().map_or(0.0, |r| r.metrics.accuracy)
    }

    /// First virtual time (seconds) at which global accuracy reached
    /// `target`, if it ever did.
    pub fn time_to_accuracy(&self, target: f32) -> Option<f64> {
        self.history
            .iter()
            .find(|r| r.metrics.accuracy >= target)
            .map(|r| r.time_secs)
    }
}

/// Runs an FL course under virtual time.
pub struct StandaloneRunner {
    /// The server participant.
    pub server: Server,
    /// The client participants, keyed by id.
    pub clients: BTreeMap<ParticipantId, Client>,
    /// Device profiles.
    pub fleet: Fleet,
    /// Current virtual time.
    pub now: VirtualTime,
    /// Broadcast deliveries dropped by simulated device crashes.
    pub crashed_deliveries: u64,
    /// Payload bytes sent toward the server so far.
    pub uploaded_bytes: u64,
    /// Payload bytes sent toward clients so far.
    pub downloaded_bytes: u64,
    queue: EventQueue<SimEvent>,
    crash_rng: StdRng,
    max_events: u64,
    monitor: MonitorHandle,
    /// Worker pool for speculative client execution; `None` runs serially.
    pool: Option<WorkerPool>,
    /// In-flight speculations by id.
    pending: BTreeMap<u64, JobHandle<SpecResult>>,
    /// The (single) outstanding speculation per client, if any.
    spec_by_client: BTreeMap<ParticipantId, u64>,
    /// Messages recovered from recalled speculations, dispatched serially
    /// when their `SpecDeliver` entry pops.
    recalled: BTreeMap<u64, Message>,
    spec_seq: u64,
}

impl StandaloneRunner {
    /// Assembles a runner; the course starts when [`StandaloneRunner::run`]
    /// is called.
    pub fn new(server: Server, clients: Vec<Client>, fleet: Fleet, seed: u64) -> Self {
        let clients: BTreeMap<ParticipantId, Client> =
            clients.into_iter().map(|c| (c.state.id, c)).collect();
        assert_eq!(
            fleet.len(),
            clients.len(),
            "fleet size must match client count"
        );
        Self {
            server,
            clients,
            fleet,
            now: VirtualTime::ZERO,
            crashed_deliveries: 0,
            uploaded_bytes: 0,
            downloaded_bytes: 0,
            queue: EventQueue::new(),
            crash_rng: StdRng::seed_from_u64(seed ^ 0xc4a5),
            max_events: 50_000_000,
            monitor: MonitorHandle::null(),
            pool: None,
            pending: BTreeMap::new(),
            spec_by_client: BTreeMap::new(),
            recalled: BTreeMap::new(),
            spec_seq: 0,
        }
    }

    /// Caps the number of processed events (safety valve for tests).
    pub fn with_max_events(mut self, max: u64) -> Self {
        self.max_events = max;
        self
    }

    /// Attaches an observability sink. Dispatch spans, charged virtual-time
    /// intervals, byte/message counters, and per-round metrics flow into it;
    /// the default null handle keeps all of that free.
    pub fn with_monitor(mut self, monitor: MonitorHandle) -> Self {
        self.monitor = monitor;
        self
    }

    fn enqueue_intents(&mut self, from: ParticipantId, ctx: Ctx) {
        let now = ctx.now;
        for out in ctx.outbox {
            let mut msg = out.msg;
            let payload_bytes = msg.payload_bytes() as u64;
            self.monitor.add(counters::MESSAGES_SENT, 1);
            // the monitor's byte counters are bumped at the same statements
            // that charge the report's totals, so they reconcile exactly
            if msg.receiver == SERVER_ID {
                self.uploaded_bytes += payload_bytes;
                self.monitor.add(counters::UPLOADED_BYTES, payload_bytes);
            } else {
                self.downloaded_bytes += payload_bytes;
                self.monitor.add(counters::DOWNLOADED_BYTES, payload_bytes);
            }
            let delay = if from == SERVER_ID {
                // server time is negligible; the receiver pays the download
                let p = self.fleet.profile(msg.receiver);
                let comm = p.comm_secs(msg.payload_bytes());
                if self.monitor.is_live() && comm > 0.0 {
                    self.monitor
                        .span(msg.receiver, "download", "comm", now, comm);
                }
                comm
            } else {
                let p = self.fleet.profile(from);
                let compute = p.compute_secs(out.compute_work.round() as usize);
                let comm = p.comm_secs(msg.payload_bytes());
                if self.monitor.is_live() {
                    if compute > 0.0 {
                        self.monitor
                            .span(from, "local_train", "compute", now, compute);
                    }
                    if comm > 0.0 {
                        self.monitor
                            .span(from, "upload", "comm", now + compute, comm);
                    }
                }
                compute + comm
            };
            msg.timestamp = (now + delay).as_secs();
            let deliver_at = now + delay;
            if self.can_speculate(from, &msg) {
                self.spawn_speculation(deliver_at, msg);
            } else {
                self.queue.push(deliver_at, SimEvent::Deliver(msg));
            }
        }
        for t in ctx.timers {
            self.queue.push(
                now + t.delay_secs,
                SimEvent::Timer {
                    to: from,
                    condition: t.condition,
                    round: t.round,
                },
            );
        }
    }

    /// Whether handling `msg` may start now on a worker. Only server → client
    /// traffic of the kinds that trigger real work (training, evaluation) is
    /// worth speculating; the client must be present (not already
    /// speculating) and its trainer snapshotable.
    fn can_speculate(&self, from: ParticipantId, msg: &Message) -> bool {
        self.pool.is_some()
            && from == SERVER_ID
            && msg.receiver != SERVER_ID
            && matches!(
                msg.kind,
                MessageKind::ModelParams | MessageKind::EvalRequest | MessageKind::Finish
            )
            && self.clients.contains_key(&msg.receiver)
            && !self.spec_by_client.contains_key(&msg.receiver)
    }

    /// Moves the receiver into a worker job that snapshots it and runs the
    /// handler at the (already known) delivery time, and queues a
    /// [`SimEvent::SpecDeliver`] at the exact position the serial runner
    /// would queue the delivery.
    fn spawn_speculation(&mut self, deliver_at: VirtualTime, msg: Message) {
        let receiver = msg.receiver;
        let kind = msg.kind;
        let spec_id = self.spec_seq;
        self.spec_seq += 1;
        let mut client = self
            .clients
            .remove(&receiver)
            .expect("can_speculate checked presence");
        let live = self.monitor.is_live();
        let pool = self.pool.as_ref().expect("can_speculate checked pool");
        let handle = pool.spawn(move || {
            let Some(snapshot) = client.snapshot() else {
                return SpecResult {
                    client,
                    msg,
                    run: None,
                };
            };
            // handlers must not write to the shared monitor from a worker:
            // record into a buffer, replayed in order at adopt time
            let buf = live.then(|| Arc::new(Mutex::new(BufferMonitor::new())));
            let handle_monitor = match &buf {
                Some(b) => MonitorHandle::from_shared(b.clone()),
                None => MonitorHandle::null(),
            };
            let mut ctx = Ctx::with_monitor(deliver_at, handle_monitor);
            client.handle(&msg, &mut ctx);
            ctx.monitor = MonitorHandle::null();
            let ops = buf
                .map(|b| {
                    std::mem::take(&mut *b.lock().unwrap_or_else(|p| p.into_inner())).into_ops()
                })
                .unwrap_or_default();
            SpecResult {
                client,
                msg,
                run: Some(SpecRun { snapshot, ctx, ops }),
            }
        });
        self.pending.insert(spec_id, handle);
        self.spec_by_client.insert(receiver, spec_id);
        self.queue.push(
            deliver_at,
            SimEvent::SpecDeliver {
                receiver,
                kind,
                spec_id,
            },
        );
    }

    /// Recalls the outstanding speculation on `id`, if any: joins the job,
    /// rolls the client back to its pre-dispatch snapshot, and stashes the
    /// message so the pending `SpecDeliver` entry dispatches it serially.
    fn recall(&mut self, id: ParticipantId) {
        let Some(spec_id) = self.spec_by_client.remove(&id) else {
            return;
        };
        let handle = self.pending.remove(&spec_id).expect("pending speculation");
        let res = handle.join();
        let mut client = res.client;
        if let Some(run) = res.run {
            client.restore(run.snapshot);
        }
        self.clients.insert(id, client);
        self.recalled.insert(spec_id, res.msg);
    }

    /// Rolls back every outstanding speculation (used when the run stops
    /// with queued events still pending, e.g. at the event cap, so client
    /// state matches a serial run that never dispatched them).
    fn drain_speculations(&mut self) {
        let ids: Vec<ParticipantId> = self.spec_by_client.keys().copied().collect();
        for id in ids {
            self.recall(id);
        }
        self.recalled.clear();
    }

    /// The serial client-delivery path: crash draw, participation counter,
    /// then dispatch. Recalls any outstanding speculation on the receiver
    /// first — its prediction is invalidated by this earlier delivery.
    fn deliver_client(&mut self, at: VirtualTime, msg: Message) {
        if msg.kind == MessageKind::ModelParams
            && self.fleet.crashes(msg.receiver, &mut self.crash_rng)
        {
            // device crash: the broadcast never reaches the client (and any
            // speculation on it stays valid — the client handles nothing)
            self.crashed_deliveries += 1;
            self.monitor.add(counters::CRASHED_DELIVERIES, 1);
            return;
        }
        if msg.kind == MessageKind::ModelParams {
            self.monitor.add(counters::PARTICIPATION, 1);
        }
        self.recall(msg.receiver);
        self.dispatch_client(at, &msg);
    }

    /// Runs a client handler inline on the simulation thread.
    fn dispatch_client(&mut self, at: VirtualTime, msg: &Message) {
        let id = msg.receiver;
        if let Some(client) = self.clients.get_mut(&id) {
            let mut ctx = Ctx::with_monitor(at, self.monitor.clone());
            self.monitor.enter(id, msg.kind.name(), "dispatch", at);
            client.handle(msg, &mut ctx);
            self.monitor.exit(id, at);
            self.enqueue_intents(id, ctx);
        }
    }

    /// Handles a [`SimEvent::SpecDeliver`] pop: adopt the precomputed
    /// dispatch, or fall back to the serial path for recalled/ineligible
    /// speculations, or roll back on a crash draw.
    fn deliver_speculated(
        &mut self,
        at: VirtualTime,
        receiver: ParticipantId,
        kind: MessageKind,
        spec_id: u64,
    ) {
        if let Some(msg) = self.recalled.remove(&spec_id) {
            // recalled earlier by an out-of-order delivery: the client was
            // already rolled back, dispatch serially at this (correct) point
            self.deliver_client(at, msg);
            return;
        }
        let handle = self.pending.remove(&spec_id).expect("pending speculation");
        self.spec_by_client.remove(&receiver);
        if kind == MessageKind::ModelParams && self.fleet.crashes(receiver, &mut self.crash_rng) {
            // the crash draw says this broadcast was lost: undo the
            // speculative training
            self.crashed_deliveries += 1;
            self.monitor.add(counters::CRASHED_DELIVERIES, 1);
            let res = handle.join();
            let mut client = res.client;
            if let Some(run) = res.run {
                client.restore(run.snapshot);
            }
            self.clients.insert(receiver, client);
            return;
        }
        if kind == MessageKind::ModelParams {
            self.monitor.add(counters::PARTICIPATION, 1);
        }
        let res = handle.join();
        match res.run {
            Some(run) => {
                // adopt: re-emit outputs and monitor records at exactly the
                // serial program point
                self.clients.insert(receiver, res.client);
                self.monitor.enter(receiver, kind.name(), "dispatch", at);
                BufferMonitor::replay_ops(&run.ops, &self.monitor);
                self.monitor.exit(receiver, at);
                self.enqueue_intents(receiver, run.ctx);
            }
            None => {
                // trainer not snapshotable: run serially now
                self.clients.insert(receiver, res.client);
                self.dispatch_client(at, &res.msg);
            }
        }
    }

    /// The clients as a borrowed slice-of-refs, in id order — the shape the
    /// verifier and the report builder both consume. Built in one place so
    /// call sites stop collecting their own copies.
    fn client_refs(&self) -> Vec<&Client> {
        self.clients.values().collect()
    }

    /// Verifies the assembled course per the configured [`VerifyMode`].
    /// Returns the report as an error under `Enforce` when it has Errors.
    fn preflight(&self) -> Result<(), Box<VerifyReport>> {
        let mode = self.server.state.cfg.verify;
        if mode == VerifyMode::Skip {
            return Ok(());
        }
        let clients = self.client_refs();
        let report =
            crate::verify::verify_assembled(&self.server, &clients, Some(&self.server.state.cfg));
        let verbose = std::env::var_os("FS_VERIFY_LOG").is_some();
        if verbose {
            for line in crate::verify::effective_handler_log(&self.server, &clients) {
                eprintln!("fs-verify: {line}");
            }
        }
        if verbose || !report.is_clean() {
            eprint!("{}", report.render_table());
        }
        if mode == VerifyMode::Enforce && report.has_errors() {
            return Err(Box::new(report));
        }
        Ok(())
    }

    /// Runs the course to completion and returns the report, or the
    /// verification report when the course fails static analysis under
    /// [`VerifyMode::Enforce`].
    pub fn try_run(&mut self) -> Result<CourseReport, Box<VerifyReport>> {
        self.preflight()?;
        Ok(self.run_unchecked())
    }

    /// Runs the course to completion (queue drained or event cap reached) and
    /// returns the report.
    ///
    /// # Panics
    /// Panics with the rendered diagnostic table when the course fails static
    /// verification under [`VerifyMode::Enforce`]; use
    /// [`StandaloneRunner::try_run`] to handle that case programmatically.
    pub fn run(&mut self) -> CourseReport {
        match self.try_run() {
            Ok(report) => report,
            Err(verify) => panic!("course rejected by static verification:\n{verify}"),
        }
    }

    fn run_unchecked(&mut self) -> CourseReport {
        // the parallelism knob: 1 = serial (no pool, the exact old path),
        // 0 = one worker per available core, n > 1 = n workers
        let parallelism = self.server.state.cfg.parallelism;
        if parallelism != 1 && self.pool.is_none() {
            self.pool = Some(WorkerPool::new(parallelism));
        }
        // kick off: every client asks to join at t = 0. The map is taken out
        // for the sweep so each client is visited once by iteration instead
        // of one O(log n) lookup per client (`enqueue_intents` only needs the
        // map for speculation, which never applies to client-originated
        // sends).
        let mut clients = std::mem::take(&mut self.clients);
        for (&id, client) in clients.iter_mut() {
            let mut ctx = Ctx::with_monitor(VirtualTime::ZERO, self.monitor.clone());
            self.monitor
                .enter(id, "start", "dispatch", VirtualTime::ZERO);
            client.start(&mut ctx);
            self.monitor.exit(id, VirtualTime::ZERO);
            self.enqueue_intents(id, ctx);
        }
        self.clients = clients;
        let mut events = 0u64;
        while let Some((at, ev)) = self.queue.pop() {
            events += 1;
            if events > self.max_events {
                self.server.state.finish_reason =
                    Some(format!("event cap {} reached", self.max_events));
                break;
            }
            self.now = at;
            match ev {
                SimEvent::Deliver(msg) => {
                    self.monitor.add(counters::MESSAGES_DELIVERED, 1);
                    if msg.receiver == SERVER_ID {
                        let mut ctx = Ctx::with_monitor(at, self.monitor.clone());
                        self.monitor
                            .enter(SERVER_ID, msg.kind.name(), "dispatch", at);
                        self.server.handle(&msg, &mut ctx);
                        self.monitor.exit(SERVER_ID, at);
                        self.enqueue_intents(SERVER_ID, ctx);
                    } else {
                        self.deliver_client(at, msg);
                    }
                }
                SimEvent::SpecDeliver {
                    receiver,
                    kind,
                    spec_id,
                } => {
                    self.monitor.add(counters::MESSAGES_DELIVERED, 1);
                    self.deliver_speculated(at, receiver, kind, spec_id);
                }
                SimEvent::Timer {
                    to,
                    condition,
                    round,
                } => {
                    if to == SERVER_ID {
                        let mut ctx = Ctx::with_monitor(at, self.monitor.clone());
                        self.monitor.enter(SERVER_ID, "timer", "dispatch", at);
                        self.server.handle_timer(condition, round, &mut ctx);
                        self.monitor.exit(SERVER_ID, at);
                        self.enqueue_intents(SERVER_ID, ctx);
                    }
                }
            }
        }
        // undone speculations (possible only when the event cap broke the
        // loop) must be rolled back so state matches the serial run
        self.drain_speculations();
        self.report()
    }

    /// Builds the course report from the current state.
    pub fn report(&self) -> CourseReport {
        let clients = self.client_refs();
        let effective_handlers = crate::verify::effective_handler_log(&self.server, &clients);
        let mut registry_warnings: Vec<String> = self.server.warnings().to_vec();
        let mut conformance_violations: Vec<String> = self.server.violations().to_vec();
        for c in &clients {
            for w in c.warnings() {
                if !registry_warnings.contains(w) {
                    registry_warnings.push(w.clone());
                }
            }
            for v in c.violations() {
                if !conformance_violations.contains(v) {
                    conformance_violations.push(v.clone());
                }
            }
        }
        let s = &self.server.state;
        CourseReport {
            final_time_secs: self.now.as_secs(),
            rounds: s.round,
            history: s.history.clone(),
            finish_reason: s
                .finish_reason
                .clone()
                .unwrap_or_else(|| "queue drained".to_string()),
            dropped_updates: s.dropped_updates,
            total_updates: s.total_updates,
            crashed_deliveries: self.crashed_deliveries,
            remedial_count: s.remedial_count,
            uploaded_bytes: self.uploaded_bytes,
            downloaded_bytes: self.downloaded_bytes,
            effective_handlers,
            registry_warnings,
            conformance_violations,
            dropouts: s.dropouts.clone(),
            reconnects: s.reconnects,
        }
    }

    /// First virtual time (seconds) at which global test accuracy reached
    /// `target`, if it ever did.
    pub fn time_to_accuracy(&self, target: f32) -> Option<f64> {
        self.server
            .state
            .history
            .iter()
            .find(|r| r.metrics.accuracy >= target)
            .map(|r| r.time_secs)
    }
}
