//! End-to-end tests for the `fs-compress` subsystem wired through a full
//! standalone course: accuracy preservation, bytes-on-wire savings,
//! virtual-time savings, and bitwise determinism of stateful codecs.

use fedscope::core::config::{CodecSpec, CompressionConfig, FlConfig};
use fedscope::core::course::CourseBuilder;
use fedscope::core::runner::CourseReport;
use fedscope::data::synth::{twitter_like, TwitterConfig};
use fedscope::tensor::model::logistic_regression;
use fedscope::tensor::optim::SgdConfig;
use fedscope::tensor::ParamMap;

fn run_course(compression: CompressionConfig) -> (CourseReport, ParamMap) {
    // seed 21 draws a topic pair separable enough to actually learn under
    // the in-repo RNG (same choice as the fs-core course tests)
    // vocab 500 gives the model enough parameters (~1000) that per-message
    // framing overhead is negligible next to the values themselves — on a toy
    // 60-dim model, headers would cap the measurable compression ratio
    let data = twitter_like(&TwitterConfig {
        num_clients: 10,
        per_client: 20,
        vocab: 500,
        seed: 21,
        ..Default::default()
    });
    let dim = data.input_dim();
    let cfg = FlConfig {
        total_rounds: 20,
        concurrency: 5,
        local_steps: 8,
        batch_size: 4,
        sgd: SgdConfig::with_lr(0.4),
        compression,
        seed: 9,
        ..Default::default()
    };
    let mut runner = CourseBuilder::new(
        data,
        Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
        cfg,
    )
    .build();
    let report = runner.run();
    (report, runner.server.state.global.clone())
}

#[test]
fn quant8_course_matches_dense_accuracy_with_large_byte_savings() {
    let (dense, _) = run_course(CompressionConfig::default());
    let quant = CompressionConfig {
        upload: Some(CodecSpec::UniformQuant { bits: 8 }),
        upload_delta: false,
        download: Some(CodecSpec::UniformQuant { bits: 8 }),
    };
    let (compressed, _) = run_course(quant);

    // same course structure: identical round count and update counts
    assert_eq!(dense.rounds, compressed.rounds);

    // accuracy within 2% absolute of the uncompressed same-seed run
    let (a_dense, a_comp) = (dense.best_accuracy(), compressed.best_accuracy());
    assert!(
        (a_dense - a_comp).abs() <= 0.02,
        "accuracy drifted: dense {a_dense} vs quant8 {a_comp}"
    );

    // 8-bit values shrink parameter traffic ~4x; require >= 3.5x end to end
    // (per-tensor headers and uncompressed Finish broadcasts eat a little)
    let ratio = dense.total_bytes() as f64 / compressed.total_bytes() as f64;
    assert!(
        ratio >= 3.5,
        "total bytes only dropped {ratio:.2}x ({} -> {})",
        dense.total_bytes(),
        compressed.total_bytes()
    );

    // the simulator charges actual encoded bytes, so virtual comm time (and
    // with it total course time) must drop proportionally
    assert!(
        compressed.final_time_secs < dense.final_time_secs,
        "virtual time did not improve: dense {} vs quant8 {}",
        dense.final_time_secs,
        compressed.final_time_secs
    );
}

#[test]
fn quant8_upload_only_shrinks_uplink() {
    let (dense, _) = run_course(CompressionConfig::default());
    let (compressed, _) = run_course(CompressionConfig::quant8_upload());
    let ratio = dense.uploaded_bytes as f64 / compressed.uploaded_bytes as f64;
    assert!(
        ratio >= 3.5,
        "uplink bytes only dropped {ratio:.2}x ({} -> {})",
        dense.uploaded_bytes,
        compressed.uploaded_bytes
    );
    // downloads stay dense in this configuration
    assert_eq!(dense.downloaded_bytes, compressed.downloaded_bytes);
}

#[test]
fn topk_error_feedback_is_bitwise_deterministic() {
    let topk = CompressionConfig {
        upload: Some(CodecSpec::TopK { ratio: 0.1 }),
        upload_delta: false,
        download: None,
    };
    let (r1, g1) = run_course(topk);
    let (r2, g2) = run_course(topk);
    assert_eq!(r1.final_time_secs, r2.final_time_secs);
    assert_eq!(r1.total_bytes(), r2.total_bytes());
    // residual accumulation across rounds must reproduce exactly: the final
    // global models are bitwise identical
    for (name, t) in g1.iter() {
        let u = g2.get(name).expect("same parameter set");
        let a: Vec<u32> = t.data().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = u.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "parameter {name} differs between same-seed runs");
    }
    // and top-k actually sparsified the uplink
    let (dense, _) = run_course(CompressionConfig::default());
    assert!(r1.uploaded_bytes < dense.uploaded_bytes / 2);
}

#[test]
fn delta_quant_upload_course_still_learns() {
    let (dense, _) = run_course(CompressionConfig::default());
    let delta = CompressionConfig {
        upload: Some(CodecSpec::UniformQuant { bits: 8 }),
        upload_delta: true,
        download: None,
    };
    let (compressed, _) = run_course(delta);
    assert_eq!(dense.rounds, compressed.rounds);
    // quantizing the small-range delta is gentler than quantizing raw
    // weights, so the same accuracy window must hold
    let (a_dense, a_comp) = (dense.best_accuracy(), compressed.best_accuracy());
    assert!(
        (a_dense - a_comp).abs() <= 0.02,
        "accuracy drifted: dense {a_dense} vs delta-quant8 {a_comp}"
    );
    assert!(compressed.uploaded_bytes < dense.uploaded_bytes);
}
