//! In-process message bus for the distributed runner.
//!
//! Each participant owns a mailbox (an unbounded crossbeam channel); the bus
//! routes by receiver id. To stay honest about message translation, the bus
//! moves *wire bytes*, not typed messages: every send encodes and every
//! receive decodes, exactly as a socket transport would.

use crate::message::{Message, ParticipantId};
use crate::wire::{decode_message, encode_message, CodecError};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// Errors raised by bus operations.
#[derive(Debug)]
pub enum BusError {
    /// The receiver id is not registered.
    UnknownReceiver(ParticipantId),
    /// The receiving mailbox was dropped.
    Disconnected(ParticipantId),
    /// Wire decoding failed.
    Codec(CodecError),
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::UnknownReceiver(id) => write!(f, "unknown receiver {id}"),
            BusError::Disconnected(id) => write!(f, "mailbox {id} disconnected"),
            BusError::Codec(e) => write!(f, "codec error: {e}"),
        }
    }
}

impl std::error::Error for BusError {}

impl From<CodecError> for BusError {
    fn from(e: CodecError) -> Self {
        BusError::Codec(e)
    }
}

/// Routes wire-encoded messages between registered participants.
///
/// Keyed by a `BTreeMap` so any future iteration over the roster is in
/// participant-id order by construction (FSA003).
#[derive(Clone, Default)]
pub struct Bus {
    senders: BTreeMap<ParticipantId, Sender<Bytes>>,
}

impl Bus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a participant, returning its mailbox.
    pub fn register(&mut self, id: ParticipantId) -> Mailbox {
        let (tx, rx) = unbounded();
        self.senders.insert(id, tx);
        Mailbox { id, rx }
    }

    /// Encodes and delivers `msg` to its receiver's mailbox.
    pub fn send(&self, msg: &Message) -> Result<(), BusError> {
        let tx = self
            .senders
            .get(&msg.receiver)
            .ok_or(BusError::UnknownReceiver(msg.receiver))?;
        tx.send(encode_message(msg))
            .map_err(|_| BusError::Disconnected(msg.receiver))
    }

    /// Registered participant count.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// `true` when no participants are registered.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }
}

/// A participant's receive side.
pub struct Mailbox {
    id: ParticipantId,
    rx: Receiver<Bytes>,
}

impl Mailbox {
    /// The owning participant's id.
    pub fn id(&self) -> ParticipantId {
        self.id
    }

    /// Blocks until a message arrives, decoding it.
    pub fn recv(&self) -> Result<Message, BusError> {
        let bytes = self
            .rx
            .recv()
            .map_err(|_| BusError::Disconnected(self.id))?;
        Ok(decode_message(&bytes)?)
    }

    /// Blocks up to `timeout` for a message; `Ok(None)` when the timeout
    /// elapses with the mailbox still empty. The blocking path the
    /// distributed server loop uses instead of busy-polling.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<Message>, BusError> {
        match self.rx.recv_timeout(timeout) {
            Ok(bytes) => Ok(Some(decode_message(&bytes)?)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(BusError::Disconnected(self.id)),
        }
    }

    /// Non-blocking receive; `Ok(None)` when the mailbox is empty.
    pub fn try_recv(&self) -> Result<Option<Message>, BusError> {
        match self.rx.try_recv() {
            Ok(bytes) => Ok(Some(decode_message(&bytes)?)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(BusError::Disconnected(self.id)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MessageKind, Payload};

    #[test]
    fn send_and_receive_roundtrip() {
        let mut bus = Bus::new();
        let server_box = bus.register(0);
        let _client_box = bus.register(1);
        let msg = Message::new(1, 0, MessageKind::JoinIn, 0, Payload::Empty);
        bus.send(&msg).unwrap();
        let got = server_box.recv().unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn unknown_receiver_errors() {
        let bus = Bus::new();
        let msg = Message::new(1, 9, MessageKind::JoinIn, 0, Payload::Empty);
        assert!(matches!(bus.send(&msg), Err(BusError::UnknownReceiver(9))));
    }

    #[test]
    fn try_recv_empty_returns_none() {
        let mut bus = Bus::new();
        let mb = bus.register(0);
        assert!(mb.try_recv().unwrap().is_none());
    }

    #[test]
    fn cross_thread_delivery() {
        let mut bus = Bus::new();
        let server_box = bus.register(0);
        bus.register(1);
        let bus2 = bus.clone();
        let h = std::thread::spawn(move || {
            for r in 0..5u64 {
                let m = Message::new(1, 0, MessageKind::Updates, r, Payload::Empty);
                bus2.send(&m).unwrap();
            }
        });
        h.join().unwrap();
        for r in 0..5u64 {
            assert_eq!(server_box.recv().unwrap().round, r);
        }
    }
}
