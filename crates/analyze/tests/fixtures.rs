//! Fixture corpus: every FSA code reproduced from a known-bad snippet with
//! its exact `(code, line, severity)` set, plus clean / suppressed /
//! test-context fixtures and an end-to-end ratchet round trip.
//!
//! The fixtures live in `crates/analyze/fixtures/` — outside any `src/`
//! tree, so neither rustc nor the analyzer's own workspace walk compiles or
//! scans them.

use fs_analyze::{analyze_source, ratchet, Baseline, Code, FileContext, Finding, Severity, Tier};

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn ctx(tier: Tier, charged: bool) -> FileContext {
    FileContext {
        path: "crates/fixture/src/lib.rs".into(),
        crate_name: "fs-fixture".into(),
        tier,
        charged,
        force_test: false,
    }
}

fn runtime() -> FileContext {
    ctx(Tier::Runtime, true)
}

/// Analyzes `name` and reduces each finding to its assertable identity.
fn triples(name: &str, c: &FileContext) -> Vec<(Code, u32, Severity)> {
    analyze_source(&fixture(name), c)
        .into_iter()
        .map(|f| (f.code, f.line, f.severity))
        .collect()
}

#[test]
fn fsa001_ambient_rng() {
    assert_eq!(
        triples("fsa001_ambient_rng.rs", &runtime()),
        vec![
            (Code::AmbientRng, 3, Severity::Error),
            (Code::AmbientRng, 4, Severity::Error),
        ]
    );
}

#[test]
fn fsa002_wall_clock() {
    assert_eq!(
        triples("fsa002_wall_clock.rs", &runtime()),
        vec![
            (Code::WallClock, 3, Severity::Error),
            (Code::WallClock, 4, Severity::Error),
        ]
    );
    // only sim-charged crates are on the virtual clock
    assert_eq!(
        triples("fsa002_wall_clock.rs", &ctx(Tier::Runtime, false)),
        vec![]
    );
}

#[test]
fn fsa003_unordered_container() {
    assert_eq!(
        triples("fsa003_unordered.rs", &runtime()),
        vec![
            (Code::UnorderedContainer, 2, Severity::Warning),
            (Code::UnorderedContainer, 5, Severity::Warning),
            (Code::UnorderedContainer, 5, Severity::Warning),
        ]
    );
}

#[test]
fn fsa004_float_reduce() {
    assert_eq!(
        triples("fsa004_float_reduce.rs", &runtime()),
        vec![
            (Code::FloatReduce, 3, Severity::Warning),
            (Code::FloatReduce, 4, Severity::Warning),
        ]
    );
}

#[test]
fn fsa020_unwrap_grades_by_tier() {
    let want = |sev| vec![(Code::Unwrap, 3, sev)];
    assert_eq!(
        triples("fsa020_unwrap.rs", &runtime()),
        want(Severity::Error)
    );
    assert_eq!(
        triples("fsa020_unwrap.rs", &ctx(Tier::Library, false)),
        want(Severity::Warning)
    );
    assert_eq!(
        triples("fsa020_unwrap.rs", &ctx(Tier::Bench, false)),
        vec![]
    );
}

#[test]
fn fsa021_expect() {
    assert_eq!(
        triples("fsa021_expect.rs", &runtime()),
        vec![(Code::Expect, 3, Severity::Warning)]
    );
}

#[test]
fn fsa022_panic_macros() {
    assert_eq!(
        triples("fsa022_panic.rs", &runtime()),
        (4..=7)
            .map(|line| (Code::PanicMacro, line, Severity::Warning))
            .collect::<Vec<_>>()
    );
}

#[test]
fn fsa023_slice_index_is_note_only() {
    let got = triples("fsa023_index.rs", &runtime());
    assert_eq!(got, vec![(Code::SliceIndex, 3, Severity::Note)]);
    let finding = &analyze_source(&fixture("fsa023_index.rs"), &runtime())[0];
    assert!(!finding.gates(), "notes must not gate the ratchet");
}

#[test]
fn fsa040_nested_lock() {
    assert_eq!(
        triples("fsa040_nested_lock.rs", &runtime()),
        vec![
            (Code::NestedLock, 4, Severity::Warning),
            (Code::Expect, 10, Severity::Warning),
        ]
    );
}

#[test]
fn fsa041_guard_across_channel() {
    assert_eq!(
        triples("fsa041_guard_across_channel.rs", &runtime()),
        vec![
            (Code::GuardAcrossChannel, 4, Severity::Warning),
            (Code::Expect, 9, Severity::Warning),
        ]
    );
}

#[test]
fn fsa090_pragma_missing_reason() {
    // the pragma still suppresses the unwrap on line 4; the hygiene finding
    // lands on the pragma's own line
    assert_eq!(
        triples("fsa090_missing_reason.rs", &runtime()),
        vec![(Code::PragmaMissingReason, 3, Severity::Warning)]
    );
}

#[test]
fn fsa091_unused_pragma() {
    assert_eq!(
        triples("fsa091_unused_pragma.rs", &runtime()),
        vec![(Code::UnusedPragma, 3, Severity::Warning)]
    );
}

#[test]
fn fsa092_unknown_pragma_code() {
    assert_eq!(
        triples("fsa092_unknown_code.rs", &runtime()),
        vec![(Code::UnknownPragmaCode, 3, Severity::Warning)]
    );
}

#[test]
fn clean_fixture_has_zero_findings() {
    assert_eq!(triples("clean_runtime.rs", &runtime()), vec![]);
}

#[test]
fn pragmas_suppress_in_both_placements() {
    // standalone (above the line) and trailing (same line) — and neither
    // placement trips the unused-pragma hygiene check
    assert_eq!(triples("pragma_suppressed.rs", &runtime()), vec![]);
}

#[test]
fn test_context_exempts_panic_lints() {
    assert_eq!(triples("test_context.rs", &runtime()), vec![]);
}

#[test]
fn every_code_is_reproduced_by_the_corpus() {
    // the union of fixture findings must cover the full FSA table, so a new
    // code cannot land without a fixture demonstrating it
    let fixtures = [
        "fsa001_ambient_rng.rs",
        "fsa002_wall_clock.rs",
        "fsa003_unordered.rs",
        "fsa004_float_reduce.rs",
        "fsa020_unwrap.rs",
        "fsa021_expect.rs",
        "fsa022_panic.rs",
        "fsa023_index.rs",
        "fsa040_nested_lock.rs",
        "fsa041_guard_across_channel.rs",
        "fsa090_missing_reason.rs",
        "fsa091_unused_pragma.rs",
        "fsa092_unknown_code.rs",
    ];
    let mut seen = std::collections::BTreeSet::new();
    for name in fixtures {
        for f in analyze_source(&fixture(name), &runtime()) {
            seen.insert(f.code.as_str());
        }
    }
    for code in fs_analyze::ALL_CODES {
        assert!(
            seen.contains(code.as_str()),
            "{} has no fixture",
            code.as_str()
        );
    }
}

#[test]
fn ratchet_round_trip_over_fixture_findings() {
    let current = analyze_source(&fixture("fsa020_unwrap.rs"), &runtime());
    let frozen = Baseline::from_findings(current.iter());
    assert!(frozen.validate().is_ok());

    // baseline-equal: passes with nothing new and nothing improved
    let same = ratchet(&current, &frozen);
    assert!(same.passes());
    assert!(same.improved.is_empty());

    // one synthetic new finding in a different file: fails
    let mut grown = current.clone();
    grown.push(Finding {
        code: Code::Unwrap,
        severity: Severity::Error,
        file: "crates/fixture/src/other.rs".into(),
        line: 1,
        message: "synthetic".into(),
        suggestion: None,
    });
    let fail = ratchet(&grown, &frozen);
    assert!(!fail.passes());
    assert_eq!(fail.new.len(), 1);
    assert_eq!(fail.new[0].file, "crates/fixture/src/other.rs");

    // debt paid down: passes, and the improvement is reported for re-freeze
    let improved = ratchet(&[], &frozen);
    assert!(improved.passes());
    assert_eq!(improved.improved.len(), 1);

    // the frozen baseline survives a JSON round trip bit-identically
    let reparsed = Baseline::from_json(&frozen.to_json()).expect("round trip");
    assert_eq!(reparsed.to_json(), frozen.to_json());
}
