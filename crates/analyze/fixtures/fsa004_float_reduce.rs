// FSA004 fixture: float reductions outside the blessed kernels.
pub fn mean(xs: &[f32]) -> f32 {
    let s = xs.iter().sum::<f32>();
    let f = xs.iter().fold(0.0f32, |a, b| a + b);
    (s + f) / 2.0 / xs.len() as f32
}
