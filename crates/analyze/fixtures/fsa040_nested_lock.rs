// FSA040 fixture: second lock acquired while a guard is held.
pub fn swap(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) {
    let ga = lock(a);
    let gb = lock(b);
    drop(gb);
    drop(ga);
}

fn lock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().expect("poisoned")
}
