//! The lint pass: token-stream pattern matching with lightweight scope
//! tracking.
//!
//! Working on tokens (not an AST) keeps the analyzer dependency-free and
//! fast, at the cost of heuristics for the scope-sensitive lints. The
//! heuristics are tuned to this workspace's idiom; the escape hatch for a
//! justified false positive is an `fsa::allow` pragma with a reason, which
//! keeps every exception auditable in the diff.

use crate::diag::{Code, Finding};
use crate::lexer::{lex, Tok, TokKind};
use crate::policy::{grade, Tier};
use crate::pragma::collect_pragmas;

/// Everything the pass needs to know about the file being analyzed.
#[derive(Clone, Debug)]
pub struct FileContext {
    /// Workspace-relative path with forward slashes (finding identity).
    pub path: String,
    /// Owning package name (`fs-net`, `fedscope`, …).
    pub crate_name: String,
    /// Policy tier.
    pub tier: Tier,
    /// Whether `FSA002` applies (sim-charged crate).
    pub charged: bool,
    /// Whole file is test context (`tests/`, `benches/` trees).
    pub force_test: bool,
}

/// Analyzes one file's source, returning graded, pragma-filtered findings.
pub fn analyze_source(src: &str, ctx: &FileContext) -> Vec<Finding> {
    let toks = lex(src);
    let total_lines = src.lines().count().max(1);

    // Which lines hold code (drives pragma placement).
    let mut code_lines = vec![false; total_lines + 1];
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    for t in &code {
        if let Some(slot) = code_lines.get_mut(t.line as usize - 1) {
            *slot = true;
        }
    }

    let tests = test_regions(&code);
    let in_test = |line: u32| ctx.force_test || tests.iter().any(|&(a, b)| line >= a && line <= b);

    let mut findings = Vec::new();
    let mut emit = |code: Code, line: u32, message: String, suggestion: Option<String>| {
        if let Some(severity) = grade(code, ctx.tier, ctx.charged, in_test(line)) {
            findings.push(Finding {
                code,
                severity,
                file: ctx.path.clone(),
                line,
                message,
                suggestion,
            });
        }
    };

    scan_patterns(&code, &mut emit);
    scan_locks(&code, &mut emit);

    // Pragma application + hygiene.
    let pragmas = collect_pragmas(&toks, &code_lines);
    let mut used = vec![false; pragmas.len()];
    findings.retain(|f| {
        let hit = pragmas
            .iter()
            .position(|p| p.code == Some(f.code) && p.applies_to == f.line);
        match hit {
            Some(i) => {
                used[i] = true;
                false
            }
            None => true,
        }
    });
    for (p, used) in pragmas.iter().zip(used) {
        if let Some(severity) = grade(Code::PragmaMissingReason, ctx.tier, ctx.charged, false) {
            if p.reason.is_empty() {
                findings.push(Finding {
                    code: Code::PragmaMissingReason,
                    severity,
                    file: ctx.path.clone(),
                    line: p.at_line,
                    message: format!(
                        "pragma fsa::allow({}) has no reason — suppressions must be auditable",
                        p.code_text
                    ),
                    suggestion: Some("write fsa::allow(CODE, why this is safe)".into()),
                });
            }
        }
        match p.code {
            None => {
                if let Some(severity) = grade(Code::UnknownPragmaCode, ctx.tier, ctx.charged, false)
                {
                    findings.push(Finding {
                        code: Code::UnknownPragmaCode,
                        severity,
                        file: ctx.path.clone(),
                        line: p.at_line,
                        message: format!("pragma names unknown code {:?}", p.code_text),
                        suggestion: Some("use a code from the FSA table in DESIGN.md".into()),
                    });
                }
            }
            Some(code) if !used => {
                if let Some(severity) = grade(Code::UnusedPragma, ctx.tier, ctx.charged, false) {
                    findings.push(Finding {
                        code: Code::UnusedPragma,
                        severity,
                        file: ctx.path.clone(),
                        line: p.at_line,
                        message: format!(
                            "pragma fsa::allow({code}) suppressed nothing on line {}",
                            p.applies_to
                        ),
                        suggestion: Some("delete the stale suppression".into()),
                    });
                }
            }
            Some(_) => {}
        }
    }

    findings.sort_by_key(|a| (a.line, a.code));
    findings
}

/// `#[cfg(test)]` / `#[test]` regions as inclusive line ranges.
///
/// Heuristic: an attribute whose bracket group contains the ident `test`
/// marks the item that follows; the region runs to the item's closing brace
/// (or its `;` for brace-less items).
fn test_regions(code: &[&Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !(is_punct(code, i, "#") && is_punct(code, i + 1, "[")) {
            i += 1;
            continue;
        }
        let start_line = code[i].line;
        // bracket group extent
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut saw_test = false;
        while j < code.len() {
            match (code[j].kind, code[j].text.as_str()) {
                (TokKind::Punct, "[") => depth += 1,
                (TokKind::Punct, "]") => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                (TokKind::Ident, "test") => saw_test = true,
                _ => {}
            }
            j += 1;
        }
        if !saw_test {
            i = j + 1;
            continue;
        }
        // skip any further attributes, then run to the item's end
        let mut k = j + 1;
        while is_punct(code, k, "#") && is_punct(code, k + 1, "[") {
            let mut d = 0i32;
            while k < code.len() {
                match (code[k].kind, code[k].text.as_str()) {
                    (TokKind::Punct, "[") => d += 1,
                    (TokKind::Punct, "]") => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        let mut end_line = start_line;
        let mut brace = 0i32;
        while k < code.len() {
            match (code[k].kind, code[k].text.as_str()) {
                (TokKind::Punct, "{") => brace += 1,
                (TokKind::Punct, "}") => {
                    brace -= 1;
                    if brace == 0 {
                        end_line = code[k].line;
                        break;
                    }
                }
                (TokKind::Punct, ";") if brace == 0 => {
                    end_line = code[k].line;
                    break;
                }
                _ => {}
            }
            end_line = code[k].line;
            k += 1;
        }
        regions.push((start_line, end_line));
        i = k + 1;
    }
    regions
}

fn is_punct(code: &[&Tok], i: usize, s: &str) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
}

fn is_ident(code: &[&Tok], i: usize, s: &str) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
}

/// The stateless token-pattern lints (FSA001–FSA023).
fn scan_patterns(code: &[&Tok], emit: &mut impl FnMut(Code, u32, String, Option<String>)) {
    for i in 0..code.len() {
        let t = code[i];
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "thread_rng" | "from_entropy" => emit(
                    Code::AmbientRng,
                    t.line,
                    format!("ambient RNG `{}` breaks seeded replay", t.text),
                    Some("thread a seeded StdRng (or an rng split from one) through the call path".into()),
                ),
                "Instant" if is_punct(code, i + 1, ":") && is_punct(code, i + 2, ":")
                    && is_ident(code, i + 3, "now") =>
                {
                    emit(
                        Code::WallClock,
                        t.line,
                        "wall-clock `Instant::now` in a sim-charged crate".into(),
                        Some("charge virtual time via the sim clock; wall deadlines belong to the socket runtime".into()),
                    )
                }
                "SystemTime" => emit(
                    Code::WallClock,
                    t.line,
                    "wall-clock `SystemTime` in a sim-charged crate".into(),
                    Some("virtual time only on charged paths".into()),
                ),
                "HashMap" | "HashSet" => emit(
                    Code::UnorderedContainer,
                    t.line,
                    format!(
                        "`{}` in a deterministic crate — iteration order can leak into behavior",
                        t.text
                    ),
                    Some("use BTreeMap/BTreeSet, or sort before iterating and pragma the declaration".into()),
                ),
                "sum" | "product"
                    if is_punct(code, i + 1, ":")
                        && is_punct(code, i + 2, ":")
                        && is_punct(code, i + 3, "<")
                        && (is_ident(code, i + 4, "f32") || is_ident(code, i + 4, "f64")) =>
                {
                    emit(
                        Code::FloatReduce,
                        t.line,
                        format!("float `{}` reduction outside the blessed aggregation kernels", t.text),
                        Some("reduce in a fixed order (slice/Vec) and justify with a pragma, or use an fs-tensor kernel".into()),
                    )
                }
                "fold"
                    if is_punct(code, i + 1, "(")
                        && code.get(i + 2).is_some_and(|n| {
                            n.kind == TokKind::Number
                                && (n.text.contains('.')
                                    || n.text.ends_with("f32")
                                    || n.text.ends_with("f64"))
                        }) =>
                {
                    emit(
                        Code::FloatReduce,
                        t.line,
                        "float `fold` accumulation outside the blessed aggregation kernels".into(),
                        Some("reduce in a fixed order and justify with a pragma, or use an fs-tensor kernel".into()),
                    )
                }
                "unwrap" if is_punct(code, i.wrapping_sub(1), ".") && is_punct(code, i + 1, "(") => {
                    emit(
                        Code::Unwrap,
                        t.line,
                        "`.unwrap()` in non-test code".into(),
                        Some("propagate a typed error, or `.expect(\"invariant\")` with a pragma".into()),
                    )
                }
                "expect" if is_punct(code, i.wrapping_sub(1), ".") && is_punct(code, i + 1, "(") => {
                    emit(
                        Code::Expect,
                        t.line,
                        "`.expect(..)` in non-test code".into(),
                        Some("propagate a typed error where the caller can recover".into()),
                    )
                }
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if is_punct(code, i + 1, "!") =>
                {
                    emit(
                        Code::PanicMacro,
                        t.line,
                        format!("`{}!` in non-test code", t.text),
                        Some("return a typed error; runtime crates must not take the course down".into()),
                    )
                }
                _ => {}
            }
        } else if t.kind == TokKind::Punct && t.text == "[" && i > 0 {
            let prev = code[i - 1];
            let indexes = matches!(prev.kind, TokKind::Ident)
                || (prev.kind == TokKind::Punct && (prev.text == ")" || prev.text == "]"));
            if indexes {
                emit(
                    Code::SliceIndex,
                    t.line,
                    "direct indexing can panic on out-of-range".into(),
                    Some("prefer .get()/.get_mut() with typed handling on runtime paths".into()),
                );
            }
        }
    }
}

/// The scope-tracking concurrency lints (FSA040, FSA041).
///
/// A "guard" is any `lock(` call result: let-bound guards live until their
/// block closes (or an explicit `drop(name)`), bare ones until the end of
/// their statement. A second `lock(` or a channel `.send`/`.recv` while a
/// guard is live is a finding.
fn scan_locks(code: &[&Tok], emit: &mut impl FnMut(Code, u32, String, Option<String>)) {
    struct Guard {
        name: Option<String>,
        depth: i32,
        stmt: bool,
        line: u32,
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    // (depth, pending binding name) of an open `let` statement
    let mut let_state: Option<(i32, Option<String>)> = None;

    for i in 0..code.len() {
        let t = code[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") => depth += 1,
            (TokKind::Punct, "}") => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            (TokKind::Punct, ";") => {
                if let_state.as_ref().is_some_and(|(d, _)| *d == depth) {
                    let_state = None;
                }
                guards.retain(|g| !(g.stmt && g.depth == depth));
            }
            (TokKind::Ident, "let") => {
                let mut name = None;
                for n in code.iter().skip(i + 1).take(4) {
                    if n.kind == TokKind::Ident && n.text != "mut" {
                        name = Some(n.text.clone());
                        break;
                    }
                }
                let_state = Some((depth, name));
            }
            (TokKind::Ident, "drop")
                if is_punct(code, i + 1, "(") && is_punct(code, i + 3, ")") =>
            {
                if let Some(n) = code.get(i + 2) {
                    guards.retain(|g| g.name.as_deref() != Some(n.text.as_str()));
                }
            }
            (TokKind::Ident, "lock")
                if is_punct(code, i + 1, "(") && !is_ident(code, i.wrapping_sub(1), "fn") =>
            {
                if let Some(held) = guards.last() {
                    emit(
                        Code::NestedLock,
                        t.line,
                        format!(
                            "second lock acquired while a guard from line {} is held",
                            held.line
                        ),
                        Some(
                            "narrow the first guard's scope or merge the two critical sections"
                                .into(),
                        ),
                    );
                }
                match &let_state {
                    Some((_, name)) => guards.push(Guard {
                        name: name.clone(),
                        depth,
                        stmt: false,
                        line: t.line,
                    }),
                    None => guards.push(Guard {
                        name: None,
                        depth,
                        stmt: true,
                        line: t.line,
                    }),
                }
            }
            (TokKind::Ident, "send" | "recv" | "recv_timeout" | "try_recv")
                if is_punct(code, i.wrapping_sub(1), ".") && is_punct(code, i + 1, "(") =>
            {
                if let Some(held) = guards.last() {
                    emit(
                        Code::GuardAcrossChannel,
                        t.line,
                        format!(
                            "channel `{}` while a lock guard from line {} is held",
                            t.text, held.line
                        ),
                        Some("drop the guard before touching the channel".into()),
                    );
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn ctx(tier: Tier, charged: bool) -> FileContext {
        FileContext {
            path: "crates/x/src/lib.rs".into(),
            crate_name: "fs-x".into(),
            tier,
            charged,
            force_test: false,
        }
    }

    fn codes(src: &str, c: &FileContext) -> Vec<(Code, u32)> {
        analyze_source(src, c)
            .into_iter()
            .map(|f| (f.code, f.line))
            .collect()
    }

    #[test]
    fn ambient_rng_flagged_outside_strings_and_comments() {
        let c = ctx(Tier::Runtime, false);
        let src =
            "// thread_rng in a comment\nlet s = \"thread_rng\";\nlet r = rand::thread_rng();\n";
        assert_eq!(codes(src, &c), vec![(Code::AmbientRng, 3)]);
    }

    #[test]
    fn wall_clock_only_in_charged_crates() {
        let src = "let t = Instant::now();\n";
        assert!(codes(src, &ctx(Tier::Runtime, false)).is_empty());
        assert_eq!(
            codes(src, &ctx(Tier::Runtime, true)),
            vec![(Code::WallClock, 1)]
        );
    }

    #[test]
    fn cfg_test_module_downgrades() {
        let c = ctx(Tier::Runtime, false);
        let src =
            "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}\n";
        // only the non-test unwrap survives (test unwraps grade to None)
        assert_eq!(codes(src, &c), vec![(Code::Unwrap, 1)]);
    }

    #[test]
    fn pragma_suppresses_and_stale_pragma_reports() {
        let c = ctx(Tier::Runtime, false);
        let src = "\
// fsa::allow(FSA020, startup invariant)
x.unwrap();
// fsa::allow(FSA020, nothing here)
let y = 1;
";
        let fs = analyze_source(src, &c);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].code, Code::UnusedPragma);
        assert_eq!(fs[0].line, 3);
    }

    #[test]
    fn nested_lock_and_guard_across_channel() {
        let c = ctx(Tier::Runtime, false);
        let src = "\
fn f() {
    let g = state.lock();
    let h = other.lock();
    tx.send(x);
}
fn ok() {
    { let g = state.lock(); }
    let h = other.lock();
}
";
        let got = codes(src, &c);
        assert!(got.contains(&(Code::NestedLock, 3)));
        assert!(got.contains(&(Code::GuardAcrossChannel, 4)));
        assert!(!got
            .iter()
            .any(|(code, line)| *code == Code::NestedLock && *line == 8));
    }

    #[test]
    fn statement_temporary_guard_dies_at_semicolon() {
        let c = ctx(Tier::Runtime, false);
        let src = "\
fn f() {
    lock(&self.streams).insert(id, conn);
    lock(&self.registry).push(id);
}
";
        assert!(!codes(src, &c)
            .iter()
            .any(|(code, _)| *code == Code::NestedLock));
    }

    #[test]
    fn drop_releases_named_guard() {
        let c = ctx(Tier::Runtime, false);
        let src = "\
fn f() {
    let g = state.lock();
    drop(g);
    let h = other.lock();
}
";
        assert!(!codes(src, &c)
            .iter()
            .any(|(code, _)| *code == Code::NestedLock));
    }

    #[test]
    fn slice_index_is_note_in_runtime_only() {
        let src = "fn f() { let y = xs[0]; }\n";
        let fs = analyze_source(src, &ctx(Tier::Runtime, false));
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].code, Code::SliceIndex);
        assert_eq!(fs[0].severity, Severity::Note);
        assert!(!fs[0].gates());
        assert!(analyze_source(src, &ctx(Tier::Library, false)).is_empty());
    }

    #[test]
    fn attributes_are_not_indexing() {
        let src = "#[derive(Debug)]\nstruct S;\n";
        assert!(analyze_source(src, &ctx(Tier::Runtime, false)).is_empty());
    }

    #[test]
    fn force_test_files_relax_panic_lints() {
        let mut c = ctx(Tier::Runtime, false);
        c.force_test = true;
        let src = "fn helper() { x.unwrap(); panic!(\"boom\"); }\n";
        assert!(analyze_source(src, &c).is_empty());
    }

    #[test]
    fn float_reductions_in_runtime_tier() {
        let c = ctx(Tier::Runtime, true);
        let src = "let a = xs.iter().sum::<f64>();\nlet b = xs.iter().fold(0.0, f64::max);\n";
        let got = codes(src, &c);
        assert_eq!(got, vec![(Code::FloatReduce, 1), (Code::FloatReduce, 2)]);
    }
}
