//! FL with multiple learning goals (§3.4.2): three institutes share a graph
//! encoder while owning different tasks (two classify graph families, one
//! regresses edge density).
//!
//! ```text
//! cargo run --release --example multi_goal
//! ```

use fedscope::core::config::FlConfig;
use fedscope::data::graphs::{graph_multitask, GraphConfig, GraphTask};
use fedscope::personalize::multigoal::multi_goal_course;
use fedscope::tensor::optim::SgdConfig;

fn main() {
    let gcfg = GraphConfig {
        per_client: 40,
        tasks: vec![
            GraphTask::Classification,
            GraphTask::Classification,
            GraphTask::Regression,
        ],
        ..Default::default()
    };
    let data = graph_multitask(&gcfg);
    let cfg = FlConfig {
        total_rounds: 40,
        concurrency: 3,
        local_steps: 6,
        batch_size: 8,
        sgd: SgdConfig::with_lr(0.3),
        seed: 9,
        ..Default::default()
    };
    let mut runner = multi_goal_course(&gcfg, data, cfg);
    println!(
        "consensus (shared) parameters: {:?}",
        runner.server.state.global.names().collect::<Vec<_>>()
    );
    let report = runner.run();
    println!("course finished after {} rounds\n", report.rounds);
    for (id, m) in &runner.server.state.client_reports {
        let task = if *id == 3 {
            "regression "
        } else {
            "classification"
        };
        println!(
            "client {id} ({task}): loss={:.4}{}",
            m.loss,
            if *id == 3 {
                String::new()
            } else {
                format!("  accuracy={:.3}", m.accuracy)
            }
        );
    }
}
