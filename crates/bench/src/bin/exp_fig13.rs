//! **Figure 13** — privacy protection vs model utility, and the DLG attack.
//!
//! Left side (paper): as the fraction of clients injecting Gaussian noise
//! into their returned updates grows 0% → 100%, global test accuracy
//! degrades gradually (84% → 65% in the paper). Right side: the DLG gradient
//! inversion recovers clean clients' training examples almost exactly, while
//! reconstructions from noisy clients are destroyed.
//!
//! ```text
//! cargo run -p fs-bench --release --bin exp_fig13
//! ```

use fs_attack::dlg::{invert_linear_gradients, reconstruction_mse};
use fs_bench::output::{render_table, write_json};
use fs_core::config::FlConfig;
use fs_core::course::CourseBuilder;
use fs_core::trainer::{share_all, LocalTrainer, LocalUpdate, TrainConfig, Trainer};
use fs_data::synth::{femnist_like, ImageConfig};
use fs_data::FedDataset;
use fs_privacy::dp::{gaussian_mechanism, DpConfig};
use fs_tensor::loss::Target;
use fs_tensor::model::{logistic_regression, Metrics, Model};
use fs_tensor::optim::SgdConfig;
use fs_tensor::ParamMap;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// DP behavior plug-in (paper Figure 6): clip + noise the outgoing update.
struct DpTrainer {
    inner: LocalTrainer,
    dp: DpConfig,
    rng: StdRng,
}

impl Trainer for DpTrainer {
    fn incorporate(&mut self, global: &ParamMap) {
        self.inner.incorporate(global);
    }

    fn local_train(&mut self, global: &ParamMap, round: u64) -> LocalUpdate {
        let mut update = self.inner.local_train(global, round);
        // noise the *delta* so clipping scales sensibly, then re-add
        let mut delta = update
            .params
            .sub(&global.filter(|k| update.params.contains(k)));
        gaussian_mechanism(&mut delta, &self.dp, &mut self.rng);
        let mut noisy = global.filter(|k| update.params.contains(k));
        noisy.add_scaled(1.0, &delta);
        update.params = noisy;
        update
    }

    fn evaluate_val(&mut self) -> Metrics {
        self.inner.evaluate_val()
    }

    fn evaluate_test(&mut self) -> Metrics {
        self.inner.evaluate_test()
    }

    fn num_train_samples(&self) -> usize {
        self.inner.num_train_samples()
    }
}

#[derive(Serialize)]
struct UtilityPoint {
    noisy_fraction: f64,
    accuracy: f32,
}

#[derive(Serialize)]
struct DlgPoint {
    client_kind: String,
    reconstruction_mse: Option<f32>,
    label_recovered: Option<bool>,
}

#[derive(Serialize)]
struct Fig13 {
    utility: Vec<UtilityPoint>,
    dlg: Vec<DlgPoint>,
}

fn dataset() -> FedDataset {
    femnist_like(&ImageConfig {
        num_clients: 40,
        num_classes: 10,
        img: 8,
        per_client: 40,
        noise: 0.5,
        size_skew: 0.0,
        seed: 31,
    })
    .flattened()
}

fn run_course(noisy_fraction: f64, data: &FedDataset) -> f32 {
    let dim = data.input_dim();
    let classes = data.num_classes;
    let n_noisy = ((data.num_clients() as f64) * noisy_fraction).round() as usize;
    let cfg = FlConfig {
        total_rounds: 30,
        concurrency: 40,
        local_steps: 6,
        batch_size: 16,
        sgd: SgdConfig::with_lr(0.2),
        eval_every: 5,
        seed: 31,
        ..Default::default()
    };
    let dp = DpConfig {
        clip_norm: 1.0,
        sigma: 0.4,
    };
    let mut runner = CourseBuilder::new(
        data.clone(),
        Box::new(move |rng| Box::new(logistic_regression(dim, classes, rng))),
        cfg,
    )
    .trainer_factory(Box::new(move |i, model, split, cfg| {
        let inner = LocalTrainer::new(
            model,
            split,
            TrainConfig {
                local_steps: cfg.local_steps,
                batch_size: cfg.batch_size,
                sgd: cfg.sgd,
            },
            share_all(),
            cfg.seed ^ (i as u64 + 1),
        );
        if i < n_noisy {
            Box::new(DpTrainer {
                inner,
                dp,
                rng: StdRng::seed_from_u64(cfg.seed ^ (0xd9 + i as u64)),
            })
        } else {
            Box::new(inner)
        }
    }))
    .build();
    let report = runner.run();
    report
        .history
        .last()
        .map(|r| r.metrics.accuracy)
        .unwrap_or(0.0)
}

fn dlg_attack(data: &FedDataset) -> Vec<DlgPoint> {
    // single-example gradients from a trained global-ish model; the attacker
    // observes either the raw gradient (clean client) or a DP-noised one
    let dim = data.input_dim();
    let classes = data.num_classes;
    let mut rng = StdRng::seed_from_u64(99);
    let mut model = logistic_regression(dim, classes, &mut rng);
    let example = data.clients[0].train.batch(&[0]);
    let label = match &example.y {
        Target::Classes(c) => c[0],
        _ => unreachable!(),
    };
    let (_, grads) = model.loss_grad(&example.x, &example.y);
    let mut out = Vec::new();
    // clean client: exact inversion
    let rec = invert_linear_gradients(&grads, "fc");
    out.push(DlgPoint {
        client_kind: "clean".into(),
        reconstruction_mse: rec
            .as_ref()
            .map(|r| reconstruction_mse(r, &example.x.reshape(&[dim]))),
        label_recovered: rec.as_ref().map(|r| r.label == label),
    });
    // noisy client: DP on the gradient defeats the inversion
    let mut noisy = grads.clone();
    gaussian_mechanism(
        &mut noisy,
        &DpConfig {
            clip_norm: 1.0,
            sigma: 0.05,
        },
        &mut StdRng::seed_from_u64(7),
    );
    let rec = invert_linear_gradients(&noisy, "fc");
    out.push(DlgPoint {
        client_kind: "dp-noised".into(),
        reconstruction_mse: rec
            .as_ref()
            .map(|r| reconstruction_mse(r, &example.x.reshape(&[dim]))),
        label_recovered: rec.as_ref().map(|r| r.label == label),
    });
    out
}

fn main() {
    let data = dataset();
    let fractions = [0.0, 0.25, 0.5, 0.75, 1.0];
    let mut utility = Vec::new();
    for &f in &fractions {
        let acc = run_course(f, &data);
        eprintln!("  noisy fraction {f}: accuracy {acc:.4}");
        utility.push(UtilityPoint {
            noisy_fraction: f,
            accuracy: acc,
        });
    }
    println!("\nFigure 13 (left) — accuracy vs fraction of DP-noised clients\n");
    let rows: Vec<Vec<String>> = utility
        .iter()
        .map(|u| {
            vec![
                format!("{:.0}%", u.noisy_fraction * 100.0),
                format!("{:.4}", u.accuracy),
            ]
        })
        .collect();
    println!("{}", render_table(&["noisy clients", "accuracy"], &rows));

    let dlg = dlg_attack(&data);
    println!("Figure 13 (right) — DLG reconstruction quality\n");
    let rows: Vec<Vec<String>> = dlg
        .iter()
        .map(|d| {
            vec![
                d.client_kind.clone(),
                d.reconstruction_mse
                    .map_or("failed".into(), |m| format!("{m:.6}")),
                d.label_recovered.map_or("—".into(), |b| b.to_string()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["client", "recon MSE", "label recovered"], &rows)
    );
    let path = write_json("fig13", &Fig13 { utility, dlg }).expect("write results");
    println!("wrote {path}");
}
