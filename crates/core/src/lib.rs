//! `fs-core` — the event-driven federated-learning engine.
//!
//! This crate is the Rust reproduction of FederatedScope's core (§3): an FL
//! course is framed as `<event, handler>` pairs held independently by each
//! participant. Two event classes exist — message-passing and
//! condition-checking — and every strategy in the paper is a choice of which
//! condition triggers aggregation (`all_received` / `goal_achieved` /
//! `time_up`), how models are re-broadcast (*after aggregating* / *after
//! receiving*), and how clients are sampled (uniform / responsiveness-aware /
//! grouped).
//!
//! Quick start:
//!
//! ```
//! use fs_core::config::FlConfig;
//! use fs_core::course::CourseBuilder;
//! use fs_data::synth::{twitter_like, TwitterConfig};
//! use fs_tensor::model::logistic_regression;
//!
//! let data = twitter_like(&TwitterConfig { num_clients: 8, ..Default::default() });
//! let dim = data.input_dim();
//! let cfg = FlConfig { total_rounds: 3, concurrency: 4, ..Default::default() };
//! let mut runner = CourseBuilder::new(
//!     data,
//!     Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
//!     cfg,
//! )
//! .build();
//! let report = runner.run();
//! assert_eq!(report.rounds, 3);
//! ```

pub mod aggregator;
pub mod client;
pub mod completeness;
pub mod config;
pub mod course;
pub mod ctx;
pub mod distributed;
pub mod eval;
pub mod event;
pub mod registry;
pub mod runner;
pub mod sampler;
pub mod server;
pub mod trainer;
pub mod verify;

pub use aggregator::{Aggregator, ReceivedUpdate};
pub use client::{Client, ClientState};
pub use config::{
    AggregationRule, BroadcastManner, CodecSpec, CompressionConfig, DropoutPolicy, ExecutionMode,
    FlConfig, SamplerKind,
};
pub use course::CourseBuilder;
pub use ctx::Ctx;
pub use event::{Condition, Event};
pub use runner::{CourseReport, StandaloneRunner};
pub use server::{Server, ServerState};
pub use trainer::{LocalTrainer, ShareFilter, TrainConfig, Trainer, TrainerParts};
pub use verify::{
    course_ir, course_ir_grouped, effective_handler_log, effective_handler_log_grouped,
    verify_assembled, verify_assembled_grouped,
};
