//! A minimal slab allocator for in-flight simulation objects.
//!
//! Messages and batch records live for exactly one heap round-trip: inserted
//! when scheduled, removed when delivered. A slab turns that churn into two
//! `Vec` index operations with slot reuse, instead of per-message heap
//! allocations keyed by a growing map.

/// A vector-backed slab with free-list slot reuse.
pub struct Slab<T> {
    items: Vec<Option<T>>,
    free: Vec<u32>,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Self {
            items: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.items.len() - self.free.len()
    }

    /// `true` when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts `value`, returning its key.
    pub fn insert(&mut self, value: T) -> u32 {
        match self.free.pop() {
            Some(k) => {
                debug_assert!(self.items[k as usize].is_none());
                self.items[k as usize] = Some(value);
                k
            }
            None => {
                assert!(self.items.len() < u32::MAX as usize, "slab overflow");
                self.items.push(Some(value));
                (self.items.len() - 1) as u32
            }
        }
    }

    /// Removes and returns the entry at `key`, or `None` when `key` is out
    /// of range or names a vacated slot. The non-panicking form for callers
    /// holding keys of uncertain provenance.
    pub fn try_remove(&mut self, key: u32) -> Option<T> {
        let v = self.items.get_mut(key as usize)?.take()?;
        self.free.push(key);
        Some(v)
    }

    /// Removes and returns the entry at `key`.
    ///
    /// # Panics
    /// Panics if `key` does not name a live entry.
    pub fn remove(&mut self, key: u32) -> T {
        // fsa::allow(FSA021, panicking form is this method's documented contract; try_remove is the fallible one)
        self.try_remove(key).expect("slab key names a live entry")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_reuses_slots() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(a), "a");
        assert_eq!(s.len(), 1);
        let c = s.insert("c");
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(s.remove(b), "b");
        assert_eq!(s.remove(c), "c");
        assert!(s.is_empty());
    }

    #[test]
    fn try_remove_is_total() {
        let mut s = Slab::new();
        let a = s.insert("a");
        assert_eq!(s.try_remove(a), Some("a"));
        assert_eq!(s.try_remove(a), None, "vacated slot");
        assert_eq!(s.try_remove(999), None, "out-of-range key");
        let b = s.insert("b");
        assert_eq!(b, a, "slot freed through try_remove is reused");
    }

    #[test]
    #[should_panic(expected = "live entry")]
    fn double_remove_panics() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        s.remove(a);
    }
}
