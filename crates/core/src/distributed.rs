//! The distributed runner: the same workers on real threads.
//!
//! Each participant runs on its own thread with a mailbox on the
//! [`fs_net::bus::Bus`] (or a real socket via [`fs_net::tcp`]); every message
//! crosses the transport as wire bytes, so the whole message-translation path
//! (§3.5) is exercised. Virtual time does not apply here — `time_up` courses
//! must use the standalone runner — but the `all_received` and
//! `goal_achieved` strategies run unchanged, demonstrating that worker
//! behaviour is transport-independent.
//!
//! # Fault tolerance
//!
//! Real cross-device clients are unreliable (§3.3.1): this runner survives
//! them. A client whose connection dies is handled per the configured
//! [`DropoutPolicy`] — either the course aborts with
//! [`DistributedError::PeerDisconnected`], or the client is removed from the
//! roster and the round completes with the survivors (the dropout is
//! recorded in the server state and the course report). TCP clients may come
//! back: a reconnect (capped exponential backoff + rejoin handshake) re-admits
//! them. Deterministic fault injection for tests and the `exp_faults` grid
//! comes from [`fs_net::FaultPlan`], threaded in through [`BusRunOptions`] /
//! [`TcpRunOptions`].
//!
//! Failures keep their identity: a bind failure, a codec failure, a client
//! panic, and a true wall-budget timeout each surface as their own
//! [`DistributedError`] variant instead of collapsing into `Timeout`.

use crate::client::Client;
use crate::config::{AggregationRule, DropoutPolicy};
use crate::ctx::Ctx;
use crate::server::Server;
use fs_monitor::MonitorHandle;
use fs_net::bus::{Bus, BusError, Mailbox};
use fs_net::fault::{FaultPlan, FaultyBus, SendOutcome};
use fs_net::tcp::{HubEvent, ReconnectPolicy, ResilientPeer, TcpError, TcpHub};
use fs_net::{ParticipantId, SERVER_ID};
use fs_sim::VirtualTime;
use fs_verify::{VerifyMode, VerifyReport};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::net::SocketAddr;
use std::panic::AssertUnwindSafe;
use std::time::{Duration, Instant};

/// Errors from a distributed run, one variant per failure class.
#[derive(Debug)]
pub enum DistributedError {
    /// The configured rule needs virtual time (e.g. `time_up`).
    UnsupportedRule(&'static str),
    /// The course failed static verification under [`VerifyMode::Enforce`].
    Verification(Box<VerifyReport>),
    /// A bus operation failed.
    Bus(BusError),
    /// The server could not bind its listening address.
    Bind(std::io::Error),
    /// A participant sent bytes the wire codec rejects.
    Codec(String),
    /// A client worker panicked.
    ClientPanic {
        /// The panicking client.
        id: ParticipantId,
        /// The panic payload, when it was a string.
        detail: String,
    },
    /// A client connection died and the dropout policy did not allow the
    /// course to continue.
    PeerDisconnected(ParticipantId),
    /// The course did not finish within the wall-clock budget.
    Timeout,
}

impl fmt::Display for DistributedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistributedError::UnsupportedRule(r) => {
                write!(f, "rule {r} requires the standalone (virtual-time) runner")
            }
            DistributedError::Verification(report) => {
                write!(f, "course rejected by static verification:\n{report}")
            }
            DistributedError::Bus(e) => write!(f, "bus error: {e}"),
            DistributedError::Bind(e) => write!(f, "failed to bind server address: {e}"),
            DistributedError::Codec(e) => write!(f, "wire codec failure: {e}"),
            DistributedError::ClientPanic { id, detail } => {
                write!(f, "client {id} panicked: {detail}")
            }
            DistributedError::PeerDisconnected(id) => {
                write!(
                    f,
                    "client {id} disconnected and the dropout policy forbids continuing"
                )
            }
            DistributedError::Timeout => write!(f, "distributed course timed out"),
        }
    }
}

impl std::error::Error for DistributedError {}

impl From<BusError> for DistributedError {
    fn from(e: BusError) -> Self {
        match e {
            BusError::Codec(c) => DistributedError::Codec(c.to_string()),
            other => DistributedError::Bus(other),
        }
    }
}

/// Options for a bus-backed distributed run.
#[derive(Default)]
pub struct BusRunOptions {
    /// Fault injection applied to every client's sends.
    pub faults: Option<FaultPlan>,
    /// Observability sink for the server's handler contexts.
    pub monitor: MonitorHandle,
}

/// Options for a TCP-backed distributed run.
#[derive(Default)]
pub struct TcpRunOptions {
    /// Listening address; `None` binds an ephemeral localhost port.
    pub addr: Option<SocketAddr>,
    /// Fault injection applied to every client's socket sends.
    pub faults: Option<FaultPlan>,
    /// When set, clients survive outages: capped exponential backoff, then a
    /// rejoin handshake.
    pub reconnect: Option<ReconnectPolicy>,
    /// Observability sink (server contexts + hub wire counters).
    pub monitor: MonitorHandle,
}

/// Runs static verification per the server's configured [`VerifyMode`]
/// before any thread is spawned.
fn preflight(server: &Server, clients: &[Client]) -> Result<(), DistributedError> {
    let mode = server.state.cfg.verify;
    if mode == VerifyMode::Skip {
        return Ok(());
    }
    let refs: Vec<&Client> = clients.iter().collect();
    let report = crate::verify::verify_assembled(server, &refs, Some(&server.state.cfg));
    let verbose = std::env::var_os("FS_VERIFY_LOG").is_some();
    if verbose {
        for line in crate::verify::effective_handler_log(server, &refs) {
            eprintln!("fs-verify: {line}");
        }
    }
    if verbose || !report.is_clean() {
        eprint!("{}", report.render_table());
    }
    if mode == VerifyMode::Enforce && report.has_errors() {
        return Err(DistributedError::Verification(Box::new(report)));
    }
    Ok(())
}

/// Why a client worker thread stopped.
#[derive(Debug)]
enum ClientOutcome {
    /// Received Finish and reported metrics — the normal end.
    Finished,
    /// Its (possibly fault-injected) connection died for good.
    Disconnected,
    /// A handler panicked.
    Panicked(String),
    /// A transport operation failed terminally.
    Transport(String),
}

/// One worker's exit report, delivered on the control channel.
struct ClientExit {
    id: ParticipantId,
    outcome: ClientOutcome,
}

fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Shared server-loop bookkeeping: which clients are gone for good, and
/// whether the course can be declared complete.
struct Completion {
    finished: bool,
    /// Clients whose connection died terminally (their final report may be
    /// legitimately lost). Cleanly finished clients are NOT in here: their
    /// report is still in flight and must be awaited.
    gone: BTreeSet<ParticipantId>,
}

impl Completion {
    fn new() -> Self {
        Self {
            finished: false,
            gone: BTreeSet::new(),
        }
    }

    /// The course is complete when the server terminated it and every roster
    /// member has either reported metrics or provably disconnected (so its
    /// report can never arrive).
    fn complete(&self, server: &Server) -> bool {
        self.finished
            && server
                .state
                .roster
                .iter()
                .all(|id| server.state.client_reports.contains_key(id) || self.gone.contains(id))
    }
}

/// Applies the dropout policy for a dead client: `Ok(())` means the course
/// continues with the survivors (the server re-evaluated its conditions).
fn apply_dropout(
    server: &mut Server,
    id: ParticipantId,
    ctx: &mut Ctx,
) -> Result<(), DistributedError> {
    match server.state.cfg.dropout {
        DropoutPolicy::Fail => Err(DistributedError::PeerDisconnected(id)),
        DropoutPolicy::Survivors { min_survivors } => {
            let survivors = if server.state.roster_index.contains(&id) {
                server.state.roster.len() - 1
            } else {
                server.state.roster.len()
            };
            if survivors < min_survivors {
                return Err(DistributedError::PeerDisconnected(id));
            }
            server.notify_dropout(id, ctx);
            Ok(())
        }
    }
}

/// Runs a course over threads and the in-process bus, returning the server
/// (with its histories and client reports) once the course finishes.
pub fn run_distributed(
    server: Server,
    clients: Vec<Client>,
    wall_budget: Duration,
) -> Result<Server, DistributedError> {
    run_distributed_with(server, clients, wall_budget, BusRunOptions::default())
}

/// [`run_distributed`] with fault injection and observability options.
pub fn run_distributed_with(
    mut server: Server,
    clients: Vec<Client>,
    wall_budget: Duration,
    opts: BusRunOptions,
) -> Result<Server, DistributedError> {
    if matches!(server.state.cfg.rule, AggregationRule::TimeUp { .. }) {
        return Err(DistributedError::UnsupportedRule("time_up"));
    }
    preflight(&server, &clients)?;
    let plan = opts.faults.unwrap_or_default();
    let mut bus = Bus::new();
    let server_mb = bus.register(SERVER_ID);
    // register every mailbox BEFORE any thread clones the bus: Bus clones
    // snapshot the sender map, so a clone taken mid-registration would
    // silently lack the later participants' mailboxes
    let mailboxes: Vec<Mailbox> = clients.iter().map(|c| bus.register(c.state.id)).collect();
    let (exit_tx, exit_rx) = crossbeam::channel::unbounded::<ClientExit>();
    let mut handles = Vec::new();
    for (mut client, mb) in clients.into_iter().zip(mailboxes) {
        let id = client.state.id;
        let mut link = FaultyBus::new(bus.clone(), plan.state_for(id));
        let exit_tx = exit_tx.clone();
        handles.push(std::thread::spawn(move || {
            let result = std::panic::catch_unwind(AssertUnwindSafe(
                move || -> Result<ClientOutcome, BusError> {
                    let mut ctx = Ctx::at(VirtualTime::ZERO);
                    client.start(&mut ctx);
                    let mut finished = ctx.finished;
                    loop {
                        for out in ctx.outbox {
                            if link.send(&out.msg)? == SendOutcome::Disconnected {
                                return Ok(ClientOutcome::Disconnected);
                            }
                        }
                        if finished {
                            return Ok(ClientOutcome::Finished);
                        }
                        let msg = mb.recv()?;
                        ctx = Ctx::at(VirtualTime::ZERO);
                        client.handle(&msg, &mut ctx);
                        finished = ctx.finished;
                    }
                },
            ));
            let outcome = match result {
                Ok(Ok(outcome)) => outcome,
                Ok(Err(e)) => ClientOutcome::Transport(e.to_string()),
                Err(payload) => ClientOutcome::Panicked(panic_detail(payload)),
            };
            let _ = exit_tx.send(ClientExit { id, outcome });
        }));
    }
    drop(exit_tx);

    // fsa::allow(FSA002, distributed runtime wall budget; real threads and sockets are not on the virtual clock)
    let deadline = Instant::now() + wall_budget;
    let mut done = Completion::new();
    let mut finished_exits: BTreeSet<ParticipantId> = BTreeSet::new();
    let result = loop {
        // worker exits first: a panic must surface as ClientPanic even if a
        // message from another client is also waiting
        let exit = loop {
            match exit_rx.try_recv() {
                Ok(exit) => match exit.outcome {
                    ClientOutcome::Finished => {
                        finished_exits.insert(exit.id);
                    }
                    ClientOutcome::Disconnected => {
                        done.gone.insert(exit.id);
                        let mut ctx = Ctx::with_monitor(VirtualTime::ZERO, opts.monitor.clone());
                        if let Err(e) = apply_dropout(&mut server, exit.id, &mut ctx) {
                            break Some(Err(e));
                        }
                        if let Err(e) = drain_server_ctx(&bus, ctx, &mut done) {
                            break Some(Err(e));
                        }
                    }
                    ClientOutcome::Panicked(detail) => {
                        break Some(Err(DistributedError::ClientPanic {
                            id: exit.id,
                            detail,
                        }));
                    }
                    ClientOutcome::Transport(detail) => {
                        break Some(Err(DistributedError::Codec(detail)));
                    }
                },
                Err(_) => break None,
            }
        };
        if let Some(res) = exit {
            break res;
        }
        if done.complete(&server) {
            break Ok(());
        }
        // fsa::allow(FSA002, measuring against the wall-clock deadline above)
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            break Err(DistributedError::Timeout);
        }
        match server_mb.recv_timeout(remaining.min(Duration::from_millis(20))) {
            Ok(Some(msg)) => {
                let mut ctx = Ctx::with_monitor(VirtualTime::ZERO, opts.monitor.clone());
                server.handle(&msg, &mut ctx);
                if let Err(e) = drain_server_ctx(&bus, ctx, &mut done) {
                    break Err(e);
                }
            }
            Ok(None) => {
                // the bus enqueues synchronously, so a Finished worker's
                // report is already in our mailbox — or was fault-dropped.
                // An empty mailbox after its exit proves the latter.
                let lost: Vec<ParticipantId> = finished_exits
                    .iter()
                    .copied()
                    .filter(|id| {
                        !server.state.client_reports.contains_key(id) && !done.gone.contains(id)
                    })
                    .collect();
                let mut failed = None;
                for id in lost {
                    done.gone.insert(id);
                    let mut ctx = Ctx::with_monitor(VirtualTime::ZERO, opts.monitor.clone());
                    if let Err(e) = apply_dropout(&mut server, id, &mut ctx) {
                        failed = Some(e);
                        break;
                    }
                    if let Err(e) = drain_server_ctx(&bus, ctx, &mut done) {
                        failed = Some(e);
                        break;
                    }
                }
                if let Some(e) = failed {
                    break Err(e);
                }
            }
            Err(e) => break Err(e.into()),
        }
    };
    match result {
        Ok(()) => {
            for h in handles {
                let _ = h.join();
            }
            Ok(server)
        }
        // error paths must not join: surviving workers may be blocked on
        // their mailboxes and would deadlock the teardown
        Err(e) => Err(e),
    }
}

/// Ships a server context's outbox over the bus and folds its completion
/// flag into the tracker.
fn drain_server_ctx(bus: &Bus, ctx: Ctx, done: &mut Completion) -> Result<(), DistributedError> {
    debug_assert!(
        ctx.timers.is_empty(),
        "timers require the standalone runner"
    );
    for out in ctx.outbox {
        bus.send(&out.msg)?;
    }
    done.finished |= ctx.finished;
    Ok(())
}

/// Runs a course over real TCP sockets on localhost: the server binds an
/// ephemeral port, every client runs on its own thread with its own
/// connection, and all traffic crosses the kernel as length-prefixed wire
/// frames. Functionally equivalent to [`run_distributed`], but exercising the
/// `fs_net::tcp` transport end to end.
pub fn run_distributed_tcp(
    server: Server,
    clients: Vec<Client>,
    wall_budget: Duration,
) -> Result<Server, DistributedError> {
    run_distributed_tcp_with(server, clients, wall_budget, TcpRunOptions::default())
}

/// [`run_distributed_tcp`] with an explicit address, fault injection,
/// reconnect policy, and observability options.
pub fn run_distributed_tcp_with(
    mut server: Server,
    clients: Vec<Client>,
    wall_budget: Duration,
    opts: TcpRunOptions,
) -> Result<Server, DistributedError> {
    if matches!(server.state.cfg.rule, AggregationRule::TimeUp { .. }) {
        return Err(DistributedError::UnsupportedRule("time_up"));
    }
    preflight(&server, &clients)?;
    let bind_addr = opts
        .addr
        .unwrap_or_else(|| SocketAddr::from(([127, 0, 0, 1], 0)));
    let pending = TcpHub::bind(bind_addr)
        .map_err(tcp_to_bind)?
        .with_monitor(opts.monitor.clone());
    let addr = pending.local_addr().map_err(tcp_to_bind)?;
    let plan = opts.faults.unwrap_or_default();
    let n_clients = clients.len();
    let (exit_tx, exit_rx) = crossbeam::channel::unbounded::<ClientExit>();
    let mut handles = Vec::new();
    for mut client in clients {
        let id = client.state.id;
        let faults = plan.state_for(id);
        let reconnect = opts.reconnect;
        let exit_tx = exit_tx.clone();
        handles.push(std::thread::spawn(move || {
            let result = std::panic::catch_unwind(AssertUnwindSafe(
                move || -> Result<ClientOutcome, TcpError> {
                    let mut peer = ResilientPeer::connect(addr, id)?.with_faults(faults);
                    if let Some(policy) = reconnect {
                        peer = peer.with_reconnect(policy);
                    }
                    let mut ctx = Ctx::at(VirtualTime::ZERO);
                    client.start(&mut ctx);
                    let mut finished = ctx.finished;
                    loop {
                        for out in ctx.outbox {
                            if peer.send(&out.msg)? == SendOutcome::Disconnected
                                && reconnect.is_none()
                            {
                                return Ok(ClientOutcome::Disconnected);
                            }
                        }
                        if finished {
                            return Ok(ClientOutcome::Finished);
                        }
                        let msg = match peer.recv() {
                            Ok(m) => m,
                            // link gone for good (no policy, or retries spent)
                            Err(TcpError::Closed) | Err(TcpError::Io(_)) => {
                                return Ok(ClientOutcome::Disconnected)
                            }
                            Err(e) => return Err(e),
                        };
                        ctx = Ctx::at(VirtualTime::ZERO);
                        client.handle(&msg, &mut ctx);
                        finished = ctx.finished;
                    }
                },
            ));
            let outcome = match result {
                Ok(Ok(outcome)) => outcome,
                Ok(Err(e)) => ClientOutcome::Transport(e.to_string()),
                Err(payload) => ClientOutcome::Panicked(panic_detail(payload)),
            };
            let _ = exit_tx.send(ClientExit { id, outcome });
        }));
    }
    drop(exit_tx);

    // fsa::allow(FSA002, distributed runtime wall budget; real threads and sockets are not on the virtual clock)
    let deadline = Instant::now() + wall_budget;
    let mut exits: BTreeMap<ParticipantId, ClientOutcome> = BTreeMap::new();
    let hub = match pending.accept_within(n_clients, wall_budget.min(Duration::from_secs(30))) {
        Ok(hub) => hub,
        Err(_) => {
            // a worker that died during connect explains the stalled accept
            // better than a generic timeout does
            while let Ok(exit) = exit_rx.try_recv() {
                exits.insert(exit.id, exit.outcome);
            }
            for (id, outcome) in exits {
                match outcome {
                    ClientOutcome::Panicked(detail) => {
                        return Err(DistributedError::ClientPanic { id, detail })
                    }
                    ClientOutcome::Transport(detail) => {
                        return Err(DistributedError::Codec(detail))
                    }
                    ClientOutcome::Disconnected => {
                        return Err(DistributedError::PeerDisconnected(id))
                    }
                    ClientOutcome::Finished => {}
                }
            }
            return Err(DistributedError::Timeout);
        }
    };

    let mut done = Completion::new();
    let result = loop {
        while let Ok(exit) = exit_rx.try_recv() {
            if matches!(exit.outcome, ClientOutcome::Disconnected) {
                done.gone.insert(exit.id);
            }
            exits.insert(exit.id, exit.outcome);
        }
        // panics take priority over whatever else is queued
        if let Some((id, detail)) = exits.iter().find_map(|(id, o)| match o {
            ClientOutcome::Panicked(d) => Some((*id, d.clone())),
            _ => None,
        }) {
            break Err(DistributedError::ClientPanic { id, detail });
        }
        if done.complete(&server) {
            break Ok(());
        }
        // fsa::allow(FSA002, measuring against the wall-clock deadline above)
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            break Err(DistributedError::Timeout);
        }
        let event = match hub.recv_event_timeout(remaining.min(Duration::from_millis(20))) {
            Ok(Some(ev)) => ev,
            Ok(None) => continue,
            Err(_) => break Err(DistributedError::Timeout),
        };
        let step = match event {
            HubEvent::Message(msg) => {
                let mut ctx = Ctx::with_monitor(VirtualTime::ZERO, opts.monitor.clone());
                server.handle(&msg, &mut ctx);
                ship_tcp_ctx(&hub, &mut server, ctx, &mut done, &opts.monitor, &exits)
            }
            HubEvent::Disconnected(id) => handle_tcp_disconnect(
                &hub,
                &mut server,
                id,
                &mut done,
                &opts.monitor,
                &exit_rx,
                &mut exits,
            ),
            HubEvent::Rejoined(id) => {
                // the link is live again: await this client's report normally
                done.gone.remove(&id);
                let mut ctx = Ctx::with_monitor(VirtualTime::ZERO, opts.monitor.clone());
                server.notify_rejoin(id, &mut ctx);
                ship_tcp_ctx(&hub, &mut server, ctx, &mut done, &opts.monitor, &exits)
            }
            HubEvent::Codec(_, detail) => Err(DistributedError::Codec(detail)),
        };
        if let Err(e) = step {
            break Err(e);
        }
    };
    match result {
        Ok(()) => {
            // closing the hub unblocks any worker still mid-reconnect (its
            // retries hit a dead listener and run out), so joins terminate
            drop(hub);
            for h in handles {
                let _ = h.join();
            }
            Ok(server)
        }
        Err(e) => Err(e),
    }
}

/// Builds a [`crate::runner::CourseReport`] from a finished distributed
/// server. Virtual-time and payload-byte accounting stay zero — real
/// transports have no virtual clock, and wire traffic is counted by the
/// monitor's `wire.*` counters instead — but rounds, learning curve, finish
/// reason, dropouts, and reconnects are all filled in.
pub fn distributed_report(server: &Server) -> crate::runner::CourseReport {
    let s = &server.state;
    crate::runner::CourseReport {
        final_time_secs: 0.0,
        rounds: s.round,
        history: s.history.clone(),
        finish_reason: s
            .finish_reason
            .clone()
            .unwrap_or_else(|| "queue drained".to_string()),
        dropped_updates: s.dropped_updates,
        total_updates: s.total_updates,
        crashed_deliveries: 0,
        remedial_count: s.remedial_count,
        uploaded_bytes: 0,
        downloaded_bytes: 0,
        effective_handlers: server
            .effective_handlers()
            .iter()
            .map(|(e, n)| format!("server: {e} -> {n}"))
            .collect(),
        registry_warnings: server.warnings().to_vec(),
        conformance_violations: server.violations().to_vec(),
        dropouts: s.dropouts.clone(),
        reconnects: s.reconnects,
    }
}

fn tcp_to_bind(e: TcpError) -> DistributedError {
    match e {
        TcpError::Io(io) => DistributedError::Bind(io),
        other => DistributedError::Bind(std::io::Error::other(other.to_string())),
    }
}

/// A hub-reported disconnect: distinguish a clean exit (the client already
/// reported and closed), a panic racing the event, and a genuine dropout.
#[allow(clippy::too_many_arguments)]
fn handle_tcp_disconnect(
    hub: &TcpHub,
    server: &mut Server,
    id: ParticipantId,
    done: &mut Completion,
    monitor: &MonitorHandle,
    exit_rx: &crossbeam::channel::Receiver<ClientExit>,
    exits: &mut BTreeMap<ParticipantId, ClientOutcome>,
) -> Result<(), DistributedError> {
    if server.state.client_reports.contains_key(&id) {
        return Ok(()); // finished client closing its socket — not a dropout
    }
    // brief grace window: if the socket died because the worker panicked, the
    // exit report is microseconds behind the EOF — prefer ClientPanic
    // fsa::allow(FSA002, wall-clock grace window for racing a real socket EOF against the exit report)
    let grace = Instant::now() + Duration::from_millis(100);
    while !exits.contains_key(&id) {
        let left = grace.saturating_duration_since(Instant::now()); // fsa::allow(FSA002, same grace window)
        if left.is_zero() {
            break;
        }
        match exit_rx.recv_timeout(left) {
            Ok(exit) => {
                if matches!(exit.outcome, ClientOutcome::Disconnected) {
                    done.gone.insert(exit.id);
                }
                exits.insert(exit.id, exit.outcome);
            }
            Err(_) => break,
        }
    }
    // a Finished exit does NOT settle this: the worker ended cleanly but its
    // report never arrived (checked above) and the link is now dead, so the
    // report is lost for good — fall through to the dropout path
    if let Some(ClientOutcome::Panicked(detail)) = exits.get(&id) {
        return Err(DistributedError::ClientPanic {
            id,
            detail: detail.clone(),
        });
    }
    done.gone.insert(id);
    let mut ctx = Ctx::with_monitor(VirtualTime::ZERO, monitor.clone());
    apply_dropout(server, id, &mut ctx)?;
    ship_tcp_ctx(hub, server, ctx, done, monitor, exits)
}

/// Ships a server context over the hub. A send that fails because the
/// receiver's connection just died is routed through the dropout policy
/// instead of aborting the course.
fn ship_tcp_ctx(
    hub: &TcpHub,
    server: &mut Server,
    ctx: Ctx,
    done: &mut Completion,
    monitor: &MonitorHandle,
    exits: &BTreeMap<ParticipantId, ClientOutcome>,
) -> Result<(), DistributedError> {
    debug_assert!(
        ctx.timers.is_empty(),
        "timers require the standalone runner"
    );
    done.finished |= ctx.finished;
    let mut pending = std::collections::VecDeque::from(ctx.outbox);
    while let Some(out) = pending.pop_front() {
        match hub.send(&out.msg) {
            Ok(()) => {}
            Err(TcpError::UnknownReceiver(_)) | Err(TcpError::Io(_))
                if out.msg.receiver != SERVER_ID =>
            {
                let rcv = out.msg.receiver;
                if server.state.client_reports.contains_key(&rcv)
                    || exits.contains_key(&rcv)
                    || done.finished
                {
                    continue; // late send to a client that is already done
                }
                let mut dctx = Ctx::with_monitor(VirtualTime::ZERO, monitor.clone());
                apply_dropout(server, rcv, &mut dctx)?;
                done.finished |= dctx.finished;
                for extra in dctx.outbox {
                    pending.push_back(extra);
                }
            }
            Err(e) => {
                return Err(match e {
                    TcpError::Codec(c) => DistributedError::Codec(c.to_string()),
                    other => DistributedError::Codec(other.to_string()),
                })
            }
        }
    }
    Ok(())
}
