//! Shared command-line argument parsing for the `exp_*` binaries.
//!
//! Every experiment takes the same knobs — a seed, an optional round cap, a
//! strategy subset, a workload subset, and a `--quick` smoke-test mode — and
//! used to hardcode them. [`ExpArgs::parse`] centralizes the vocabulary:
//!
//! ```text
//! exp_monitor --seed 7 --rounds 40 --strategies sync_vanilla,goal_aggr_unif \
//!             --workloads femnist,twitter --quick
//! ```

use crate::strategies::Strategy;

/// Parsed experiment arguments with per-experiment defaults filled by the
/// `*_or` accessors.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExpArgs {
    /// `--seed N` — course/fleet/data seed.
    pub seed: Option<u64>,
    /// `--rounds N` — override the workload's round cap.
    pub rounds: Option<u64>,
    /// `--strategies a,b,c` — strategy subset (paper labels or snake_case).
    pub strategies: Option<Vec<Strategy>>,
    /// `--workloads x,y` — workload subset by name (femnist, cifar, twitter).
    pub workloads: Option<Vec<String>>,
    /// `--quick` — shrink the run to a seconds-scale smoke test.
    pub quick: bool,
    /// `--threads N` — worker threads for the standalone runner's parallel
    /// client execution (`FlConfig::parallelism`): 1 serial, 0 all cores.
    pub threads: Option<usize>,
    /// `--clients a,b,c` — client counts to sweep (scale experiments).
    pub clients: Option<Vec<u64>>,
    /// `--mem-budget-mb N` — peak-RSS budget; experiments that track memory
    /// fail when the process high-water mark exceeds it.
    pub mem_budget_mb: Option<u64>,
    /// Flags the experiment itself interprets (everything starting `--` that
    /// this parser does not know, recorded without the leading dashes).
    pub extra_flags: Vec<String>,
}

/// Known workload names (the `--workloads` vocabulary).
pub const WORKLOAD_NAMES: [&str; 3] = ["femnist", "cifar", "twitter"];

impl ExpArgs {
    /// Parses the process arguments; prints usage and exits on bad input.
    pub fn parse() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        match Self::parse_from(&argv) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: [--seed N] [--rounds N] [--strategies a,b,c] \
                     [--workloads femnist,cifar,twitter] [--threads N] \
                     [--clients a,b,c] [--mem-budget-mb N] [--quick]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses an argument slice (testable form of [`ExpArgs::parse`]).
    pub fn parse_from(argv: &[String]) -> Result<Self, String> {
        let mut args = ExpArgs::default();
        let mut it = argv.iter();
        while let Some(arg) = it.next() {
            let mut value_for = |flag: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--seed" => {
                    let v = value_for("--seed")?;
                    args.seed = Some(v.parse().map_err(|_| format!("bad seed {v:?}"))?);
                }
                "--rounds" => {
                    let v = value_for("--rounds")?;
                    args.rounds = Some(v.parse().map_err(|_| format!("bad rounds {v:?}"))?);
                }
                "--strategies" => {
                    let v = value_for("--strategies")?;
                    let mut out = Vec::new();
                    for name in v.split(',').filter(|s| !s.is_empty()) {
                        out.push(
                            Strategy::from_name(name)
                                .ok_or_else(|| format!("unknown strategy {name:?}"))?,
                        );
                    }
                    args.strategies = Some(out);
                }
                "--workloads" => {
                    let v = value_for("--workloads")?;
                    let mut out = Vec::new();
                    for name in v.split(',').filter(|s| !s.is_empty()) {
                        let name = name.to_ascii_lowercase();
                        if !WORKLOAD_NAMES.contains(&name.as_str()) {
                            return Err(format!(
                                "unknown workload {name:?} (known: {})",
                                WORKLOAD_NAMES.join(", ")
                            ));
                        }
                        out.push(name);
                    }
                    args.workloads = Some(out);
                }
                "--threads" => {
                    let v = value_for("--threads")?;
                    args.threads = Some(v.parse().map_err(|_| format!("bad threads {v:?}"))?);
                }
                "--clients" => {
                    let v = value_for("--clients")?;
                    let mut out = Vec::new();
                    for n in v.split(',').filter(|s| !s.is_empty()) {
                        // allow 250k / 1m style suffixes alongside raw counts
                        let n = n.to_ascii_lowercase();
                        let (digits, mul) = match n.strip_suffix(['k', 'm']) {
                            Some(d) if n.ends_with('k') => (d, 1_000),
                            Some(d) => (d, 1_000_000),
                            None => (n.as_str(), 1),
                        };
                        let base: u64 = digits
                            .parse()
                            .map_err(|_| format!("bad client count {n:?}"))?;
                        out.push(base * mul);
                    }
                    if out.is_empty() {
                        return Err("--clients needs at least one count".to_string());
                    }
                    args.clients = Some(out);
                }
                "--mem-budget-mb" => {
                    let v = value_for("--mem-budget-mb")?;
                    args.mem_budget_mb =
                        Some(v.parse().map_err(|_| format!("bad mem budget {v:?}"))?);
                }
                "--quick" => args.quick = true,
                other if other.starts_with("--") => {
                    args.extra_flags
                        .push(other.trim_start_matches('-').to_string());
                }
                other => return Err(format!("unexpected argument {other:?}")),
            }
        }
        Ok(args)
    }

    /// The seed, or an experiment-specific default.
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// The round cap, or an experiment-specific default.
    pub fn rounds_or(&self, default: u64) -> u64 {
        self.rounds.unwrap_or(default)
    }

    /// The strategy subset, or an experiment-specific default set.
    pub fn strategies_or(&self, default: Vec<Strategy>) -> Vec<Strategy> {
        self.strategies.clone().unwrap_or(default)
    }

    /// The workload subset, or an experiment-specific default set.
    pub fn workloads_or(&self, default: &[&str]) -> Vec<String> {
        self.workloads
            .clone()
            .unwrap_or_else(|| default.iter().map(|s| s.to_string()).collect())
    }

    /// The worker-thread count, or an experiment-specific default
    /// (experiments pass 1: serial remains the default everywhere).
    pub fn threads_or(&self, default: usize) -> usize {
        self.threads.unwrap_or(default)
    }

    /// The client-count sweep, or an experiment-specific default.
    pub fn clients_or(&self, default: &[u64]) -> Vec<u64> {
        self.clients.clone().unwrap_or_else(|| default.to_vec())
    }

    /// The peak-RSS budget in MiB, or an experiment-specific default.
    pub fn mem_budget_mb_or(&self, default: u64) -> u64 {
        self.mem_budget_mb.unwrap_or(default)
    }

    /// `true` when `--<flag>` was passed among the unclaimed extras.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.extra_flags.iter().any(|f| f == flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parses_full_vocabulary() {
        let a = ExpArgs::parse_from(&argv(&[
            "--seed",
            "42",
            "--rounds",
            "10",
            "--strategies",
            "sync_vanilla,Goal-Aggr-Unif",
            "--workloads",
            "femnist,twitter",
            "--threads",
            "4",
            "--clients",
            "10000,250k,1m",
            "--mem-budget-mb",
            "4096",
            "--quick",
            "--validate",
        ]))
        .unwrap();
        assert_eq!(a.seed_or(7), 42);
        assert_eq!(a.rounds_or(300), 10);
        assert_eq!(a.threads_or(1), 4);
        assert_eq!(a.clients_or(&[5]), vec![10_000, 250_000, 1_000_000]);
        assert_eq!(a.mem_budget_mb_or(1024), 4096);
        assert_eq!(
            a.strategies_or(vec![]),
            vec![Strategy::SyncVanilla, Strategy::GoalAggrUnif]
        );
        assert_eq!(a.workloads_or(&["cifar"]), vec!["femnist", "twitter"]);
        assert!(a.quick);
        assert!(a.has_flag("validate"));
        assert!(!a.has_flag("other"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = ExpArgs::parse_from(&[]).unwrap();
        assert_eq!(a.seed_or(7), 7);
        assert_eq!(a.rounds_or(300), 300);
        assert_eq!(a.strategies_or(Strategy::table1()), Strategy::table1());
        assert_eq!(
            a.workloads_or(&WORKLOAD_NAMES),
            vec!["femnist", "cifar", "twitter"]
        );
        assert_eq!(a.threads_or(1), 1);
        assert_eq!(a.clients_or(&[10_000]), vec![10_000]);
        assert_eq!(a.mem_budget_mb_or(4096), 4096);
        assert!(!a.quick);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(ExpArgs::parse_from(&argv(&["--seed"])).is_err());
        assert!(ExpArgs::parse_from(&argv(&["--seed", "x"])).is_err());
        assert!(ExpArgs::parse_from(&argv(&["--threads", "x"])).is_err());
        assert!(ExpArgs::parse_from(&argv(&["--strategies", "nope"])).is_err());
        assert!(ExpArgs::parse_from(&argv(&["--workloads", "mnist"])).is_err());
        assert!(ExpArgs::parse_from(&argv(&["--clients", "abc"])).is_err());
        assert!(ExpArgs::parse_from(&argv(&["--clients", ""])).is_err());
        assert!(ExpArgs::parse_from(&argv(&["--mem-budget-mb", "x"])).is_err());
        assert!(ExpArgs::parse_from(&argv(&["stray"])).is_err());
    }

    #[test]
    fn strategy_names_parse_in_any_style() {
        for s in Strategy::all() {
            assert_eq!(Strategy::from_name(s.label()), Some(s));
            let snake = s.label().replace('-', "_").to_lowercase();
            assert_eq!(Strategy::from_name(&snake), Some(s));
        }
        assert_eq!(Strategy::from_name("no-such"), None);
    }
}
