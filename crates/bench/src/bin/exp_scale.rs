//! **fs-scale harness** — the persisted throughput baseline for the
//! million-client simulation core.
//!
//! Sweeps client counts (default 10k → 1M, 100 rounds each) over a
//! femnist-style synthetic workload generated *on demand* — the data for a
//! client exists only while that client is materialized, which is the whole
//! point of the scale runner. Each sweep point records wall-clock time,
//! events processed, `clients/sec`, `events/sec`, and the process peak RSS,
//! written to `BENCH_scale.json` (repo root) following the `BENCH_perf.json`
//! pattern: schema-versioned, self-validated after writing, gated in CI.
//!
//! ```text
//! cargo run -p fs-bench --release --bin exp_scale               # full sweep
//! cargo run -p fs-bench --release --bin exp_scale -- --quick    # CI sweep (≤50k)
//! cargo run -p fs-bench --release --bin exp_scale -- --validate # gate only
//! ```
//!
//! `--validate` additionally compares against a baseline snapshot when
//! `SCALE_BASELINE=<path>` is set: any row matching a baseline row on
//! (clients, rounds) must retain at least 75% of the baseline's
//! `clients_per_sec`, so CI catches throughput regressions.
//!
//! `--mem-budget-mb N` (default 4096) fails the run when peak RSS exceeds
//! the budget — the acceptance bar for "a million clients fit in memory".

use fs_bench::args::ExpArgs;
use fs_bench::output::render_table;
use fs_bench::sys::{peak_rss, peak_rss_mb};
use fs_core::config::FlConfig;
use fs_data::{ClientData, ClientSplit};
use fs_monitor::export::{validate_scale_snapshot, ScaleRow, ScaleSnapshot};
use fs_scale::ScaleCourseBuilder;
use fs_tensor::loss::Target;
use fs_tensor::model::logistic_regression;
use fs_tensor::optim::SgdConfig;
use fs_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs;
use std::sync::Arc;
use std::time::Instant;

const BENCH_PATH: &str = "BENCH_scale.json";
/// Feature dimension of the synthetic femnist-style workload.
const DIM: usize = 64;
/// Class count of the synthetic workload.
const CLASSES: usize = 10;
/// Examples per client (8 train / 2 val / 2 test).
const PER_CLIENT: usize = 12;
/// Minimum fraction of baseline `clients_per_sec` a row must retain under
/// `SCALE_BASELINE` comparison.
const REGRESSION_FLOOR: f64 = 0.75;

/// Deterministic femnist-style split for client index `idx`: Gaussian-ish
/// clusters around per-class feature bumps, derived purely from
/// `(seed, idx)` so every materialization of the same client sees the same
/// data.
fn synth_split(seed: u64, idx: usize) -> ClientSplit {
    let mut rng =
        StdRng::seed_from_u64(seed ^ 0xda7a ^ (idx as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15));
    let mut xs = Vec::with_capacity(PER_CLIENT * DIM);
    let mut ys = Vec::with_capacity(PER_CLIENT);
    for _ in 0..PER_CLIENT {
        let c = rng.gen_range(0..CLASSES);
        for d in 0..DIM {
            let center: f32 = if d % CLASSES == c { 2.0 } else { 0.0 };
            xs.push(center + rng.gen_range(-0.5f32..0.5));
        }
        ys.push(c);
    }
    let all = ClientData {
        x: Tensor::from_vec(vec![PER_CLIENT, DIM], xs),
        y: Target::Classes(ys),
    };
    ClientSplit::from_fractions(&all, 8.0 / 12.0, 2.0 / 12.0)
}

/// Validate mode: parse the snapshot, and when `SCALE_BASELINE` names a
/// baseline file, fail on a >25% `clients_per_sec` regression at any
/// matching (clients, rounds) point.
fn validate() {
    let text =
        fs::read_to_string(BENCH_PATH).unwrap_or_else(|e| panic!("cannot read {BENCH_PATH}: {e}"));
    let snap = validate_scale_snapshot(&text)
        .unwrap_or_else(|e| panic!("{BENCH_PATH} failed validation: {e}"));
    println!("{BENCH_PATH} valid: {} rows", snap.rows.len());
    let Some(baseline_path) = std::env::var_os("SCALE_BASELINE") else {
        return;
    };
    let baseline_text = fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path:?}: {e}"));
    let baseline = validate_scale_snapshot(&baseline_text)
        .unwrap_or_else(|e| panic!("baseline {baseline_path:?} failed validation: {e}"));
    let mut compared = 0usize;
    for row in &snap.rows {
        let Some(base) = baseline
            .rows
            .iter()
            .find(|b| b.clients == row.clients && b.rounds == row.rounds)
        else {
            continue;
        };
        compared += 1;
        let floor = REGRESSION_FLOOR * base.clients_per_sec;
        assert!(
            row.clients_per_sec >= floor,
            "throughput regression at {} clients x {} rounds: {:.0} clients/sec \
             < 75% of baseline {:.0}",
            row.clients,
            row.rounds,
            row.clients_per_sec,
            base.clients_per_sec
        );
        println!(
            "  {} clients: {:.0} clients/sec vs baseline {:.0} — ok",
            row.clients, row.clients_per_sec, base.clients_per_sec
        );
    }
    println!("baseline comparison: {compared} matching rows checked");
}

fn main() {
    let args = ExpArgs::parse();
    if args.has_flag("validate") {
        validate();
        return;
    }

    let seed = args.seed_or(7);
    let rounds = args.rounds_or(100);
    let clients_list = if args.quick {
        args.clients_or(&[10_000, 50_000])
    } else {
        args.clients_or(&[10_000, 100_000, 1_000_000])
    };
    let budget_mb = args.mem_budget_mb_or(4096);

    let mut snapshot = ScaleSnapshot::new("exp_scale");
    let mut table: Vec<Vec<String>> = Vec::new();

    for &n in &clients_list {
        let n_usize = n as usize;
        let cfg = FlConfig {
            total_rounds: rounds,
            concurrency: 100.min(n_usize),
            local_steps: 4,
            batch_size: 8,
            sgd: SgdConfig::with_lr(0.1),
            seed,
            ..Default::default()
        };
        let data_seed = seed;
        let mut runner = ScaleCourseBuilder::synthetic(
            n_usize,
            Arc::new(move |i| synth_split(data_seed, i)),
            Box::new(move |rng| Box::new(logistic_regression(DIM, CLASSES, rng))),
            cfg,
        )
        .build();
        let start = Instant::now();
        let report = runner.run();
        let wall_secs = start.elapsed().as_secs_f64();
        assert_eq!(report.rounds, rounds, "course must complete every round");
        let events = runner.events_processed();
        let clients_per_sec = n as f64 / wall_secs;
        let events_per_sec = events as f64 / wall_secs;
        let rss = peak_rss().unwrap_or(0);
        let rss_label = peak_rss_mb().map_or_else(|| "n/a".to_string(), |mb| format!("{mb:.0}"));
        eprintln!(
            "  {n} clients x {rounds} rounds: {wall_secs:.2} s wall, {events} events \
             ({clients_per_sec:.0} clients/sec, {events_per_sec:.0} events/sec), \
             peak RSS {rss_label} MB"
        );
        table.push(vec![
            n.to_string(),
            rounds.to_string(),
            format!("{wall_secs:.2}"),
            format!("{clients_per_sec:.0}"),
            format!("{events_per_sec:.0}"),
            rss_label,
        ]);
        snapshot.rows.push(ScaleRow {
            clients: n,
            rounds: report.rounds,
            events,
            wall_secs,
            clients_per_sec,
            events_per_sec,
            peak_rss_bytes: rss,
        });
        if let Some(mb) = peak_rss_mb() {
            if mb > budget_mb as f64 {
                eprintln!(
                    "memory budget exceeded after {n} clients: peak RSS {mb:.0} MB \
                     > budget {budget_mb} MB"
                );
                std::process::exit(1);
            }
        }
    }

    println!(
        "{}",
        render_table(
            &[
                "clients",
                "rounds",
                "wall s",
                "clients/sec",
                "events/sec",
                "peak RSS MB"
            ],
            &table
        )
    );

    fs::write(BENCH_PATH, snapshot.to_json()).expect("write BENCH_scale.json");
    let reread = fs::read_to_string(BENCH_PATH).expect("re-read BENCH_scale.json");
    validate_scale_snapshot(&reread).expect("snapshot round-trips through its own validator");
    println!("wrote {BENCH_PATH}: {} rows", snapshot.rows.len());
}
