//! FedBN: personalize by *not sharing* batch-norm parameters.
//!
//! FedBN needs no new trainer — it is exactly the standard
//! [`fs_core::trainer::LocalTrainer`] with a share filter that keeps every
//! `bn*` key local, so each client's normalization statistics adapt to its
//! own feature distribution while the rest of the network is federated.
//! (The paper highlights this as the "fewer communication costs, same
//! computation" personalization, §5.3.2.)

use fs_core::trainer::{share_except_prefix, ShareFilter};

/// The FedBN share filter: share everything except `bn*.*` keys.
pub fn fedbn_share_filter() -> ShareFilter {
    share_except_prefix("bn")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_core::config::FlConfig;
    use fs_core::course::CourseBuilder;
    use fs_data::synth::{femnist_like, ImageConfig};
    use fs_tensor::model::mlp_bn;
    use fs_tensor::optim::SgdConfig;

    #[test]
    fn filter_keeps_bn_local() {
        let f = fedbn_share_filter();
        assert!(f("fc1.weight"));
        assert!(f("conv2.bias"));
        assert!(!f("bn1.gamma"));
        assert!(!f("bn1.running_mean"));
    }

    #[test]
    fn fedbn_course_shares_no_bn_keys() {
        let data = femnist_like(&ImageConfig {
            num_clients: 6,
            per_client: 20,
            img: 6,
            num_classes: 4,
            ..Default::default()
        })
        .flattened();
        let dim = data.input_dim();
        let cfg = FlConfig {
            total_rounds: 3,
            concurrency: 4,
            sgd: SgdConfig::with_lr(0.1),
            ..Default::default()
        };
        let mut runner = CourseBuilder::new(
            data,
            Box::new(move |rng| Box::new(mlp_bn(&[dim, 16, 4], rng))),
            cfg,
        )
        .share_filter(fedbn_share_filter())
        .build();
        // the global model must not contain any bn keys
        assert!(runner
            .server
            .state
            .global
            .names()
            .all(|n| !n.starts_with("bn")));
        let report = runner.run();
        assert_eq!(report.rounds, 3);
        // every client reported final metrics from its personalized model
        assert_eq!(runner.server.state.client_reports.len(), 6);
    }
}
