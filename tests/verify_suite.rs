//! Integration tests for `fs-verify` (§3.6 / Appendix E): seeded broken
//! courses and configs must be rejected with the expected `FSVnnn` codes,
//! builder presets must verify clean, and runners must refuse to start a
//! course that fails static verification.

use fedscope::core::config::{
    AggregationRule, BroadcastManner, CodecSpec, CompressionConfig, FlConfig, SamplerKind,
};
use fedscope::core::course::CourseBuilder;
use fedscope::core::distributed::{run_distributed, DistributedError};
use fedscope::core::{verify_assembled, Client, Condition, Event, StandaloneRunner};
use fedscope::data::synth::{twitter_like, TwitterConfig};
use fedscope::net::MessageKind;
use fedscope::tensor::model::logistic_regression;
use fedscope::verify::{lint_config, Code, Severity, VerifyMode, VerifyReport};
use proptest::prelude::*;
use std::time::Duration;

fn course(num_clients: usize, cfg: FlConfig) -> StandaloneRunner {
    let data = twitter_like(&TwitterConfig {
        num_clients,
        per_client: 12,
        ..Default::default()
    });
    let dim = data.input_dim();
    CourseBuilder::new(
        data,
        Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
        cfg,
    )
    .build()
}

fn report_of(runner: &StandaloneRunner) -> VerifyReport {
    let clients: Vec<&Client> = runner.clients.values().collect();
    verify_assembled(&runner.server, &clients, Some(&runner.server.state.cfg))
}

fn small_cfg() -> FlConfig {
    FlConfig {
        total_rounds: 2,
        concurrency: 4,
        seed: 11,
        ..Default::default()
    }
}

// ---------------------------------------------------------------------------
// Broken courses: protocol-level defects detected on the flow graph.
// ---------------------------------------------------------------------------

/// Removing the server's `all_received` handler severs the path from
/// `receiving_join_in` to `receiving_finish`: the course is incomplete.
#[test]
fn missing_aggregation_handler_is_incomplete() {
    let mut runner = course(8, small_cfg());
    runner
        .server
        .registry_mut()
        .unregister(Event::Condition(Condition::AllReceived));
    let report = report_of(&runner);
    assert!(report.has_errors(), "{report}");
    assert!(report.has_code(Code::Incomplete), "{report}");
}

/// Without a `receiving_join_in` handler the course cannot even start.
#[test]
fn missing_join_in_handler_is_incomplete() {
    let mut runner = course(8, small_cfg());
    runner
        .server
        .registry_mut()
        .unregister(Event::Message(MessageKind::JoinIn));
    let report = report_of(&runner);
    assert!(report.has_code(Code::Incomplete), "{report}");
}

/// The server terminates the course with `Finish`; if no client handles it,
/// the server is shouting into the void.
#[test]
fn unhandled_finish_broadcast_is_an_error() {
    let mut runner = course(8, small_cfg());
    for client in runner.clients.values_mut() {
        client
            .registry_mut()
            .unregister(Event::Message(MessageKind::Finish));
    }
    let report = report_of(&runner);
    assert!(report.has_errors(), "{report}");
    assert!(report.has_code(Code::ServerSendUnhandled), "{report}");
}

/// Clients that cannot receive `ModelParams` never train: the broadcast is
/// unhandled and the course falls apart.
#[test]
fn unhandled_model_broadcast_is_an_error() {
    let mut runner = course(8, small_cfg());
    for client in runner.clients.values_mut() {
        client
            .registry_mut()
            .unregister(Event::Message(MessageKind::ModelParams));
    }
    let report = report_of(&runner);
    assert!(report.has_errors(), "{report}");
    assert!(report.has_code(Code::ServerSendUnhandled), "{report}");
}

/// A client handler that declares it sends a custom message nobody on the
/// server side handles.
#[test]
fn client_message_without_server_handler_is_an_error() {
    let mut runner = course(8, small_cfg());
    for client in runner.clients.values_mut() {
        client.registry_mut().register(
            Event::Message(MessageKind::ModelParams),
            "train_and_share_embeddings",
            vec![
                Event::Message(MessageKind::Updates),
                Event::Message(MessageKind::Custom(9)),
            ],
            Box::new(|_, _, _| {}),
        );
    }
    let report = report_of(&runner);
    assert!(report.has_errors(), "{report}");
    assert!(report.has_code(Code::ClientSendUnhandled), "{report}");
}

/// A handler that declares it raises a condition its own participant never
/// handles — the event would be silently dropped at runtime.
#[test]
fn raised_condition_without_handler_is_an_error() {
    let mut runner = course(8, small_cfg());
    runner.server.registry_mut().register(
        Event::Message(MessageKind::Updates),
        "save_update_and_signal",
        vec![
            Event::Condition(Condition::AllReceived),
            Event::Condition(Condition::Custom(5)),
        ],
        Box::new(|_, _, _| {}),
    );
    let report = report_of(&runner);
    assert!(report.has_errors(), "{report}");
    assert!(report.has_code(Code::ConditionUnhandled), "{report}");
}

/// A registered handler whose trigger event nothing emits is dead code — a
/// warning, not an error (the course still completes).
#[test]
fn never_emitted_handler_is_flagged_unreachable() {
    let mut runner = course(8, small_cfg());
    runner.server.registry_mut().register(
        Event::Message(MessageKind::Custom(33)),
        "orphan_handler",
        vec![],
        Box::new(|_, _, _| {}),
    );
    let report = report_of(&runner);
    assert!(!report.has_errors(), "{report}");
    assert!(!report.is_clean(), "{report}");
    assert!(report.has_code(Code::UnreachableHandler), "{report}");
}

/// Two custom conditions that ping-pong forever with no path back to
/// `Finish` form a reachable cycle without exit.
#[test]
fn reachable_cycle_without_exit_is_flagged() {
    let mut runner = course(8, small_cfg());
    let reg = runner.server.registry_mut();
    // Re-declare the update handler so it also kicks off the side loop.
    reg.register(
        Event::Message(MessageKind::Updates),
        "save_update_and_spin",
        vec![
            Event::Message(MessageKind::ModelParams),
            Event::Condition(Condition::AllReceived),
            Event::Condition(Condition::Custom(1)),
        ],
        Box::new(|_, _, _| {}),
    );
    reg.register(
        Event::Condition(Condition::Custom(1)),
        "spin_a",
        vec![Event::Condition(Condition::Custom(2))],
        Box::new(|_, _, _| {}),
    );
    reg.register(
        Event::Condition(Condition::Custom(2)),
        "spin_b",
        vec![Event::Condition(Condition::Custom(1))],
        Box::new(|_, _, _| {}),
    );
    let report = report_of(&runner);
    assert!(report.has_code(Code::CycleWithoutExit), "{report}");
}

/// Overwriting a handler is legal (latest wins, per §3.2) and surfaces as a
/// note that does not dirty the report.
#[test]
fn handler_overwrite_is_a_note_only() {
    let mut runner = course(8, small_cfg());
    runner.server.registry_mut().register(
        Event::Message(MessageKind::Updates),
        "custom_save_update",
        vec![
            Event::Message(MessageKind::ModelParams),
            Event::Condition(Condition::AllReceived),
        ],
        Box::new(|_, _, _| {}),
    );
    let report = report_of(&runner);
    assert!(report.has_code(Code::RegistryOverwrite), "{report}");
    assert!(report.is_clean(), "{report}");
    assert!(report.count(Severity::Note) >= 1);
}

// ---------------------------------------------------------------------------
// Broken configs: lints over FlConfig.
// ---------------------------------------------------------------------------

fn lint_codes(cfg: &FlConfig, num_clients: usize) -> Vec<Code> {
    lint_config(&cfg.facts(Some(num_clients)))
        .into_iter()
        .map(|d| d.code)
        .collect()
}

#[test]
fn zero_rounds_is_an_error() {
    let cfg = FlConfig {
        total_rounds: 0,
        ..Default::default()
    };
    assert!(lint_codes(&cfg, 20).contains(&Code::ZeroRounds));
}

#[test]
fn zero_concurrency_samples_nobody() {
    let cfg = FlConfig {
        concurrency: 0,
        ..Default::default()
    };
    assert!(lint_codes(&cfg, 20).contains(&Code::EmptySampleTarget));
}

#[test]
fn invalid_codec_parameters_are_errors() {
    let cfg = FlConfig {
        compression: CompressionConfig {
            upload: Some(CodecSpec::UniformQuant { bits: 3 }),
            ..Default::default()
        },
        ..Default::default()
    };
    assert!(lint_codes(&cfg, 20).contains(&Code::QuantBitsInvalid));

    let cfg = FlConfig {
        compression: CompressionConfig {
            upload: Some(CodecSpec::TopK { ratio: 0.0 }),
            ..Default::default()
        },
        ..Default::default()
    };
    assert!(lint_codes(&cfg, 20).contains(&Code::TopKRatioInvalid));

    let cfg = FlConfig {
        compression: CompressionConfig {
            download: Some(CodecSpec::TopK { ratio: f32::NAN }),
            ..Default::default()
        },
        ..Default::default()
    };
    assert!(lint_codes(&cfg, 20).contains(&Code::TopKRatioInvalid));
}

#[test]
fn degenerate_training_knobs_are_errors() {
    let cfg = FlConfig {
        eval_every: 0,
        ..Default::default()
    };
    assert!(lint_codes(&cfg, 20).contains(&Code::ZeroEvalEvery));

    let mut cfg = FlConfig::default();
    cfg.sgd.lr = 0.0;
    assert!(lint_codes(&cfg, 20).contains(&Code::NonPositiveLr));

    let cfg = FlConfig {
        batch_size: 0,
        ..Default::default()
    };
    assert!(lint_codes(&cfg, 20).contains(&Code::ZeroBatchSize));

    let cfg = FlConfig {
        local_steps: 0,
        ..Default::default()
    };
    assert!(lint_codes(&cfg, 20).contains(&Code::ZeroLocalSteps));
}

#[test]
fn degenerate_aggregation_rules_are_errors() {
    let cfg =
        FlConfig::default().async_goal(0, BroadcastManner::AfterAggregating, SamplerKind::Uniform);
    assert!(lint_codes(&cfg, 20).contains(&Code::ZeroGoal));

    let cfg = FlConfig::default().async_time(
        -1.0,
        1,
        BroadcastManner::AfterAggregating,
        SamplerKind::Uniform,
    );
    assert!(lint_codes(&cfg, 20).contains(&Code::NonPositiveBudget));
}

#[test]
fn population_and_threshold_bounds_are_checked() {
    // 10 concurrent from a population of 5: impossible.
    let codes = lint_codes(&FlConfig::default(), 5);
    assert!(codes.contains(&Code::SampleTargetExceedsClients));

    // goal 15 can never be met by 10 sampled clients.
    let cfg =
        FlConfig::default().async_goal(15, BroadcastManner::AfterAggregating, SamplerKind::Uniform);
    assert!(lint_codes(&cfg, 20).contains(&Code::ThresholdExceedsSampleTarget));

    let cfg = FlConfig {
        over_selection: -0.5,
        ..Default::default()
    };
    assert!(lint_codes(&cfg, 20).contains(&Code::OverSelectionNegative));
}

// ---------------------------------------------------------------------------
// Builder presets verify clean end to end.
// ---------------------------------------------------------------------------

#[test]
fn builder_presets_verify_clean() {
    let presets: Vec<(&str, FlConfig)> = vec![
        ("sync_vanilla", small_cfg().sync_vanilla()),
        ("sync_over_selection", small_cfg().sync_over_selection(0.3)),
        (
            "async_goal",
            small_cfg().async_goal(3, BroadcastManner::AfterReceiving, SamplerKind::Uniform),
        ),
        (
            "async_time",
            small_cfg().async_time(
                5.0,
                2,
                BroadcastManner::AfterAggregating,
                SamplerKind::Responsiveness,
            ),
        ),
        (
            "quant8_upload",
            FlConfig {
                compression: CompressionConfig::quant8_upload(),
                ..small_cfg()
            },
        ),
    ];
    for (name, cfg) in presets {
        // 16 clients covers the 30% over-selected sample target.
        let runner = course(16, cfg);
        let report = report_of(&runner);
        assert!(report.is_clean(), "preset {name} not clean:\n{report}");
    }
}

// ---------------------------------------------------------------------------
// Runners refuse to start a course that fails verification.
// ---------------------------------------------------------------------------

#[test]
fn standalone_runner_refuses_incomplete_course() {
    let mut runner = course(8, small_cfg());
    runner
        .server
        .registry_mut()
        .unregister(Event::Condition(Condition::AllReceived));
    let err = runner
        .try_run()
        .expect_err("incomplete course must not run");
    assert!(err.has_code(Code::Incomplete), "{err}");
}

#[test]
fn standalone_runner_refuses_broken_config() {
    let mut runner = course(
        8,
        FlConfig {
            eval_every: 0,
            ..small_cfg()
        },
    );
    let err = runner.try_run().expect_err("broken config must not run");
    assert!(err.has_code(Code::ZeroEvalEvery), "{err}");
}

/// `VerifyMode::Warn` downgrades refusal to a printed report: the course
/// starts anyway. We use a statically broken but dynamically harmless course
/// (a declared custom message nobody handles is simply dropped at runtime).
#[test]
fn warn_mode_overrides_refusal() {
    let mut runner = course(8, small_cfg());
    for client in runner.clients.values_mut() {
        client.registry_mut().register(
            Event::Message(MessageKind::ModelParams),
            "train_and_gossip",
            vec![
                Event::Message(MessageKind::Updates),
                Event::Message(MessageKind::Custom(9)),
            ],
            Box::new(|_, _, _| {}),
        );
    }
    assert!(runner.try_run().is_err(), "Enforce must refuse");

    // Same defect, Warn mode: the runner logs the report and proceeds. The
    // no-op client handlers mean no client ever returns an update, so pick a
    // fresh course and only flip the mode.
    let mut runner = course(8, small_cfg());
    runner.server.state.cfg.verify = VerifyMode::Warn;
    runner
        .server
        .registry_mut()
        .unregister(Event::Message(MessageKind::MetricsReport));
    let report = runner.try_run().expect("warn mode proceeds");
    assert_eq!(report.rounds, 2);
}

#[test]
fn skip_mode_bypasses_verification() {
    let mut runner = course(
        8,
        FlConfig {
            verify: VerifyMode::Skip,
            ..small_cfg()
        },
    );
    // Statically broken (undeclared custom emission target), dynamically fine.
    runner.server.registry_mut().register(
        Event::Message(MessageKind::Custom(77)),
        "orphan",
        vec![],
        Box::new(|_, _, _| {}),
    );
    let report = runner.try_run().expect("skip mode never refuses");
    assert_eq!(report.rounds, 2);
}

#[test]
fn distributed_runner_refuses_broken_course() {
    let runner = course(6, small_cfg());
    let mut server = runner.server;
    let clients: Vec<Client> = runner.clients.into_values().collect();
    server
        .registry_mut()
        .unregister(Event::Condition(Condition::AllReceived));
    let err = run_distributed(server, clients, Duration::from_secs(5));
    match err {
        Err(DistributedError::Verification(report)) => {
            assert!(report.has_code(Code::Incomplete), "{report}")
        }
        Err(other) => panic!("expected verification refusal, got {other}"),
        Ok(_) => panic!("broken course must not run"),
    }
}

// ---------------------------------------------------------------------------
// Conformance: runtime emissions are diffed against declarations and the
// report carries the effective-handler log.
// ---------------------------------------------------------------------------

#[test]
fn course_report_carries_handler_log_and_no_violations_by_default() {
    let mut runner = course(8, small_cfg());
    let report = runner.try_run().expect("default course runs");
    assert!(
        report
            .effective_handlers
            .iter()
            .any(|l| l.starts_with("server:")),
        "handler log missing server entries: {:?}",
        report.effective_handlers
    );
    assert!(
        report.conformance_violations.is_empty(),
        "stock handlers must emit only what they declare: {:?}",
        report.conformance_violations
    );
}

#[test]
fn undeclared_runtime_emission_is_reported() {
    let mut runner = course(8, small_cfg());
    // Declared emits omit EvalRequest, but the handler raises it anyway.
    runner.server.registry_mut().register(
        Event::Message(MessageKind::MetricsReport),
        "sneaky_metrics_sink",
        vec![],
        Box::new(|_, _, ctx| {
            ctx.raise(Condition::Custom(60));
        }),
    );
    runner.server.state.cfg.verify = VerifyMode::Skip;
    let report = runner.try_run().expect("course still runs");
    assert!(
        report
            .conformance_violations
            .iter()
            .any(|v| v.contains("sneaky_metrics_sink")),
        "expected a conformance violation: {:?}",
        report.conformance_violations
    );
}

// ---------------------------------------------------------------------------
// Property tests: mutated-invalid configs always produce at least one FSV
// error; valid parameter ranges never do.
// ---------------------------------------------------------------------------

fn apply_breaking_mutation(cfg: &mut FlConfig, which: u8) {
    match which % 10 {
        0 => cfg.total_rounds = 0,
        1 => cfg.concurrency = 0,
        2 => cfg.eval_every = 0,
        3 => cfg.local_steps = 0,
        4 => cfg.batch_size = 0,
        5 => cfg.sgd.lr = -0.1,
        6 => cfg.over_selection = -1.5,
        7 => {
            cfg.compression.upload = Some(CodecSpec::UniformQuant { bits: 5 });
        }
        8 => {
            cfg.compression.download = Some(CodecSpec::TopK { ratio: -0.25 });
        }
        _ => cfg.rule = AggregationRule::GoalAchieved { goal: 0 },
    }
}

proptest! {
    /// Any single breaking mutation over any reasonable base config yields
    /// at least one FSV error.
    #[test]
    fn broken_configs_always_lint_an_error(
        which in 0u8..10,
        rounds in 1u64..200,
        concurrency in 1usize..16,
        seed in any::<u64>(),
    ) {
        let mut cfg = FlConfig {
            total_rounds: rounds,
            concurrency,
            seed,
            ..Default::default()
        };
        apply_breaking_mutation(&mut cfg, which);
        let diags = lint_config(&cfg.facts(Some(64)));
        prop_assert!(
            diags.iter().any(|d| d.severity == Severity::Error),
            "mutation {} produced no error: {:?}",
            which,
            diags.iter().map(|d| d.code).collect::<Vec<_>>()
        );
    }

    /// Builder presets over valid parameter ranges never lint an error.
    #[test]
    fn valid_presets_never_lint_an_error(
        rounds in 1u64..200,
        concurrency in 1usize..16,
        goal_frac in 1usize..=4,
        preset in 0u8..4,
    ) {
        let base = FlConfig {
            total_rounds: rounds,
            concurrency,
            ..Default::default()
        };
        let goal = (concurrency / goal_frac).max(1);
        let cfg = match preset {
            0 => base.sync_vanilla(),
            1 => base.sync_over_selection(0.3),
            2 => base.async_goal(goal, BroadcastManner::AfterReceiving, SamplerKind::Uniform),
            _ => base.async_time(
                10.0,
                goal,
                BroadcastManner::AfterAggregating,
                SamplerKind::Group,
            ),
        };
        // Population comfortably larger than any sample target.
        let diags = lint_config(&cfg.facts(Some(256)));
        prop_assert!(
            !diags.iter().any(|d| d.severity == Severity::Error),
            "preset {} linted errors: {:?}",
            preset,
            diags.iter().map(|d| d.code).collect::<Vec<_>>()
        );
    }
}
