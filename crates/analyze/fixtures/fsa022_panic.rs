// FSA022 fixture: the panic-family macros.
pub fn boom(kind: u8) -> u32 {
    match kind {
        0 => panic!("boom"),
        1 => unreachable!(),
        2 => todo!(),
        _ => unimplemented!(),
    }
}
