//! `fs-personalize` — personalized FL algorithms and multi-goal courses (§3.4).
//!
//! Heterogeneous local data makes one global model sub-optimal; the paper
//! ships several representative personalization algorithms, all of which are
//! *trainer-level* customizations in the event-driven architecture — the
//! server and message flow stay untouched:
//!
//! * [`fedbn`] — FedBN (Li et al.): share everything except batch-norm
//!   parameters. A pure [`fs_core::trainer::ShareFilter`].
//! * [`ditto`] — Ditto (Li et al.): besides the shared global model, each
//!   client trains a personal model with a proximal pull toward the global.
//! * [`pfedme`] — pFedMe (Dinh et al.): Moreau-envelope personalization; the
//!   personal model solves an inner proximal problem, the outer iterate moves
//!   toward it.
//! * [`fedem`] — FedEM (Marfoq et al.): clients model their data as a mixture
//!   of `K` shared components with private mixture weights, updated by
//!   batch EM.
//! * [`multigoal`] — FL with multiple learning goals (§3.4.2): clients share a
//!   consensus subset of parameters (e.g. a graph encoder) while owning
//!   different heads, losses, and even task types.

pub mod ditto;
pub mod fedbn;
pub mod fedem;
pub mod multigoal;
pub mod pfedme;

pub use ditto::DittoTrainer;
pub use fedem::{FedEmTrainer, MixtureModel};
pub use pfedme::PFedMeTrainer;
