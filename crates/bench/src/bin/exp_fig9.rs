//! **Figure 9** — learning curves (global test accuracy vs virtual time) for
//! synchronous vs asynchronous strategies on the CIFAR-like dataset.
//!
//! Paper's shape: asynchronous curves sit clearly above the synchronous ones
//! for most of the course (a long-lived gap), converging to similar accuracy.
//!
//! ```text
//! cargo run -p fs-bench --release --bin exp_fig9 -- [--seed N] [--rounds N]
//! ```

use fs_bench::args::ExpArgs;
use fs_bench::output::write_json;
use fs_bench::strategies::Strategy;
use fs_bench::workloads::cifar;
use serde::Serialize;

#[derive(Serialize)]
struct Curve {
    strategy: String,
    points: Vec<(f64, f32)>, // (virtual seconds, accuracy)
}

fn main() {
    let args = ExpArgs::parse();
    let wl = cifar(args.seed_or(7));
    let strategies = [
        Strategy::SyncVanilla,
        Strategy::SyncOverSelection,
        Strategy::GoalAggrUnif,
        Strategy::GoalReceUnif,
        Strategy::TimeAggrUnif,
    ];
    let mut curves = Vec::new();
    for strat in strategies {
        let mut cfg = strat.configure(&wl);
        cfg.target_accuracy = None;
        cfg.parallelism = args.threads_or(1);
        let sync_rounds = args.rounds_or(50);
        cfg.total_rounds = if strat.is_async() {
            sync_rounds * 3
        } else {
            sync_rounds
        };
        let mut runner = wl.build(cfg);
        let report = runner.run();
        let points: Vec<(f64, f32)> = report
            .history
            .iter()
            .map(|r| (r.time_secs, r.metrics.accuracy))
            .collect();
        println!("{}:", strat.label());
        for &(t, a) in points.iter().step_by((points.len() / 8).max(1)) {
            println!("  t={t:>8.1}s acc={a:.3}");
        }
        curves.push(Curve {
            strategy: strat.label().to_string(),
            points,
        });
    }
    // the paper's headline observation: a noticeable accuracy gap at equal
    // virtual time for a long stretch of training
    let probe_time = curves[0].points.last().map(|p| p.0 * 0.08).unwrap_or(100.0);
    let acc_at = |c: &Curve| {
        c.points
            .iter()
            .take_while(|p| p.0 <= probe_time)
            .last()
            .map(|p| p.1)
            .unwrap_or(0.0)
    };
    println!("\naccuracy at t={probe_time:.0}s (8% of the sync course):");
    for c in &curves {
        println!("  {:<18} {:.3}", c.strategy, acc_at(c));
    }
    let path = write_json("fig9", &curves).expect("write results");
    println!("wrote {path}");
}
