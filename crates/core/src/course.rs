//! The course builder: datasets + models + configuration → a runnable course.
//!
//! This is the "simple configuring" interface of §3.6: pick a dataset, a
//! model factory, and an [`FlConfig`]; the builder wires up the server, the
//! clients, the fleet, the sampler, the aggregator, and the centralized
//! evaluator, validating the configuration as it goes.

use crate::aggregator::{Aggregator, FedAvg};
use crate::client::Client;
use crate::config::{AggregationRule, FlConfig, SamplerKind};
use crate::eval::GlobalEvaluator;
use crate::runner::StandaloneRunner;
use crate::sampler::Sampler;
use crate::server::Server;
use crate::trainer::{pooled_test_set, share_all, LocalTrainer, ShareFilter, TrainConfig, Trainer};
use fs_data::{ClientSplit, FedDataset};
use fs_sim::{Fleet, FleetConfig};
use fs_tensor::model::Model;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a fresh model given the course RNG.
pub type ModelFactory = Box<dyn Fn(&mut StdRng) -> Box<dyn Model>>;

/// Creates a trainer for client `idx` (0-based) from its model and data.
pub type TrainerFactory =
    Box<dyn Fn(usize, Box<dyn Model>, ClientSplit, &FlConfig) -> Box<dyn Trainer>>;

/// Assembles FL courses.
pub struct CourseBuilder {
    dataset: FedDataset,
    cfg: FlConfig,
    fleet: Option<Fleet>,
    fleet_cfg: FleetConfig,
    model_factory: ModelFactory,
    share: ShareFilter,
    aggregator: Option<Box<dyn Aggregator>>,
    trainer_factory: Option<TrainerFactory>,
    sampler_override: Option<Sampler>,
    central_eval: bool,
    eval_cap_per_client: usize,
    detect_perf_drop: bool,
}

impl CourseBuilder {
    /// Starts a builder from a dataset, a model factory, and a configuration.
    pub fn new(dataset: FedDataset, model_factory: ModelFactory, cfg: FlConfig) -> Self {
        let fleet_cfg = FleetConfig {
            num_clients: dataset.num_clients(),
            seed: cfg.seed ^ 0xf1ee,
            ..Default::default()
        };
        Self {
            dataset,
            cfg,
            fleet: None,
            fleet_cfg,
            model_factory,
            share: share_all(),
            aggregator: None,
            trainer_factory: None,
            sampler_override: None,
            central_eval: true,
            eval_cap_per_client: 20,
            detect_perf_drop: false,
        }
    }

    /// Uses an explicit fleet instead of generating one.
    pub fn fleet(mut self, fleet: Fleet) -> Self {
        self.fleet = Some(fleet);
        self
    }

    /// Adjusts the generated fleet's configuration.
    pub fn fleet_config(mut self, cfg: FleetConfig) -> Self {
        self.fleet_cfg = cfg;
        self
    }

    /// Sets the parameter-sharing filter (personalization / multi-goal).
    pub fn share_filter(mut self, share: ShareFilter) -> Self {
        self.share = share;
        self
    }

    /// Replaces the default FedAvg aggregator.
    pub fn aggregator(mut self, agg: Box<dyn Aggregator>) -> Self {
        self.aggregator = Some(agg);
        self
    }

    /// Replaces the default [`LocalTrainer`] factory (personalization).
    pub fn trainer_factory(mut self, f: TrainerFactory) -> Self {
        self.trainer_factory = Some(f);
        self
    }

    /// Replaces the sampler derived from `cfg.sampler` (e.g. an
    /// inverse-responsiveness sampler compensating slow clients).
    pub fn sampler(mut self, s: Sampler) -> Self {
        self.sampler_override = Some(s);
        self
    }

    /// Disables the centralized evaluator (e.g. pure-distributed eval runs).
    pub fn no_central_eval(mut self) -> Self {
        self.central_eval = false;
        self
    }

    /// Enables client-side `performance_drop` detection.
    pub fn detect_perf_drop(mut self) -> Self {
        self.detect_perf_drop = true;
        self
    }

    fn validate(&self) {
        let n = self.dataset.num_clients();
        assert!(n > 0, "dataset has no clients");
        assert!(
            self.cfg.sample_target() <= n,
            "sample target {} exceeds client count {n}",
            self.cfg.sample_target()
        );
        match self.cfg.rule {
            AggregationRule::GoalAchieved { goal } => {
                assert!(goal >= 1, "aggregation goal must be >= 1");
                assert!(
                    goal <= self.cfg.sample_target(),
                    "goal {goal} can never be reached with sample target {}",
                    self.cfg.sample_target()
                );
            }
            AggregationRule::TimeUp {
                budget_secs,
                min_feedback,
            } => {
                assert!(budget_secs > 0.0, "time budget must be positive");
                assert!(
                    min_feedback <= self.cfg.sample_target(),
                    "min_feedback {min_feedback} exceeds sample target {}",
                    self.cfg.sample_target()
                );
            }
            AggregationRule::AllReceived => {}
        }
    }

    /// Builds the standalone runner.
    pub fn build(self) -> StandaloneRunner {
        self.validate();
        let CourseBuilder {
            dataset,
            cfg,
            fleet,
            fleet_cfg,
            model_factory,
            share,
            aggregator,
            trainer_factory,
            sampler_override,
            central_eval,
            eval_cap_per_client,
            detect_perf_drop,
        } = self;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let fleet = fleet.unwrap_or_else(|| Fleet::generate(&fleet_cfg));
        // crashed broadcasts leave clients busy forever; only the time_up
        // rule has a remedial measure for that, so reject the combination
        // up front instead of silently deadlocking mid-course
        if !matches!(cfg.rule, AggregationRule::TimeUp { .. }) {
            assert!(
                fleet.profiles().iter().all(|p| p.crash_prob == 0.0),
                "client crashes require the time_up rule (its remedial measure \
                 re-arms the round); all_received/goal_achieved would deadlock"
            );
        }
        let n = dataset.num_clients();

        // template model defines the initial global parameters
        let template = model_factory(&mut rng);
        let global = template.get_params().filter(|k| share(k));

        // sampler: estimate per-round payload from the *actual* wire size of
        // a broadcast (compressed when a download codec is configured), not
        // the old 4-bytes-per-value guess
        let avg_examples = cfg.local_steps * cfg.batch_size;
        let payload = match cfg.compression.build_download() {
            Some(mut codec) => 1 + 8 + codec.compress(&global).encoded_len(),
            None => 1 + 8 + fs_net::wire::params_wire_len(&global),
        };
        let sampler = if let Some(s) = sampler_override {
            s
        } else {
            match cfg.sampler {
                SamplerKind::Uniform => Sampler::Uniform,
                SamplerKind::Responsiveness => Sampler::Responsiveness {
                    speeds: fleet.response_speeds(avg_examples, payload),
                },
                SamplerKind::Group => {
                    let groups = (0..fleet.num_groups())
                        .map(|g| fleet.group_members(g))
                        .collect();
                    Sampler::group(groups)
                }
            }
        };

        // centralized evaluator on the pooled test set
        let evaluator = if central_eval {
            let (x, y) = pooled_test_set(&dataset, eval_cap_per_client);
            if y.is_empty() {
                None
            } else {
                Some(GlobalEvaluator::new(template.clone_model(), x, y))
            }
        } else {
            None
        };

        let aggregator =
            aggregator.unwrap_or_else(|| Box::new(FedAvg::new(cfg.staleness_discount)));
        let server = Server::new(cfg.clone(), global, n, aggregator, sampler, evaluator);

        // clients share the template initialization (FedAvg convention)
        let mut clients = Vec::with_capacity(n);
        for (i, split) in dataset.clients.iter().enumerate() {
            let model = template.clone_model();
            let trainer: Box<dyn Trainer> = match &trainer_factory {
                Some(f) => f(i, model, split.clone(), &cfg),
                None => Box::new(LocalTrainer::new(
                    model,
                    split.clone(),
                    TrainConfig {
                        local_steps: cfg.local_steps,
                        batch_size: cfg.batch_size,
                        sgd: cfg.sgd,
                    },
                    share.clone(),
                    cfg.seed ^ (i as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15),
                )),
            };
            let mut client = Client::new((i + 1) as u32, trainer);
            client.state.detect_perf_drop = detect_perf_drop;
            // one codec instance per client: residuals / delta references are
            // sender-local state
            client.state.compressor = cfg.compression.build_upload();
            clients.push(client);
        }
        StandaloneRunner::new(server, clients, fleet, cfg.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_data::synth::{twitter_like, TwitterConfig};
    use fs_tensor::model::logistic_regression;
    use fs_tensor::optim::SgdConfig;

    fn tiny_course(cfg: FlConfig) -> StandaloneRunner {
        let data = twitter_like(&TwitterConfig {
            num_clients: 8,
            per_client: 12,
            ..Default::default()
        });
        let dim = data.input_dim();
        CourseBuilder::new(
            data,
            Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
            cfg,
        )
        .build()
    }

    #[test]
    fn sync_course_runs_to_round_limit() {
        let cfg = FlConfig {
            total_rounds: 5,
            concurrency: 4,
            sgd: SgdConfig::with_lr(0.5),
            ..Default::default()
        };
        let mut runner = tiny_course(cfg);
        let report = runner.run();
        assert_eq!(report.rounds, 5);
        assert!(report.finish_reason.contains("round limit"));
        assert_eq!(report.history.len(), 5);
        assert!(report.final_time_secs > 0.0);
        // all 8 clients reported final metrics
        assert_eq!(runner.server.state.client_reports.len(), 8);
    }

    #[test]
    fn async_goal_course_completes() {
        let cfg = FlConfig {
            total_rounds: 6,
            concurrency: 4,
            sgd: SgdConfig::with_lr(0.5),
            ..Default::default()
        }
        .async_goal(
            2,
            crate::config::BroadcastManner::AfterReceiving,
            SamplerKind::Uniform,
        );
        let mut runner = tiny_course(cfg);
        let report = runner.run();
        assert_eq!(report.rounds, 6);
        assert!(
            report.total_updates >= 12,
            "goal 2 x 6 rounds needs >= 12 updates"
        );
    }

    #[test]
    fn time_up_course_completes() {
        let cfg = FlConfig {
            total_rounds: 3,
            concurrency: 4,
            sgd: SgdConfig::with_lr(0.5),
            ..Default::default()
        }
        .async_time(
            120.0,
            1,
            crate::config::BroadcastManner::AfterAggregating,
            SamplerKind::Uniform,
        );
        let mut runner = tiny_course(cfg);
        let report = runner.run();
        assert_eq!(report.rounds, 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = FlConfig {
            total_rounds: 3,
            concurrency: 4,
            seed: 77,
            ..Default::default()
        };
        let r1 = tiny_course(cfg.clone()).run();
        let r2 = tiny_course(cfg).run();
        assert_eq!(r1.final_time_secs, r2.final_time_secs);
        assert_eq!(r1.history.len(), r2.history.len());
        for (a, b) in r1.history.iter().zip(&r2.history) {
            assert_eq!(a.metrics.accuracy, b.metrics.accuracy);
        }
    }

    #[test]
    #[should_panic(expected = "goal")]
    fn invalid_goal_rejected() {
        let cfg = FlConfig {
            concurrency: 4,
            rule: AggregationRule::GoalAchieved { goal: 100 },
            ..Default::default()
        };
        let _ = tiny_course(cfg);
    }

    #[test]
    #[should_panic(expected = "sample target")]
    fn oversized_concurrency_rejected() {
        let cfg = FlConfig {
            concurrency: 1000,
            ..Default::default()
        };
        let _ = tiny_course(cfg);
    }

    #[test]
    fn group_sampler_course_runs() {
        let cfg = FlConfig {
            total_rounds: 4,
            concurrency: 2,
            sampler: SamplerKind::Group,
            sgd: SgdConfig::with_lr(0.5),
            ..Default::default()
        }
        .async_goal(
            2,
            crate::config::BroadcastManner::AfterAggregating,
            SamplerKind::Group,
        );
        let mut runner = tiny_course(cfg);
        let report = runner.run();
        assert_eq!(report.rounds, 4);
    }

    #[test]
    fn learning_actually_happens() {
        // seed 21 draws a topic pair separable enough for the 0.7 floor
        // below; the default seed is borderline under the in-repo RNG
        let data = twitter_like(&TwitterConfig {
            num_clients: 30,
            per_client: 24,
            seed: 21,
            ..Default::default()
        });
        let dim = data.input_dim();
        let cfg = FlConfig {
            total_rounds: 30,
            concurrency: 10,
            local_steps: 8,
            batch_size: 4,
            sgd: SgdConfig::with_lr(0.5),
            ..Default::default()
        };
        let mut runner = CourseBuilder::new(
            data,
            Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
            cfg,
        )
        .build();
        let report = runner.run();
        let best = report
            .history
            .iter()
            .map(|r| r.metrics.accuracy)
            .fold(f32::NEG_INFINITY, f32::max);
        assert!(best > 0.7, "no learning: best accuracy {best}");
    }
}
