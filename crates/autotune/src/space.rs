//! Hyperparameter search spaces.

use rand::Rng;
use std::collections::BTreeMap;

/// A sampled configuration: name → value (integers are stored as floats and
/// rounded at use sites).
pub type Config = BTreeMap<String, f64>;

/// One tunable dimension.
#[derive(Clone, Debug)]
pub enum Param {
    /// Continuous value in `[lo, hi]`; `log` samples log-uniformly.
    Float {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
        /// Sample log-uniformly (for learning rates etc.).
        log: bool,
    },
    /// Integer value in `[lo, hi]` (inclusive).
    Int {
        /// Lower bound.
        lo: i64,
        /// Upper bound.
        hi: i64,
    },
    /// One of an explicit set of values.
    Choice(Vec<f64>),
}

/// A named collection of tunable dimensions.
#[derive(Clone, Debug, Default)]
pub struct SearchSpace {
    dims: Vec<(String, Param)>,
}

impl SearchSpace {
    /// Creates an empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a dimension (builder style).
    pub fn with(mut self, name: impl Into<String>, p: Param) -> Self {
        self.dims.push((name.into(), p));
        self
    }

    /// The dimension names.
    pub fn names(&self) -> Vec<&str> {
        self.dims.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Samples one configuration uniformly (per-dimension).
    pub fn sample(&self, rng: &mut impl Rng) -> Config {
        self.dims
            .iter()
            .map(|(name, p)| {
                let v = match p {
                    Param::Float { lo, hi, log } => {
                        if *log {
                            assert!(*lo > 0.0, "log scale needs positive bounds");
                            (lo.ln() + rng.gen::<f64>() * (hi.ln() - lo.ln())).exp()
                        } else {
                            lo + rng.gen::<f64>() * (hi - lo)
                        }
                    }
                    Param::Int { lo, hi } => rng.gen_range(*lo..=*hi) as f64,
                    Param::Choice(vals) => vals[rng.gen_range(0..vals.len())],
                };
                (name.clone(), v)
            })
            .collect()
    }

    /// Perturbs a configuration for PBT's explore step: floats are scaled by
    /// 0.8 or 1.25 (clamped), ints move ±1, choices resample.
    pub fn perturb(&self, cfg: &Config, rng: &mut impl Rng) -> Config {
        self.dims
            .iter()
            .map(|(name, p)| {
                let cur = cfg.get(name).copied().unwrap_or(0.0);
                let v = match p {
                    Param::Float { lo, hi, .. } => {
                        let f = if rng.gen::<bool>() { 0.8 } else { 1.25 };
                        (cur * f).clamp(*lo, *hi)
                    }
                    Param::Int { lo, hi } => {
                        let step = if rng.gen::<bool>() { -1.0 } else { 1.0 };
                        (cur + step).clamp(*lo as f64, *hi as f64)
                    }
                    Param::Choice(vals) => vals[rng.gen_range(0..vals.len())],
                };
                (name.clone(), v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::new()
            .with(
                "lr",
                Param::Float {
                    lo: 0.01,
                    hi: 1.0,
                    log: true,
                },
            )
            .with("steps", Param::Int { lo: 1, hi: 8 })
            .with("batch", Param::Choice(vec![8.0, 16.0, 32.0]))
    }

    #[test]
    fn samples_stay_in_bounds() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let c = s.sample(&mut rng);
            let lr = c["lr"];
            assert!((0.01..=1.0).contains(&lr));
            let steps = c["steps"];
            assert!((1.0..=8.0).contains(&steps));
            assert!([8.0, 16.0, 32.0].contains(&c["batch"]));
        }
    }

    #[test]
    fn log_sampling_covers_decades() {
        let s = SearchSpace::new().with(
            "lr",
            Param::Float {
                lo: 1e-4,
                hi: 1.0,
                log: true,
            },
        );
        let mut rng = StdRng::seed_from_u64(1);
        let mut small = 0;
        for _ in 0..500 {
            if s.sample(&mut rng)["lr"] < 1e-2 {
                small += 1;
            }
        }
        // log-uniform: half the draws land below 1e-2
        assert!((150..350).contains(&small), "got {small}");
    }

    #[test]
    fn perturb_respects_bounds() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(2);
        let mut c = s.sample(&mut rng);
        for _ in 0..50 {
            c = s.perturb(&c, &mut rng);
            assert!((0.01..=1.0).contains(&c["lr"]));
            assert!((1.0..=8.0).contains(&c["steps"]));
        }
    }
}
