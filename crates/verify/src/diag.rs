//! Structured diagnostics: stable codes, severities, and the report type.
//!
//! Every finding the verifier can produce has a stable `FSVnnn` code so that
//! tests (and downstream tooling) can assert on *which* problem was found,
//! not just that something was. Severities follow the usual compiler
//! convention:
//!
//! * **Error** — the course cannot work; runners refuse to start.
//! * **Warning** — almost certainly a mistake, but the course can run.
//! * **Note** — surfaced for the experiment log; expected on many valid
//!   courses (e.g. legitimate sink events, deliberate handler overrides).

use std::fmt;

/// How bad a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Expected on valid courses; recorded for the log.
    Note,
    /// Suspicious but runnable.
    Warning,
    /// The course is rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes. The numeric ranges group the analysis families:
/// `FSV00x` protocol/graph checks, `FSV02x`–`FSV03x` config lints, `FSV04x`
/// runtime conformance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// FSV001: no path from course start (`receiving_JoinIn`) to
    /// termination (`receiving_Finish`).
    Incomplete,
    /// FSV002: a registered handler's event is unreachable from the start.
    UnreachableHandler,
    /// FSV003: a reachable event emits nothing and is not the terminal.
    DeadEndEvent,
    /// FSV004: a reachable cycle from which termination cannot be reached.
    CycleWithoutExit,
    /// FSV005: the server emits a message kind no client handles.
    ServerSendUnhandled,
    /// FSV006: a client emits a message kind the server does not handle.
    ClientSendUnhandled,
    /// FSV007: a condition is raised but the raising participant has no
    /// handler for it (conditions are participant-local).
    ConditionUnhandled,
    /// FSV009: a handler registration overwrote an earlier one.
    RegistryOverwrite,
    /// FSV020: `total_rounds` is zero.
    ZeroRounds,
    /// FSV021: the sampler target is empty (zero concurrency).
    EmptySampleTarget,
    /// FSV022: staleness settings are inert under `all_received`.
    StalenessInertUnderSync,
    /// FSV023: `over_selection` is negative or NaN.
    OverSelectionNegative,
    /// FSV024: `over_selection >= 1.0` — it is an *extra fraction*, not a
    /// multiplicative factor.
    OverSelectionHuge,
    /// FSV025: `upload_delta` without an upload codec is inert.
    DeltaWithoutUploadCodec,
    /// FSV026: `after_receiving` broadcast under `all_received` — newly
    /// broadcast clients keep extending the set the rule waits for.
    AfterReceivingUnderAllReceived,
    /// FSV027: quantization width is not 4 or 8 bits.
    QuantBitsInvalid,
    /// FSV028: top-k keep ratio outside `(0, 1]` (or NaN).
    TopKRatioInvalid,
    /// FSV029: `eval_every` exceeds `total_rounds` — no evaluation ever runs.
    EvalEveryExceedsRounds,
    /// FSV030: `eval_every` is zero.
    ZeroEvalEvery,
    /// FSV031: `patience = Some(0)` stops at the first evaluation.
    ZeroPatience,
    /// FSV032: `target_accuracy` outside `(0, 1]` (or NaN) can never stop
    /// the course.
    TargetAccuracyUnreachable,
    /// FSV033: learning rate is non-positive or NaN.
    NonPositiveLr,
    /// FSV034: `batch_size` is zero.
    ZeroBatchSize,
    /// FSV035: `local_steps` is zero — updates equal the broadcast model.
    ZeroLocalSteps,
    /// FSV036: `goal_achieved` with a goal of zero.
    ZeroGoal,
    /// FSV037: `time_up` with a non-positive (or NaN) budget.
    NonPositiveBudget,
    /// FSV038: the sample target exceeds the number of clients.
    SampleTargetExceedsClients,
    /// FSV039: the aggregation threshold (goal / min_feedback) exceeds the
    /// sample target, so the condition can never fire.
    ThresholdExceedsSampleTarget,
    /// FSV040: a handler emitted an event absent from its declared `emits`
    /// list (runtime conformance).
    UndeclaredEmit,
}

impl Code {
    /// The stable `FSVnnn` string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Incomplete => "FSV001",
            Code::UnreachableHandler => "FSV002",
            Code::DeadEndEvent => "FSV003",
            Code::CycleWithoutExit => "FSV004",
            Code::ServerSendUnhandled => "FSV005",
            Code::ClientSendUnhandled => "FSV006",
            Code::ConditionUnhandled => "FSV007",
            Code::RegistryOverwrite => "FSV009",
            Code::ZeroRounds => "FSV020",
            Code::EmptySampleTarget => "FSV021",
            Code::StalenessInertUnderSync => "FSV022",
            Code::OverSelectionNegative => "FSV023",
            Code::OverSelectionHuge => "FSV024",
            Code::DeltaWithoutUploadCodec => "FSV025",
            Code::AfterReceivingUnderAllReceived => "FSV026",
            Code::QuantBitsInvalid => "FSV027",
            Code::TopKRatioInvalid => "FSV028",
            Code::EvalEveryExceedsRounds => "FSV029",
            Code::ZeroEvalEvery => "FSV030",
            Code::ZeroPatience => "FSV031",
            Code::TargetAccuracyUnreachable => "FSV032",
            Code::NonPositiveLr => "FSV033",
            Code::ZeroBatchSize => "FSV034",
            Code::ZeroLocalSteps => "FSV035",
            Code::ZeroGoal => "FSV036",
            Code::NonPositiveBudget => "FSV037",
            Code::SampleTargetExceedsClients => "FSV038",
            Code::ThresholdExceedsSampleTarget => "FSV039",
            Code::UndeclaredEmit => "FSV040",
        }
    }

    /// The severity this code always carries.
    pub fn severity(self) -> Severity {
        match self {
            Code::Incomplete
            | Code::ServerSendUnhandled
            | Code::ClientSendUnhandled
            | Code::ConditionUnhandled
            | Code::ZeroRounds
            | Code::EmptySampleTarget
            | Code::OverSelectionNegative
            | Code::QuantBitsInvalid
            | Code::TopKRatioInvalid
            | Code::ZeroEvalEvery
            | Code::NonPositiveLr
            | Code::ZeroBatchSize
            | Code::ZeroLocalSteps
            | Code::ZeroGoal
            | Code::NonPositiveBudget
            | Code::SampleTargetExceedsClients
            | Code::ThresholdExceedsSampleTarget => Severity::Error,
            Code::UnreachableHandler
            | Code::CycleWithoutExit
            | Code::OverSelectionHuge
            | Code::DeltaWithoutUploadCodec
            | Code::AfterReceivingUnderAllReceived
            | Code::EvalEveryExceedsRounds
            | Code::ZeroPatience
            | Code::TargetAccuracyUnreachable
            | Code::UndeclaredEmit => Severity::Warning,
            Code::DeadEndEvent | Code::RegistryOverwrite | Code::StalenessInertUnderSync => {
                Severity::Note
            }
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// What the finding is about — a handler, an event, a config field.
    pub subject: String,
    /// Human-readable description.
    pub message: String,
    /// Suggested fix, if one is known.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Builds a diagnostic; severity comes from the code.
    pub fn new(code: Code, subject: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: code.severity(),
            subject: subject.into(),
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attaches a suggested fix.
    pub fn with_suggestion(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.code, self.subject, self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, " (help: {s})")?;
        }
        Ok(())
    }
}

/// The verifier's output: an ordered list of diagnostics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// All findings, in analysis order.
    pub diagnostics: Vec<Diagnostic>,
}

impl VerifyReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Adds many findings.
    pub fn extend(&mut self, ds: impl IntoIterator<Item = Diagnostic>) {
        self.diagnostics.extend(ds);
    }

    /// Count of findings at the given severity.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// Any Errors?
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Clean means no Errors and no Warnings (Notes are expected).
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Error) == 0 && self.count(Severity::Warning) == 0
    }

    /// The distinct codes present, for test assertions.
    pub fn codes(&self) -> Vec<Code> {
        let mut v: Vec<Code> = self.diagnostics.iter().map(|d| d.code).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// True if any finding carries the given code.
    pub fn has_code(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Renders the findings as an aligned text table (the CLI output).
    pub fn render_table(&self) -> String {
        if self.diagnostics.is_empty() {
            return "no findings — course verifies clean\n".to_string();
        }
        let mut rows: Vec<[String; 4]> = vec![[
            "CODE".into(),
            "SEVERITY".into(),
            "SUBJECT".into(),
            "MESSAGE".into(),
        ]];
        for d in &self.diagnostics {
            let mut msg = d.message.clone();
            if let Some(s) = &d.suggestion {
                msg.push_str(" — help: ");
                msg.push_str(s);
            }
            rows.push([
                d.code.as_str().into(),
                d.severity.to_string(),
                d.subject.clone(),
                msg,
            ]);
        }
        let mut widths = [0usize; 3];
        for row in &rows {
            for (i, w) in widths.iter_mut().enumerate() {
                *w = (*w).max(row[i].chars().count());
            }
        }
        let mut out = String::new();
        for row in &rows {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", row[i], width = w));
            }
            line.push_str(&row[3]);
            out.push_str(line.trim_end());
            out.push('\n');
        }
        let errors = self.count(Severity::Error);
        let warnings = self.count(Severity::Warning);
        let notes = self.count(Severity::Note);
        out.push_str(&format!(
            "{errors} error(s), {warnings} warning(s), {notes} note(s)\n"
        ));
        out
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = [
            Code::Incomplete,
            Code::UnreachableHandler,
            Code::DeadEndEvent,
            Code::CycleWithoutExit,
            Code::ServerSendUnhandled,
            Code::ClientSendUnhandled,
            Code::ConditionUnhandled,
            Code::RegistryOverwrite,
            Code::ZeroRounds,
            Code::EmptySampleTarget,
            Code::StalenessInertUnderSync,
            Code::OverSelectionNegative,
            Code::OverSelectionHuge,
            Code::DeltaWithoutUploadCodec,
            Code::AfterReceivingUnderAllReceived,
            Code::QuantBitsInvalid,
            Code::TopKRatioInvalid,
            Code::EvalEveryExceedsRounds,
            Code::ZeroEvalEvery,
            Code::ZeroPatience,
            Code::TargetAccuracyUnreachable,
            Code::NonPositiveLr,
            Code::ZeroBatchSize,
            Code::ZeroLocalSteps,
            Code::ZeroGoal,
            Code::NonPositiveBudget,
            Code::SampleTargetExceedsClients,
            Code::ThresholdExceedsSampleTarget,
            Code::UndeclaredEmit,
        ];
        let mut strs: Vec<&str> = all.iter().map(|c| c.as_str()).collect();
        strs.sort_unstable();
        let n = strs.len();
        strs.dedup();
        assert_eq!(strs.len(), n, "duplicate FSV code strings");
        for c in all {
            assert!(c.as_str().starts_with("FSV"));
            assert_eq!(c.as_str().len(), 6);
        }
    }

    #[test]
    fn report_severity_accounting() {
        let mut r = VerifyReport::new();
        assert!(r.is_clean() && !r.has_errors());
        r.push(Diagnostic::new(Code::DeadEndEvent, "e", "sink"));
        assert!(r.is_clean(), "notes keep a report clean");
        r.push(Diagnostic::new(
            Code::UnreachableHandler,
            "h",
            "unreachable",
        ));
        assert!(!r.is_clean() && !r.has_errors());
        r.push(
            Diagnostic::new(Code::ZeroRounds, "total_rounds", "is zero")
                .with_suggestion("set total_rounds >= 1"),
        );
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Error), 1);
        assert!(r.has_code(Code::ZeroRounds));
        let table = r.render_table();
        assert!(table.contains("FSV020"));
        assert!(table.contains("help: set total_rounds >= 1"));
        assert!(table.contains("1 error(s), 1 warning(s), 1 note(s)"));
    }
}
