//! Centralized evaluation of the global model against virtual time.
//!
//! The paper records "the performance of the global model with respect to
//! virtual timestamps" (§5.3.1). The [`GlobalEvaluator`] holds a template
//! model and a pooled test set; the server calls it after aggregations and
//! appends [`EvalRecord`]s to its history, which the bench harness turns into
//! Table 1 and the learning-curve figures.

use fs_tensor::loss::Target;
use fs_tensor::model::{Metrics, Model};
use fs_tensor::{ParamMap, Tensor};

/// One point on the global learning curve.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EvalRecord {
    /// Aggregation round at which the evaluation ran.
    pub round: u64,
    /// Virtual time of the evaluation, seconds.
    pub time_secs: f64,
    /// Global-model metrics on the pooled test set.
    pub metrics: Metrics,
}

impl std::fmt::Display for EvalRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "round {} @ {:.1}s: {}",
            self.round, self.time_secs, self.metrics
        )
    }
}

/// Evaluates global parameters on a fixed pooled test set, keeping a
/// round-indexed history of what it measured.
pub struct GlobalEvaluator {
    model: Box<dyn Model>,
    x: Tensor,
    y: Target,
    history: Vec<(u64, Metrics)>,
}

impl GlobalEvaluator {
    /// Creates an evaluator from a template model and a pooled test set.
    pub fn new(model: Box<dyn Model>, x: Tensor, y: Target) -> Self {
        Self {
            model,
            x,
            y,
            history: Vec::new(),
        }
    }

    /// Loads `params` into the template (missing keys keep template values,
    /// which matters when only a shared subset is federated) and evaluates.
    /// Does not touch the history; use [`GlobalEvaluator::eval_at`] for
    /// curve-building evaluations.
    pub fn eval(&mut self, params: &ParamMap) -> Metrics {
        let mut p = self.model.get_params();
        p.merge_from(params);
        self.model.set_params(&p);
        self.model.evaluate(&self.x, &self.y)
    }

    /// Evaluates `params` and records the result against `round`.
    pub fn eval_at(&mut self, round: u64, params: &ParamMap) -> Metrics {
        let metrics = self.eval(params);
        self.history.push((round, metrics));
        metrics
    }

    /// Every recorded `(round, metrics)` evaluation, in evaluation order.
    pub fn history(&self) -> &[(u64, Metrics)] {
        &self.history
    }

    /// The recorded evaluation with the highest accuracy, if any.
    pub fn best(&self) -> Option<(u64, Metrics)> {
        self.history
            .iter()
            .max_by(|a, b| a.1.accuracy.total_cmp(&b.1.accuracy))
            .copied()
    }

    /// Size of the evaluation set.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// `true` when the evaluation set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_tensor::model::logistic_regression;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn eval_applies_params() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = logistic_regression(2, 2, &mut rng);
        // inputs where class = argmax of identity map
        let x = Tensor::from_vec(vec![2, 2], vec![5.0, 0.0, 0.0, 5.0]);
        let y = Target::Classes(vec![0, 1]);
        let mut ev = GlobalEvaluator::new(Box::new(model), x, y);
        assert_eq!(ev.len(), 2);
        // identity weights solve the problem perfectly
        let mut good = ParamMap::new();
        good.insert(
            "fc.weight",
            Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]),
        );
        good.insert("fc.bias", Tensor::zeros(&[2]));
        let m = ev.eval(&good);
        assert_eq!(m.accuracy, 1.0);
        // inverted weights get everything wrong
        let mut bad = ParamMap::new();
        bad.insert(
            "fc.weight",
            Tensor::from_vec(vec![2, 2], vec![0.0, 1.0, 1.0, 0.0]),
        );
        bad.insert("fc.bias", Tensor::zeros(&[2]));
        let m = ev.eval(&bad);
        assert_eq!(m.accuracy, 0.0);
    }

    #[test]
    fn history_records_rounds_and_finds_best() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = logistic_regression(2, 2, &mut rng);
        let x = Tensor::from_vec(vec![2, 2], vec![5.0, 0.0, 0.0, 5.0]);
        let y = Target::Classes(vec![0, 1]);
        let mut ev = GlobalEvaluator::new(Box::new(model), x, y);
        let mut good = ParamMap::new();
        good.insert(
            "fc.weight",
            Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]),
        );
        good.insert("fc.bias", Tensor::zeros(&[2]));
        let mut bad = ParamMap::new();
        bad.insert(
            "fc.weight",
            Tensor::from_vec(vec![2, 2], vec![0.0, 1.0, 1.0, 0.0]),
        );
        bad.insert("fc.bias", Tensor::zeros(&[2]));
        // plain eval leaves no trace; eval_at records
        ev.eval(&bad);
        assert!(ev.history().is_empty());
        ev.eval_at(1, &bad);
        ev.eval_at(2, &good);
        ev.eval_at(3, &bad);
        assert_eq!(ev.history().len(), 3);
        let (round, best) = ev.best().unwrap();
        assert_eq!(round, 2);
        assert_eq!(best.accuracy, 1.0);
    }

    #[test]
    fn eval_record_serde_and_display() {
        let r = EvalRecord {
            round: 4,
            time_secs: 120.5,
            metrics: Metrics {
                loss: 0.5,
                accuracy: 0.75,
                n: 80,
            },
        };
        let shown = format!("{r}");
        assert!(shown.contains("round 4"), "{shown}");
        assert!(shown.contains("acc=0.7500"), "{shown}");
        let json = serde_json::to_string(&r).unwrap();
        let back: EvalRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
