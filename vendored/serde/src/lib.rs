//! Minimal in-repo stand-in for the `serde` crate.
//!
//! Serialization only, through a concrete [`Value`] tree instead of upstream
//! serde's visitor machinery: [`Serialize`] has a single `to_value` method,
//! and `#[derive(Serialize)]` (re-exported from the in-repo `serde_derive`)
//! builds a [`Value::Object`] from named struct fields. `serde_json` renders
//! the tree.

// Lets derive-generated `serde::` paths resolve inside this crate's own tests.
extern crate self as serde;

/// Re-export of the derive macro so `use serde::Serialize` brings in both the
/// trait and `#[derive(Serialize)]`, as with upstream serde.
pub use serde_derive::Serialize;

/// A serialized value tree (the stand-in for serde's data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate to round-trip `u64 > i64::MAX`).
    UInt(u64),
    /// Single-precision float, formatted with its own shortest representation.
    F32(f32),
    /// Double-precision float.
    F64(f64),
    /// String.
    String(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key–value map (field declaration order).
    Object(Vec<(String, Value)>),
}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a serialized value tree.
    fn to_value(&self) -> Value;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

impl_serialize_signed!(i8, i16, i32, i64, isize);
impl_serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F32(*self)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_serialize_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}

impl_serialize_tuple!(A: 0);
impl_serialize_tuple!(A: 0, B: 1);
impl_serialize_tuple!(A: 0, B: 1, C: 2);
impl_serialize_tuple!(A: 0, B: 1, C: 2, D: 3);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(7u32.to_value(), Value::UInt(7));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::String("hi".into()));
        assert_eq!(None::<f32>.to_value(), Value::Null);
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1u64, 2.5f64)];
        assert_eq!(
            v.to_value(),
            Value::Array(vec![Value::Array(vec![Value::UInt(1), Value::F64(2.5)])])
        );
    }

    #[test]
    fn derive_builds_object_in_field_order() {
        #[derive(Serialize)]
        struct Point {
            x: u32,
            label: String,
        }
        let p = Point { x: 7, label: "a".into() };
        assert_eq!(
            p.to_value(),
            Value::Object(vec![
                ("x".into(), Value::UInt(7)),
                ("label".into(), Value::String("a".into())),
            ])
        );
    }
}
