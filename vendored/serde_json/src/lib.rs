//! Minimal in-repo stand-in for the `serde_json` crate.
//!
//! Renders the in-repo `serde::Value` tree as JSON ([`to_string`] and
//! [`to_string_pretty`]) and parses JSON text back into it ([`from_str`],
//! typed through `serde::Deserialize`).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization or parse failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = Writer { out: String::new(), indent: None };
    w.value(&value.to_value(), 0)?;
    Ok(w.out)
}

/// Serializes to pretty JSON (two-space indent, `"key": value` spacing).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = Writer { out: String::new(), indent: Some("  ") };
    w.value(&value.to_value(), 0)?;
    Ok(w.out)
}

/// Parses JSON text into any `Deserialize` type (including `serde::Value`
/// itself for untyped inspection).
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(|e| Error(e.0))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error("unexpected end of input".into())),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            // combine UTF-16 surrogate pairs
                            let code = if (0xD800..0xDC00).contains(&hi)
                                && self.eat_literal("\\u")
                            {
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("invalid \\u{code:04x}")))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // multi-byte UTF-8: re-decode from the source slice
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = s.chars().next().expect("non-empty by construction");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error("invalid \\u escape".into()))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| Error(format!("invalid \\u{s}")))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

struct Writer {
    out: String,
    indent: Option<&'static str>,
}

impl Writer {
    fn value(&mut self, value: &Value, depth: usize) -> Result<(), Error> {
        match value {
            Value::Null => self.out.push_str("null"),
            Value::Bool(b) => self.out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => self.out.push_str(&i.to_string()),
            Value::UInt(u) => self.out.push_str(&u.to_string()),
            Value::F32(f) => self.float(f64::from(*f), &f.to_string())?,
            Value::F64(f) => self.float(*f, &f.to_string())?,
            Value::String(s) => self.string(s),
            Value::Array(items) => {
                self.delimited('[', ']', items.len(), depth, |w, idx, depth| {
                    w.value(&items[idx], depth)
                })?;
            }
            Value::Object(entries) => {
                self.delimited('{', '}', entries.len(), depth, |w, idx, depth| {
                    let (key, val) = &entries[idx];
                    w.string(key);
                    w.out.push(':');
                    if w.indent.is_some() {
                        w.out.push(' ');
                    }
                    w.value(val, depth)
                })?;
            }
        }
        Ok(())
    }

    fn delimited(
        &mut self,
        open: char,
        close: char,
        len: usize,
        depth: usize,
        mut item: impl FnMut(&mut Self, usize, usize) -> Result<(), Error>,
    ) -> Result<(), Error> {
        self.out.push(open);
        if len == 0 {
            self.out.push(close);
            return Ok(());
        }
        for idx in 0..len {
            if idx > 0 {
                self.out.push(',');
            }
            self.newline_indent(depth + 1);
            item(self, idx, depth + 1)?;
        }
        self.newline_indent(depth);
        self.out.push(close);
        Ok(())
    }

    fn newline_indent(&mut self, depth: usize) {
        if let Some(pad) = self.indent {
            self.out.push('\n');
            for _ in 0..depth {
                self.out.push_str(pad);
            }
        }
    }

    fn float(&mut self, value: f64, shortest: &str) -> Result<(), Error> {
        if !value.is_finite() {
            return Err(Error(format!("non-finite float {value} is not valid JSON")));
        }
        self.out.push_str(shortest);
        // Rust's shortest form drops the fractional part for whole floats
        // ("2"); JSON readers expect a float-typed literal, so match
        // serde_json ("2.0").
        if !shortest.contains(['.', 'e', 'E']) {
            self.out.push_str(".0");
        }
        Ok(())
    }

    fn string(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_scalars() {
        assert_eq!(to_string(&7u32).unwrap(), "7");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&1.5f32).unwrap(), "1.5");
        assert_eq!(to_string(&None::<u8>).unwrap(), "null");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn pretty_object_layout() {
        #[derive(Serialize)]
        struct S {
            x: u32,
            ys: Vec<f64>,
        }
        let s = S { x: 7, ys: vec![1.0, 2.5] };
        let json = to_string_pretty(&s).unwrap();
        assert_eq!(json, "{\n  \"x\": 7,\n  \"ys\": [\n    1.0,\n    2.5\n  ]\n}");
    }

    #[test]
    fn empty_containers_stay_inline() {
        let empty: Vec<u8> = Vec::new();
        assert_eq!(to_string_pretty(&empty).unwrap(), "[]");
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f32::INFINITY).is_err());
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(from_str::<Value>("null").unwrap(), Value::Null);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<u64>(" 42 ").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5e1").unwrap(), 25.0);
        assert_eq!(from_str::<String>("\"a\\nb\\u0041\"").unwrap(), "a\nbA");
    }

    #[test]
    fn parse_nested_containers() {
        let v: Value = from_str("{\"xs\": [1, -2.5, null], \"ok\": false}").unwrap();
        assert_eq!(
            v,
            Value::Object(vec![
                (
                    "xs".into(),
                    Value::Array(vec![Value::UInt(1), Value::F64(-2.5), Value::Null])
                ),
                ("ok".into(), Value::Bool(false)),
            ])
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn typed_roundtrip_through_text() {
        #[derive(Serialize, serde::Deserialize, Debug, PartialEq)]
        struct S {
            x: u32,
            ys: Vec<f64>,
            tag: Option<String>,
        }
        let s = S {
            x: 7,
            ys: vec![1.0, 2.5],
            tag: Some("hi".into()),
        };
        let text = to_string_pretty(&s).unwrap();
        let back: S = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }
}
