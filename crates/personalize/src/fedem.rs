//! FedEM: federated multi-task learning under a mixture of distributions.
//!
//! Every client models its local distribution as a mixture of `K` shared
//! component models with *private* mixture weights `pi`. Training alternates
//! an E-step (posterior responsibilities of the components for the local
//! data) and an M-step (responsibility-weighted gradient steps on every
//! component). All `K` components are federated — parameter names are
//! prefixed `comp<k>.` — while `pi` never leaves the client.

use fs_core::trainer::{LocalUpdate, ShareFilter, TrainConfig, Trainer};
use fs_data::ClientSplit;
use fs_tensor::loss::Target;
use fs_tensor::model::{Metrics, Model};
use fs_tensor::optim::Sgd;
use fs_tensor::optim::SgdConfig;
use fs_tensor::{ParamMap, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A mixture of `K` component models with component weights.
///
/// Implements [`Model`]: `predict` returns the log of the mixture
/// probability (so accuracy and cross-entropy work unchanged), and
/// `loss_grad` performs one batch-EM gradient computation (responsibilities
/// from the current weights, responsibility-weighted component gradients).
pub struct MixtureModel {
    components: Vec<Box<dyn Model>>,
    /// Mixture weights `pi` (kept local in FL courses).
    pub weights: Vec<f32>,
}

impl MixtureModel {
    /// Builds a mixture from component models (weights start uniform).
    pub fn new(components: Vec<Box<dyn Model>>) -> Self {
        assert!(
            !components.is_empty(),
            "mixture needs at least one component"
        );
        let k = components.len();
        Self {
            components,
            weights: vec![1.0 / k as f32; k],
        }
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    fn prefix(k: usize, name: &str) -> String {
        format!("comp{k}.{name}")
    }

    /// Duplicates the mixture, keeping the concrete type (unlike
    /// [`Model::clone_model`], which erases it behind `Box<dyn Model>`).
    pub fn clone_mixture(&self) -> MixtureModel {
        MixtureModel {
            components: self.components.iter().map(|c| c.clone_model()).collect(),
            weights: self.weights.clone(),
        }
    }

    /// Per-component mean losses on a batch (no gradients).
    pub fn component_losses(&mut self, x: &Tensor, y: &Target) -> Vec<f32> {
        self.components
            .iter_mut()
            .map(|c| c.evaluate(x, y).loss)
            .collect()
    }

    /// Posterior responsibilities `gamma_k ∝ pi_k * exp(-n * loss_k)`:
    /// the mean loss scaled back to the data log-likelihood, so more local
    /// evidence sharpens the posterior (as in the exact E-step).
    pub fn responsibilities(&mut self, x: &Tensor, y: &Target) -> Vec<f32> {
        let losses = self.component_losses(x, y);
        let n = y.len() as f32;
        let min = losses.iter().cloned().fold(f32::INFINITY, f32::min);
        let mut g: Vec<f32> = losses
            .iter()
            .zip(&self.weights)
            .map(|(&l, &w)| w.max(1e-6) * (-(l - min) * n).exp())
            .collect();
        let s: f32 = g.iter().sum();
        for v in &mut g {
            *v /= s.max(1e-12);
        }
        g
    }
}

impl Model for MixtureModel {
    fn get_params(&self) -> ParamMap {
        let mut out = ParamMap::new();
        for (k, c) in self.components.iter().enumerate() {
            for (name, t) in c.get_params().iter() {
                out.insert(Self::prefix(k, name), t.clone());
            }
        }
        out
    }

    fn set_params(&mut self, src: &ParamMap) {
        for (k, c) in self.components.iter_mut().enumerate() {
            let pre = format!("comp{k}.");
            let sub: ParamMap = src
                .iter()
                .filter(|(n, _)| n.starts_with(&pre))
                .map(|(n, t)| (n[pre.len()..].to_string(), t.clone()))
                .collect();
            if !sub.is_empty() {
                c.set_params(&sub);
            }
        }
    }

    fn predict(&mut self, x: &Tensor) -> Tensor {
        let b = x.shape()[0];
        let mut mix: Option<Tensor> = None;
        for (c, &w) in self.components.iter_mut().zip(&self.weights) {
            let logits = c.predict(x);
            let probs = fs_tensor::loss::softmax(&logits);
            match &mut mix {
                Some(m) => m.add_scaled(w, &probs),
                None => {
                    let mut m = probs;
                    m.scale(w);
                    mix = Some(m);
                }
            }
        }
        let mix = mix.expect("at least one component");
        let _ = b;
        mix.map(|p| p.max(1e-12).ln())
    }

    fn loss_grad(&mut self, x: &Tensor, y: &Target) -> (f32, ParamMap) {
        let gamma = self.responsibilities(x, y);
        let mut out = ParamMap::new();
        let mut loss = 0.0f32;
        for (k, (c, &g)) in self.components.iter_mut().zip(&gamma).enumerate() {
            let (l, grads) = c.loss_grad(x, y);
            loss += g * l;
            for (name, t) in grads.iter() {
                let mut t = t.clone();
                t.scale(g);
                out.insert(Self::prefix(k, name), t);
            }
        }
        (loss, out)
    }

    fn buffer_keys(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (k, c) in self.components.iter().enumerate() {
            for b in c.buffer_keys() {
                out.push(Self::prefix(k, &b));
            }
        }
        out
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone_mixture())
    }
}

/// The FedEM trainer: batch EM over a shared [`MixtureModel`] with private
/// mixture weights.
pub struct FedEmTrainer {
    mixture: MixtureModel,
    data: ClientSplit,
    cfg: TrainConfig,
    /// Smoothing factor when updating `pi` from new responsibilities.
    pub pi_momentum: f32,
    share: ShareFilter,
    opt: Sgd,
    rng: StdRng,
}

impl FedEmTrainer {
    /// Creates a FedEM trainer over an existing mixture.
    pub fn new(
        mixture: MixtureModel,
        data: ClientSplit,
        cfg: TrainConfig,
        share: ShareFilter,
        seed: u64,
    ) -> Self {
        let opt = Sgd::new(cfg.sgd);
        Self {
            mixture,
            data,
            cfg,
            pi_momentum: 0.5,
            share,
            opt,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The client's private mixture weights.
    pub fn pi(&self) -> &[f32] {
        &self.mixture.weights
    }
}

impl Trainer for FedEmTrainer {
    fn incorporate(&mut self, global: &ParamMap) {
        let mut p = self.mixture.get_params();
        p.merge_from(global);
        self.mixture.set_params(&p);
    }

    fn local_train(&mut self, global: &ParamMap, _round: u64) -> LocalUpdate {
        self.incorporate(global);
        // E-step on the full training split: update private pi
        if !self.data.train.is_empty() {
            let gamma = self
                .mixture
                .responsibilities(&self.data.train.x, &self.data.train.y);
            let m = self.pi_momentum;
            for (w, g) in self.mixture.weights.iter_mut().zip(&gamma) {
                *w = m * *w + (1.0 - m) * g;
            }
            let s: f32 = self.mixture.weights.iter().sum();
            for w in &mut self.mixture.weights {
                *w /= s.max(1e-12);
            }
        }
        // M-step: responsibility-weighted SGD on all components
        for _ in 0..self.cfg.local_steps {
            let b = self
                .data
                .train
                .sample_batch(self.cfg.batch_size, &mut self.rng);
            if b.is_empty() {
                break;
            }
            let (_, grads) = self.mixture.loss_grad(&b.x, &b.y);
            let mut params = self.mixture.get_params();
            self.opt.step(&mut params, &grads, None);
            self.mixture.set_params(&params);
        }
        let share = self.share.clone();
        let k = self.mixture.num_components();
        LocalUpdate {
            params: self.mixture.get_params().filter(|n| share(n)),
            n_samples: self.data.train.len() as u64,
            n_steps: self.cfg.local_steps as u64,
            // every component trains on every batch
            examples_processed: k * self.cfg.local_steps * self.cfg.batch_size,
        }
    }

    fn evaluate_val(&mut self) -> Metrics {
        if self.data.val.is_empty() {
            return Metrics::default();
        }
        self.mixture.evaluate(&self.data.val.x, &self.data.val.y)
    }

    fn evaluate_test(&mut self) -> Metrics {
        if self.data.test.is_empty() {
            return Metrics::default();
        }
        self.mixture.evaluate(&self.data.test.x, &self.data.test.y)
    }

    fn num_train_samples(&self) -> usize {
        self.data.train.len()
    }

    fn set_sgd_config(&mut self, cfg: SgdConfig) {
        self.cfg.sgd = cfg;
        self.opt.set_config(cfg);
    }

    fn try_clone(&self) -> Option<Box<dyn Trainer>> {
        Some(Box::new(Self {
            mixture: self.mixture.clone_mixture(),
            data: self.data.clone(),
            cfg: self.cfg.clone(),
            pi_momentum: self.pi_momentum,
            share: self.share.clone(),
            opt: self.opt.clone(),
            rng: self.rng.clone(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_core::trainer::share_all;
    use fs_data::synth::{twitter_like, TwitterConfig};
    use fs_tensor::model::logistic_regression;

    fn mixture(k: usize, dim: usize) -> MixtureModel {
        let mut rng = StdRng::seed_from_u64(5);
        let comps: Vec<Box<dyn Model>> = (0..k)
            .map(|_| Box::new(logistic_regression(dim, 2, &mut rng)) as Box<dyn Model>)
            .collect();
        MixtureModel::new(comps)
    }

    #[test]
    fn param_names_are_component_prefixed() {
        let m = mixture(2, 4);
        let p = m.get_params();
        assert!(p.contains("comp0.fc.weight"));
        assert!(p.contains("comp1.fc.bias"));
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn set_params_routes_by_prefix() {
        let mut m = mixture(2, 4);
        let mut p = m.get_params();
        let zeroed = p.get("comp1.fc.weight").unwrap().zeros_like();
        p.insert("comp1.fc.weight", zeroed);
        m.set_params(&p);
        let q = m.get_params();
        assert_eq!(q.get("comp1.fc.weight").unwrap().sum(), 0.0);
        assert_ne!(q.get("comp0.fc.weight").unwrap().sum(), 0.0);
    }

    #[test]
    fn responsibilities_sum_to_one_and_favour_better_component() {
        let d = twitter_like(&TwitterConfig {
            num_clients: 1,
            per_client: 30,
            ..Default::default()
        });
        let mut m = mixture(2, d.input_dim());
        // train component 0 on this client's data so it clearly wins
        let train = &d.clients[0].train;
        for _ in 0..30 {
            let (_, g) = m.components[0].loss_grad(&train.x, &train.y);
            let mut p = m.components[0].get_params();
            p.add_scaled(-0.5, &g);
            m.components[0].set_params(&p);
        }
        let gamma = m.responsibilities(&train.x, &train.y);
        assert!((gamma.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(gamma[0] > 0.8, "trained component not favoured: {gamma:?}");
    }

    #[test]
    fn trainer_adapts_pi_toward_better_component() {
        let d = twitter_like(&TwitterConfig {
            num_clients: 1,
            per_client: 40,
            ..Default::default()
        });
        let m = mixture(2, d.input_dim());
        let mut t = FedEmTrainer::new(
            m,
            d.clients[0].clone(),
            TrainConfig {
                local_steps: 6,
                batch_size: 8,
                sgd: SgdConfig::with_lr(0.5),
            },
            share_all(),
            11,
        );
        let global = t.mixture.get_params();
        for r in 0..10 {
            t.local_train(&global, r);
        }
        let pi = t.pi().to_vec();
        assert!((pi.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        // the mixture should do something useful
        let metrics = t.evaluate_test();
        assert!(metrics.n > 0);
    }

    #[test]
    fn fedem_beats_single_model_under_cluster_structure() {
        // Two client clusters with *opposite* labeling functions: a single
        // shared model cannot satisfy both (it averages to chance), while a
        // 2-component mixture assigns one component per cluster. This is the
        // regime FedEM is built for (Marfoq et al.'s mixture assumption).
        use fs_core::config::FlConfig;
        use fs_core::course::CourseBuilder;
        use fs_tensor::optim::SgdConfig;

        let mut data = twitter_like(&TwitterConfig {
            num_clients: 8,
            per_client: 40,
            words_per_text: 24,
            seed: 7,
            ..Default::default()
        });
        // flip labels for the second half of the clients (cluster B)
        for c in data.clients.iter_mut().skip(4) {
            for part in [&mut c.train, &mut c.val, &mut c.test] {
                if let fs_tensor::loss::Target::Classes(labels) = &mut part.y {
                    for l in labels.iter_mut() {
                        *l = 1 - *l;
                    }
                }
            }
        }
        let dim = data.input_dim();
        let cfg = FlConfig {
            total_rounds: 25,
            concurrency: 8,
            local_steps: 6,
            batch_size: 8,
            sgd: SgdConfig::with_lr(0.5),
            seed: 31,
            ..Default::default()
        };
        let mean_acc = |runner: &fs_core::StandaloneRunner| -> f32 {
            let accs: Vec<f32> = runner
                .server
                .state
                .client_reports
                .values()
                .map(|m| m.accuracy)
                .collect();
            accs.iter().sum::<f32>() / accs.len() as f32
        };
        // single shared model (FedAvg)
        let mut fedavg = CourseBuilder::new(
            data.clone(),
            Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng)) as Box<dyn Model>),
            cfg.clone(),
        )
        .no_central_eval()
        .build();
        fedavg.run();
        let fedavg_acc = mean_acc(&fedavg);

        // FedEM with K = 2
        let mixture_factory = move |rng: &mut StdRng| -> Box<dyn Model> {
            let comps: Vec<Box<dyn Model>> = (0..2)
                .map(|_| Box::new(logistic_regression(dim, 2, rng)) as Box<dyn Model>)
                .collect();
            Box::new(MixtureModel::new(comps))
        };
        let mut fedem = CourseBuilder::new(data, Box::new(mixture_factory), cfg)
            .no_central_eval()
            .trainer_factory(Box::new(move |i, model, split, cfg| {
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ 999);
                let comps: Vec<Box<dyn Model>> = (0..2)
                    .map(|_| Box::new(logistic_regression(dim, 2, &mut rng)) as Box<dyn Model>)
                    .collect();
                let mut mixture = MixtureModel::new(comps);
                mixture.set_params(&model.get_params());
                Box::new(FedEmTrainer::new(
                    mixture,
                    split,
                    TrainConfig {
                        local_steps: cfg.local_steps,
                        batch_size: cfg.batch_size,
                        sgd: cfg.sgd,
                    },
                    share_all(),
                    cfg.seed ^ (i as u64 + 1),
                ))
            }))
            .build();
        fedem.run();
        let fedem_acc = mean_acc(&fedem);
        assert!(
            fedem_acc > fedavg_acc + 0.15,
            "FedEM ({fedem_acc}) must clearly beat FedAvg ({fedavg_acc}) on clustered clients"
        );
    }

    #[test]
    fn mixture_predict_is_valid_distribution() {
        let d = twitter_like(&TwitterConfig {
            num_clients: 1,
            per_client: 10,
            ..Default::default()
        });
        let mut m = mixture(3, d.input_dim());
        let x = &d.clients[0].train.x;
        let logp = m.predict(x);
        for r in 0..logp.rows() {
            let s: f32 = logp.row(r).iter().map(|v| v.exp()).sum();
            assert!((s - 1.0).abs() < 1e-3, "row {r} sums to {s}");
        }
    }
}
