//! The message envelope exchanged by FL participants.

use fs_compress::CompressedBlock;
use fs_tensor::model::Metrics;
use fs_tensor::ParamMap;

/// Identifies a participant. The server is always [`SERVER_ID`] (0); clients
/// are numbered from 1.
pub type ParticipantId = u32;

/// The server's participant id.
pub const SERVER_ID: ParticipantId = 0;

/// The type of a message — receiving a message of some kind *is* the
/// message-passing event that triggers a handler (§3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MessageKind {
    /// A client asks to join the FL course.
    JoinIn,
    /// The server assigns an id to a joined client.
    IdAssignment,
    /// The server broadcasts (a part of) the global model.
    ModelParams,
    /// A client returns its model update.
    Updates,
    /// Raw gradients (some algorithms exchange gradients instead of weights).
    Gradients,
    /// The server asks clients to evaluate the current model.
    EvalRequest,
    /// A client reports evaluation metrics.
    MetricsReport,
    /// The server announces course termination.
    Finish,
    /// A reconnecting client re-identifies itself to the transport hub
    /// (the rejoin handshake; consumed by the hub, not the server workers).
    Rejoin,
    /// A user-defined message type (heterogeneous information exchange:
    /// embeddings, public keys, generators, HPO feedback, ...).
    Custom(u16),
}

impl MessageKind {
    /// Largest user-definable custom tag (the wire reserves `256 + c`).
    pub const MAX_CUSTOM: u16 = u16::MAX - 256;

    /// Stable numeric tag used by the wire codec.
    ///
    /// # Panics
    /// Panics when a `Custom` tag exceeds [`MessageKind::MAX_CUSTOM`].
    pub fn tag(self) -> u16 {
        match self {
            MessageKind::JoinIn => 0,
            MessageKind::IdAssignment => 1,
            MessageKind::ModelParams => 2,
            MessageKind::Updates => 3,
            MessageKind::Gradients => 4,
            MessageKind::EvalRequest => 5,
            MessageKind::MetricsReport => 6,
            MessageKind::Finish => 7,
            MessageKind::Rejoin => 8,
            MessageKind::Custom(c) => {
                assert!(
                    c <= Self::MAX_CUSTOM,
                    "custom message tag {c} exceeds {}",
                    Self::MAX_CUSTOM
                );
                256 + c
            }
        }
    }

    /// Stable lowercase name, matching the paper's event vocabulary. Custom
    /// kinds share one label (span/counter names must be `'static`).
    pub fn name(self) -> &'static str {
        match self {
            MessageKind::JoinIn => "join_in",
            MessageKind::IdAssignment => "id_assignment",
            MessageKind::ModelParams => "model_para",
            MessageKind::Updates => "updates",
            MessageKind::Gradients => "gradients",
            MessageKind::EvalRequest => "eval_request",
            MessageKind::MetricsReport => "metrics_report",
            MessageKind::Finish => "finish",
            MessageKind::Rejoin => "rejoin",
            MessageKind::Custom(_) => "custom",
        }
    }

    /// Inverse of [`MessageKind::tag`].
    pub fn from_tag(tag: u16) -> Option<Self> {
        Some(match tag {
            0 => MessageKind::JoinIn,
            1 => MessageKind::IdAssignment,
            2 => MessageKind::ModelParams,
            3 => MessageKind::Updates,
            4 => MessageKind::Gradients,
            5 => MessageKind::EvalRequest,
            6 => MessageKind::MetricsReport,
            7 => MessageKind::Finish,
            8 => MessageKind::Rejoin,
            t if t >= 256 => MessageKind::Custom(t - 256),
            _ => return None,
        })
    }
}

/// The content of a message.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// No content (join-in, finish, eval requests, ...).
    Empty,
    /// Model parameters stamped with the global model version they represent.
    Model {
        /// Named parameters.
        params: ParamMap,
        /// Global model version (server round counter at broadcast time).
        version: u64,
    },
    /// A client's update after local training.
    Update {
        /// Updated named parameters (or deltas, depending on the consensus).
        params: ParamMap,
        /// The global model version the client *started from* — the server
        /// derives staleness from this (§3.3.1).
        start_version: u64,
        /// Number of local training examples (FedAvg weighting).
        n_samples: u64,
        /// Number of local SGD steps actually taken (FedNova weighting).
        n_steps: u64,
    },
    /// Evaluation metrics from a client.
    Report {
        /// Metrics on the client's held-out split.
        metrics: Metrics,
    },
    /// Opaque bytes for custom protocols (encrypted frames, HPO feedback, ...).
    Bytes(Vec<u8>),
    /// A compressed model broadcast (quantized / sparsified / delta-encoded).
    CompressedModel {
        /// Encoded parameters; the receiver decompresses with `fs-compress`.
        block: CompressedBlock,
        /// Global model version, as in [`Payload::Model`].
        version: u64,
    },
    /// A compressed client update.
    CompressedUpdate {
        /// Encoded parameters (possibly a delta against `block.ref_version`).
        block: CompressedBlock,
        /// Global model version the client started from.
        start_version: u64,
        /// Number of local training examples (FedAvg weighting).
        n_samples: u64,
        /// Number of local SGD steps actually taken (FedNova weighting).
        n_steps: u64,
    },
}

/// A message in flight between participants.
#[derive(Clone, Debug, PartialEq)]
pub struct Message {
    /// Sending participant.
    pub sender: ParticipantId,
    /// Receiving participant.
    pub receiver: ParticipantId,
    /// Message type (the event it raises on receipt).
    pub kind: MessageKind,
    /// Training round the message belongs to.
    pub round: u64,
    /// Virtual timestamp (seconds) at which the message arrives.
    pub timestamp: f64,
    /// Content.
    pub payload: Payload,
}

impl Message {
    /// Creates a message with timestamp 0 (the runner restamps on send).
    pub fn new(
        sender: ParticipantId,
        receiver: ParticipantId,
        kind: MessageKind,
        round: u64,
        payload: Payload,
    ) -> Self {
        Self {
            sender,
            receiver,
            kind,
            round,
            timestamp: 0.0,
            payload,
        }
    }

    /// Exact serialized payload size in bytes (tag byte + body), as produced
    /// by the wire codec. The simulator's cost model charges this, so the
    /// virtual clock reflects what actually crosses the network — compressed
    /// payloads are charged their compressed size, not `4 × numel`.
    pub fn payload_bytes(&self) -> usize {
        crate::wire::payload_wire_len(&self.payload)
    }

    /// Exact serialized size of the whole message (header + payload).
    pub fn wire_bytes(&self) -> usize {
        crate::wire::HEADER_LEN + self.payload_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_tensor::Tensor;

    #[test]
    fn kind_tag_roundtrip() {
        let kinds = [
            MessageKind::JoinIn,
            MessageKind::IdAssignment,
            MessageKind::ModelParams,
            MessageKind::Updates,
            MessageKind::Gradients,
            MessageKind::EvalRequest,
            MessageKind::MetricsReport,
            MessageKind::Finish,
            MessageKind::Rejoin,
            MessageKind::Custom(0),
            MessageKind::Custom(999),
        ];
        for k in kinds {
            assert_eq!(MessageKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(MessageKind::from_tag(100), None);
    }

    #[test]
    fn payload_bytes_scales_with_params() {
        let mut p = ParamMap::new();
        p.insert("w", Tensor::zeros(&[100]));
        let m = Message::new(
            1,
            0,
            MessageKind::Updates,
            0,
            Payload::Update {
                params: p,
                start_version: 0,
                n_samples: 10,
                n_steps: 4,
            },
        );
        assert!(m.payload_bytes() >= 400);
        let e = Message::new(1, 0, MessageKind::JoinIn, 0, Payload::Empty);
        assert!(e.payload_bytes() < 64);
    }
}
