//! Loss functions with analytic gradients with respect to the logits.

use crate::Tensor;

/// The loss a model trains with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LossKind {
    /// Softmax + cross-entropy over class logits (classification).
    SoftmaxCrossEntropy,
    /// Mean squared error against real-valued targets (regression).
    Mse,
}

/// Training target: class indices or real values.
#[derive(Clone, Debug)]
pub enum Target {
    /// One class index per example.
    Classes(Vec<usize>),
    /// One real value per example (shape `[B]` or `[B, 1]`).
    Values(Vec<f32>),
}

impl Target {
    /// Number of examples in the target.
    pub fn len(&self) -> usize {
        match self {
            Target::Classes(c) => c.len(),
            Target::Values(v) => v.len(),
        }
    }

    /// `true` when there are no examples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Row-wise softmax of `[B, C]` logits (numerically stabilized).
#[allow(clippy::needless_range_loop)] // index loops read clearer in kernels
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().len(), 2);
    let (b, c) = (logits.rows(), logits.cols());
    let mut out = Tensor::zeros(&[b, c]);
    for r in 0..b {
        let row = logits.row(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for j in 0..c {
            let e = (row[j] - max).exp();
            *out.at_mut(r, j) = e;
            sum += e;
        }
        for j in 0..c {
            *out.at_mut(r, j) /= sum;
        }
    }
    out
}

/// Mean softmax cross-entropy loss and its gradient w.r.t. the logits.
///
/// Returns `(loss, dL/dlogits)` with the gradient already divided by the batch
/// size, so optimizers see the mean-loss gradient.
pub fn softmax_cross_entropy(logits: &Tensor, classes: &[usize]) -> (f32, Tensor) {
    let (b, c) = (logits.rows(), logits.cols());
    assert_eq!(b, classes.len(), "batch/target length mismatch");
    let probs = softmax(logits);
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    let inv_b = 1.0 / b as f32;
    for (r, &y) in classes.iter().enumerate() {
        assert!(y < c, "class index {y} out of range {c}");
        loss -= (probs.at(r, y).max(1e-12)).ln();
        *grad.at_mut(r, y) -= 1.0;
    }
    grad.scale(inv_b);
    (loss * inv_b, grad)
}

/// Mean squared error and its gradient w.r.t. the predictions.
///
/// `preds` must be `[B, 1]` or `[B]`; `values.len()` must equal `B`.
#[allow(clippy::needless_range_loop)]
pub fn mse(preds: &Tensor, values: &[f32]) -> (f32, Tensor) {
    let b = preds.shape()[0];
    assert_eq!(b, values.len(), "batch/target length mismatch");
    assert_eq!(preds.numel(), b, "mse expects one prediction per example");
    let mut loss = 0.0f32;
    let mut grad = preds.zeros_like();
    let inv_b = 1.0 / b as f32;
    for i in 0..b {
        let diff = preds.data()[i] - values[i];
        loss += diff * diff;
        grad.data_mut()[i] = 2.0 * diff * inv_b;
    }
    (loss * inv_b, grad)
}

/// Classification accuracy of `[B, C]` logits against class labels.
pub fn accuracy(logits: &Tensor, classes: &[usize]) -> f32 {
    if classes.is_empty() {
        return 0.0;
    }
    let pred = logits.argmax_rows();
    let correct = pred.iter().zip(classes).filter(|(p, y)| p == y).count();
    correct as f32 / classes.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let l = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]);
        let p = softmax(&l);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let l = Tensor::from_vec(vec![1, 2], vec![1000.0, 1001.0]);
        let p = softmax(&l);
        assert!(p.is_finite());
        assert!(p.at(0, 1) > p.at(0, 0));
    }

    #[test]
    fn ce_uniform_logits_is_log_c() {
        let l = Tensor::zeros(&[4, 10]);
        let (loss, _) = softmax_cross_entropy(&l, &[0, 1, 2, 3]);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn ce_gradient_matches_finite_difference() {
        let l = Tensor::from_vec(vec![2, 3], vec![0.3, -0.1, 0.7, 1.0, 0.0, -1.0]);
        let y = vec![2usize, 0];
        let (_, grad) = softmax_cross_entropy(&l, &y);
        let eps = 1e-3f32;
        for i in 0..l.numel() {
            let mut lp = l.clone();
            lp.data_mut()[i] += eps;
            let mut lm = l.clone();
            lm.data_mut()[i] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &y);
            let (fm, _) = softmax_cross_entropy(&lm, &y);
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - grad.data()[i]).abs() < 1e-3,
                "index {i}: fd {fd} vs analytic {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn mse_known_value_and_grad() {
        let p = Tensor::from_vec(vec![2, 1], vec![1.0, 3.0]);
        let (loss, grad) = mse(&p, &[0.0, 1.0]);
        // ((1)^2 + (2)^2)/2 = 2.5
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 2.0]);
    }

    #[test]
    fn accuracy_counts_matches() {
        let l = Tensor::from_vec(vec![3, 2], vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]);
        assert!((accuracy(&l, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&l, &[]), 0.0);
    }
}
