//! Property-based tests over the workspace's core invariants.

use fedscope::compress::{
    decode_block, decompress, encode_block, Compressor, DeltaEncode, Encoding, Identity, TopK,
    UniformQuant,
};
use fedscope::net::wire::{decode_params, encode_params};
use fedscope::privacy::bignum::BigUint;
use fedscope::privacy::secret_sharing::{reconstruct, share};
use fedscope::tensor::{ParamMap, Tensor};
use proptest::prelude::*;
use rand::SeedableRng;

fn arb_param_map() -> impl Strategy<Value = ParamMap> {
    prop::collection::btree_map(
        "[a-z]{1,8}(\\.[a-z]{1,8})?",
        prop::collection::vec(-1e6f32..1e6, 0..64),
        0..6,
    )
    .prop_map(|m| {
        m.into_iter()
            .map(|(k, v)| {
                let len = v.len();
                (k, Tensor::from_vec(vec![len], v))
            })
            .collect::<ParamMap>()
    })
}

proptest! {
    #[test]
    fn wire_codec_roundtrips_any_param_map(p in arb_param_map()) {
        let bytes = encode_params(&p);
        let q = decode_params(&bytes).expect("decode");
        prop_assert_eq!(p, q);
    }

    #[test]
    fn wire_decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_params(&bytes); // must return Err, not panic
    }

    #[test]
    fn secret_shares_reconstruct(values in prop::collection::vec(-1e4f32..1e4, 1..64), n in 1usize..8, seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let shares = share(&values, n, &mut rng);
        let rec = reconstruct(&shares);
        for (a, b) in values.iter().zip(&rec) {
            prop_assert!((a - b).abs() < 1e-2, "{} vs {}", a, b);
        }
    }

    #[test]
    fn bignum_add_sub_roundtrip(a in any::<u64>(), b in any::<u64>()) {
        let x = BigUint::from_u64(a);
        let y = BigUint::from_u64(b);
        let sum = x.add(&y);
        prop_assert_eq!(sum.sub(&y), x);
    }

    #[test]
    fn bignum_div_rem_invariant(a in any::<u128>(), b in 1u64..) {
        // build a 128-bit value from the u128
        let hi = BigUint::from_u64((a >> 64) as u64).shl(64);
        let x = hi.add(&BigUint::from_u64(a as u64));
        let m = BigUint::from_u64(b);
        let (q, r) = x.div_rem(&m);
        prop_assert!(r < m);
        prop_assert_eq!(q.mul(&m).add(&r), x);
    }

    #[test]
    fn bignum_mod_pow_matches_u128(base in 0u64..1000, exp in 0u32..16, m in 2u64..65_536) {
        let mut expect: u128 = 1;
        for _ in 0..exp {
            expect = expect * base as u128 % m as u128;
        }
        let got = BigUint::from_u64(base)
            .mod_pow(&BigUint::from_u64(exp as u64), &BigUint::from_u64(m));
        prop_assert_eq!(got.to_u64(), Some(expect as u64));
    }

    #[test]
    fn param_map_add_scaled_linear(p in arb_param_map(), alpha in -10.0f32..10.0) {
        // p + alpha*0 == p, and (p + alpha*p) == (1+alpha)*p
        let zeros = p.zeros_like();
        let mut q = p.clone();
        q.add_scaled(alpha, &zeros);
        prop_assert_eq!(&q, &p);
        let mut r = p.clone();
        r.add_scaled(alpha, &p);
        let mut expect = p.clone();
        expect.scale(1.0 + alpha);
        for (k, t) in r.iter() {
            let e = expect.get(k).unwrap();
            for (x, y) in t.data().iter().zip(e.data()) {
                prop_assert!((x - y).abs() <= 1e-3 * x.abs().max(1.0), "{} vs {}", x, y);
            }
        }
    }

    #[test]
    fn clip_norm_bounds_hold(p in arb_param_map(), max in 0.1f32..100.0) {
        let mut q = p.clone();
        q.clip_norm(max);
        prop_assert!(q.norm() <= max * 1.001 || p.norm() <= max);
    }

    #[test]
    fn softmax_is_a_distribution(rows in 1usize..6, logits in prop::collection::vec(-30.0f32..30.0, 6..36)) {
        let cols = logits.len() / rows;
        prop_assume!(cols >= 1);
        let t = Tensor::from_vec(vec![rows, cols], logits[..rows * cols].to_vec());
        let p = fedscope::tensor::loss::softmax(&t);
        for r in 0..rows {
            let s: f32 = p.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn quant_roundtrip_error_bounded_by_step(p in arb_param_map()) {
        // uniform quantization must reconstruct every value to within one
        // quantization step: |x - dec(enc(x))| <= range / (2^bits - 1)
        for bits in [4u8, 8] {
            let block = UniformQuant::new(bits).compress(&p);
            let q = decompress(&block, None).expect("decompress");
            for (name, t) in p.iter() {
                let data = t.data();
                let min = data.iter().copied().fold(f32::INFINITY, f32::min);
                let max = data.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let step = (max - min) / ((1u32 << bits) - 1) as f32;
                let slack = step.abs() * 1e-3 + 1e-6;
                let rec = q.get(name).expect("same names");
                for (a, b) in data.iter().zip(rec.data()) {
                    prop_assert!((a - b).abs() <= step + slack,
                        "bits={} {}: |{} - {}| > step {}", bits, name, a, b, step);
                }
            }
        }
    }

    #[test]
    fn topk_keeps_exactly_the_largest_magnitudes(
        values in prop::collection::vec(-1e6f32..1e6, 1..64),
        ratio in 0.05f32..1.0,
    ) {
        let numel = values.len();
        let mut p = ParamMap::new();
        p.insert("t", Tensor::from_vec(vec![numel], values.clone()));
        // fresh compressor: no residual, so compensated == input
        let block = TopK::new(ratio).compress(&p);
        let k = ((ratio * numel as f32).ceil() as usize).clamp(1, numel);
        let Encoding::Sparse { indices, values: kept } = &block.tensors[0].encoding else {
            return Err(proptest::test_runner::TestCaseError::fail("expected sparse encoding"));
        };
        prop_assert_eq!(indices.len(), k);
        // every transmitted value is the original at its index...
        for (&i, &v) in indices.iter().zip(kept) {
            prop_assert_eq!(v, values[i as usize]);
        }
        // ...and no dropped coordinate beats a kept one
        let kept_min = kept.iter().map(|v| v.abs()).fold(f32::INFINITY, f32::min);
        for (i, v) in values.iter().enumerate() {
            if !indices.contains(&(i as u32)) {
                prop_assert!(v.abs() <= kept_min,
                    "dropped |{}| at {} exceeds kept minimum {}", v, i, kept_min);
            }
        }
    }

    #[test]
    fn delta_identity_roundtrip_recovers_params(p in arb_param_map(), scale in -2.0f32..2.0) {
        // reference = scale * p: same names/shapes, different values
        let mut reference = p.clone();
        reference.scale(scale);
        let mut codec = DeltaEncode::new(Box::new(Identity));
        codec.set_reference(&reference, 5);
        let block = codec.compress(&p);
        let q = decompress(&block, Some(&reference)).expect("decompress");
        for (name, t) in p.iter() {
            let rec = q.get(name).expect("same names");
            for (a, b) in t.data().iter().zip(rec.data()) {
                // (x - r) + r is exact up to one rounding of the subtraction
                let tol = (a.abs() + scale.abs() * a.abs()) * f32::EPSILON * 4.0 + 1e-30;
                prop_assert!((a - b).abs() <= tol, "{}: {} vs {}", name, a, b);
            }
        }
    }

    #[test]
    fn compressed_block_codec_roundtrips(p in arb_param_map(), mode in 0u8..4) {
        let mut codec: Box<dyn Compressor> = match mode {
            0 => Box::new(Identity),
            1 => Box::new(UniformQuant::new(8)),
            2 => Box::new(UniformQuant::new(4)),
            _ => Box::new(TopK::new(0.3)),
        };
        let block = codec.compress(&p);
        let bytes = encode_block(&block);
        prop_assert_eq!(bytes.len(), block.encoded_len());
        let decoded = decode_block(&bytes).expect("well-formed block must decode");
        prop_assert_eq!(&decoded, &block);
    }

    #[test]
    fn compressed_block_decoder_never_panics_on_garbage(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = decode_block(&bytes); // must return Err, not panic
    }

    #[test]
    fn staleness_weight_monotone(tau1 in 0u64..100, tau2 in 0u64..100, a in 0.01f32..3.0) {
        use fedscope::core::aggregator::staleness_weight;
        let (lo, hi) = if tau1 <= tau2 { (tau1, tau2) } else { (tau2, tau1) };
        prop_assert!(staleness_weight(hi, a) <= staleness_weight(lo, a));
        prop_assert!(staleness_weight(lo, a) <= 1.0);
    }
}
