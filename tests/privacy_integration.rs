//! Integration tests: privacy plug-ins inside real FL courses.

use fedscope::core::aggregator::{Aggregator, ReceivedUpdate};
use fedscope::core::config::FlConfig;
use fedscope::core::course::CourseBuilder;
use fedscope::core::trainer::{share_all, LocalTrainer, LocalUpdate, TrainConfig, Trainer};
use fedscope::data::synth::{twitter_like, TwitterConfig};
use fedscope::privacy::dp::{gaussian_mechanism, DpConfig};
use fedscope::privacy::paillier::{decode_f32, encode_f32, keygen};
use fedscope::privacy::secret_sharing::secure_aggregate;
use fedscope::tensor::model::{logistic_regression, Metrics};
use fedscope::tensor::optim::SgdConfig;
use fedscope::tensor::ParamMap;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A DP-noising trainer (Figure 6's behavior plug-in).
struct DpTrainer {
    inner: LocalTrainer,
    dp: DpConfig,
    rng: StdRng,
}

impl Trainer for DpTrainer {
    fn incorporate(&mut self, global: &ParamMap) {
        self.inner.incorporate(global);
    }
    fn local_train(&mut self, global: &ParamMap, round: u64) -> LocalUpdate {
        let mut update = self.inner.local_train(global, round);
        let mut delta = update
            .params
            .sub(&global.filter(|k| update.params.contains(k)));
        gaussian_mechanism(&mut delta, &self.dp, &mut self.rng);
        let mut noisy = global.filter(|k| update.params.contains(k));
        noisy.add_scaled(1.0, &delta);
        update.params = noisy;
        update
    }
    fn evaluate_val(&mut self) -> Metrics {
        self.inner.evaluate_val()
    }
    fn evaluate_test(&mut self) -> Metrics {
        self.inner.evaluate_test()
    }
    fn num_train_samples(&self) -> usize {
        self.inner.num_train_samples()
    }
}

#[test]
fn dp_course_still_learns_with_mild_noise() {
    let data = twitter_like(&TwitterConfig {
        num_clients: 20,
        per_client: 20,
        ..Default::default()
    });
    let dim = data.input_dim();
    let cfg = FlConfig {
        total_rounds: 25,
        concurrency: 12,
        local_steps: 6,
        batch_size: 4,
        sgd: SgdConfig::with_lr(0.4),
        seed: 1,
        ..Default::default()
    };
    let mut runner = CourseBuilder::new(
        data,
        Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
        cfg,
    )
    .trainer_factory(Box::new(|i, model, split, cfg| {
        let inner = LocalTrainer::new(
            model,
            split,
            TrainConfig {
                local_steps: cfg.local_steps,
                batch_size: cfg.batch_size,
                sgd: cfg.sgd,
            },
            share_all(),
            cfg.seed ^ (i as u64 + 1),
        );
        Box::new(DpTrainer {
            inner,
            dp: DpConfig {
                clip_norm: 1.0,
                sigma: 0.02,
            },
            rng: StdRng::seed_from_u64(cfg.seed ^ (77 + i as u64)),
        })
    }))
    .build();
    let report = runner.run();
    let best = report
        .history
        .iter()
        .map(|r| r.metrics.accuracy)
        .fold(0.0f32, f32::max);
    assert!(
        best > 0.62,
        "DP with mild noise must still learn: best {best}"
    );
}

/// A secure-aggregation aggregator: reconstructs only the share-sum, exactly
/// like a real secure-aggregation server, then normalizes by total weight.
struct SecureAggregator {
    rng: StdRng,
}

impl Aggregator for SecureAggregator {
    fn aggregate(&mut self, global: &ParamMap, updates: &[ReceivedUpdate]) -> ParamMap {
        if updates.is_empty() {
            return global.clone();
        }
        let params: Vec<ParamMap> = updates
            .iter()
            .map(|u| u.params.filter(|k| global.contains(k)))
            .collect();
        let mut sum = secure_aggregate(&params, &mut self.rng);
        sum.scale(1.0 / updates.len() as f32);
        sum
    }
    fn name(&self) -> &'static str {
        "secure_aggregation"
    }
}

#[test]
fn secure_aggregation_course_matches_plain_fedavg_closely() {
    let mk = |secure: bool| -> f32 {
        // seed 21 draws a topic pair separable enough for the 0.55 learning
        // floor below; the default seed is borderline under the in-repo RNG
        let data = twitter_like(&TwitterConfig {
            num_clients: 10,
            per_client: 20,
            seed: 21,
            ..Default::default()
        });
        let dim = data.input_dim();
        let cfg = FlConfig {
            total_rounds: 20,
            concurrency: 10,
            local_steps: 4,
            batch_size: 4,
            sgd: SgdConfig::with_lr(0.4),
            seed: 2,
            ..Default::default()
        };
        let mut builder = CourseBuilder::new(
            data,
            Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
            cfg,
        );
        if secure {
            builder = builder.aggregator(Box::new(SecureAggregator {
                rng: StdRng::seed_from_u64(3),
            }));
        }
        let mut runner = builder.build();
        let report = runner.run();
        report.history.last().unwrap().metrics.accuracy
    };
    let plain = mk(false);
    let secure = mk(true);
    // secure aggregation computes an unweighted mean under fixed-point
    // encoding; the result must track plain FedAvg closely
    assert!(
        (plain - secure).abs() < 0.1,
        "secure {secure} vs plain {plain} diverged"
    );
    assert!(
        secure > 0.55,
        "secure aggregation course failed to learn: {secure}"
    );
}

#[test]
fn paillier_aggregates_a_model_update_coordinatewise() {
    // one coordinate of three client updates, summed under encryption
    let mut rng = StdRng::seed_from_u64(4);
    let (pk, sk) = keygen(128, &mut rng);
    let updates = [0.125f32, -0.5, 0.75];
    let mut acc = pk.encrypt(&encode_f32(0.0, &pk.n), &mut rng);
    for &u in &updates {
        acc = pk.add(&acc, &pk.encrypt(&encode_f32(u, &pk.n), &mut rng));
    }
    let sum = decode_f32(&sk.decrypt(&acc), &pk.n);
    let expect: f32 = updates.iter().sum();
    assert!((sum - expect).abs() < 1e-3, "{sum} vs {expect}");
}
