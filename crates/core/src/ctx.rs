//! The handler execution context.
//!
//! A handler cannot touch the network or the clock directly; it records
//! intents in the [`Ctx`] — messages to send (with an attached local compute
//! delay), timers to arm, condition events to raise — and the runner realizes
//! them. This keeps worker code identical between the virtual-time standalone
//! runner and the threaded distributed runner.

use crate::event::{Condition, Event};
use fs_monitor::MonitorHandle;
use fs_net::{Message, MessageKind, ParticipantId, Payload, SERVER_ID};
use fs_sim::VirtualTime;
use std::collections::VecDeque;

/// An outgoing message plus the local compute *work* spent producing it.
///
/// Work is measured in training examples processed; the standalone runner
/// converts it to seconds through the sender's device profile and stamps the
/// arrival timestamp as `now + compute + communication` per the paper's
/// virtual-time protocol. The distributed runner ignores it.
#[derive(Clone, Debug)]
pub struct Outgoing {
    /// The message to deliver.
    pub msg: Message,
    /// Local compute work (training examples processed) preceding the send.
    /// Zero for instantaneous replies; the server's work is always zero (the
    /// paper assumes server time is negligible).
    pub compute_work: f64,
}

/// A timer to be delivered back to the arming participant as a condition
/// event after `delay_secs` of virtual time.
#[derive(Clone, Copy, Debug)]
pub struct Timer {
    /// Delay from now, in virtual seconds.
    pub delay_secs: f64,
    /// The condition event the timer raises.
    pub condition: Condition,
    /// The round the timer belongs to; stale timers are ignored by handlers.
    pub round: u64,
}

/// A server-side broadcast recorded at cohort granularity: one payload, many
/// targets, scheduled by a batching runner as a single heap entry instead of
/// per-client owned messages.
#[derive(Clone, Debug)]
pub struct BatchedBroadcast {
    /// `outbox.len()` at record time: the broadcast happened after this many
    /// individual sends, so a runner replaying the dispatch interleaves it at
    /// exactly this point to preserve the global message order.
    pub anchor: usize,
    /// Message kind shared by every copy.
    pub kind: MessageKind,
    /// Round stamp shared by every copy.
    pub round: u64,
    /// Payload shared by every copy (cloned per target on delivery).
    pub payload: Payload,
    /// Recipients, in broadcast order.
    pub targets: Vec<ParticipantId>,
}

/// Mutable per-dispatch context handed to every handler.
pub struct Ctx {
    /// Current virtual time (arrival time of the triggering message).
    pub now: VirtualTime,
    /// Messages queued for sending.
    pub outbox: Vec<Outgoing>,
    /// Timers armed during this dispatch.
    pub timers: Vec<Timer>,
    /// Condition events raised during this dispatch, processed FIFO
    /// immediately after the current handler returns.
    pub raised: VecDeque<Condition>,
    /// Every event emitted through this context, in order — sends, raises,
    /// and timers alike. [`crate::registry::Registry::dispatch`] diffs this
    /// log against the handler's declared `emits` to catch undeclared
    /// emissions (`FSV040`).
    pub emitted: Vec<Event>,
    /// Set when the participant considers the course finished.
    pub finished: bool,
    /// Observability sink. Null (free) unless the runner attached a monitor;
    /// handlers record domain counters and round metrics through it.
    pub monitor: MonitorHandle,
    /// When set (by a cohort-batching runner), [`Ctx::broadcast`] records a
    /// single [`BatchedBroadcast`] instead of expanding into per-target
    /// outbox entries. Defaults to `false`: legacy runners see the exact
    /// per-client sends they always did.
    pub batch_broadcasts: bool,
    /// Broadcasts recorded while `batch_broadcasts` was set, in order.
    pub broadcasts: Vec<BatchedBroadcast>,
}

impl Ctx {
    /// Creates a context at the given virtual time with a null monitor.
    pub fn at(now: VirtualTime) -> Self {
        Self {
            now,
            outbox: Vec::new(),
            timers: Vec::new(),
            raised: VecDeque::new(),
            emitted: Vec::new(),
            finished: false,
            monitor: MonitorHandle::null(),
            batch_broadcasts: false,
            broadcasts: Vec::new(),
        }
    }

    /// Creates a context carrying the runner's monitor handle.
    pub fn with_monitor(now: VirtualTime, monitor: MonitorHandle) -> Self {
        Self {
            monitor,
            ..Self::at(now)
        }
    }

    /// Queues a message with zero local compute work.
    pub fn send(&mut self, msg: Message) {
        self.emitted.push(Event::Message(msg.kind));
        self.outbox.push(Outgoing {
            msg,
            compute_work: 0.0,
        });
    }

    /// Queues a message preceded by `compute_work` examples of local
    /// computation (e.g. local training).
    pub fn send_after_compute(&mut self, msg: Message, compute_work: f64) {
        self.emitted.push(Event::Message(msg.kind));
        self.outbox.push(Outgoing { msg, compute_work });
    }

    /// Raises a condition event, to be handled right after the current
    /// handler returns.
    pub fn raise(&mut self, condition: Condition) {
        self.emitted.push(Event::Condition(condition));
        self.raised.push_back(condition);
    }

    /// Broadcasts `payload` from the server to every client in `targets`.
    ///
    /// Under a legacy runner this expands into one [`Ctx::send`] per target —
    /// byte-for-byte what the pre-batching server did. Under a batching
    /// runner (`batch_broadcasts` set) it records a single
    /// [`BatchedBroadcast`] and one emitted event; registry conformance diffs
    /// emissions by membership, not count, so the two paths are
    /// conformance-equivalent. Empty target lists are a no-op either way.
    pub fn broadcast(
        &mut self,
        kind: MessageKind,
        round: u64,
        payload: Payload,
        targets: &[ParticipantId],
    ) {
        if targets.is_empty() {
            return;
        }
        if self.batch_broadcasts {
            self.emitted.push(Event::Message(kind));
            self.broadcasts.push(BatchedBroadcast {
                anchor: self.outbox.len(),
                kind,
                round,
                payload,
                targets: targets.to_vec(),
            });
        } else {
            self.outbox.reserve(targets.len());
            for &c in targets {
                self.send(Message::new(SERVER_ID, c, kind, round, payload.clone()));
            }
        }
    }

    /// Arms a timer that will raise `condition` after `delay_secs`.
    pub fn arm_timer(&mut self, delay_secs: f64, condition: Condition, round: u64) {
        self.emitted.push(Event::Condition(condition));
        self.timers.push(Timer {
            delay_secs,
            condition,
            round,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_net::{MessageKind, Payload};

    #[test]
    fn intents_accumulate() {
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        ctx.send(Message::new(0, 1, MessageKind::Finish, 3, Payload::Empty));
        ctx.send_after_compute(
            Message::new(1, 0, MessageKind::Updates, 3, Payload::Empty),
            2.5,
        );
        ctx.raise(Condition::GoalAchieved);
        ctx.arm_timer(10.0, Condition::TimeUp, 3);
        assert_eq!(ctx.outbox.len(), 2);
        assert_eq!(ctx.outbox[1].compute_work, 2.5);
        assert_eq!(ctx.raised.len(), 1);
        assert_eq!(ctx.timers.len(), 1);
        assert!(!ctx.finished);
    }

    #[test]
    fn broadcast_expands_per_target_by_default() {
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        ctx.broadcast(MessageKind::ModelParams, 2, Payload::Empty, &[1, 2, 3]);
        assert_eq!(ctx.outbox.len(), 3);
        assert!(ctx.broadcasts.is_empty());
        assert_eq!(ctx.emitted.len(), 3);
        for (i, out) in ctx.outbox.iter().enumerate() {
            assert_eq!(out.msg.receiver, (i + 1) as u32);
            assert_eq!(out.msg.kind, MessageKind::ModelParams);
            assert_eq!(out.msg.round, 2);
        }
    }

    #[test]
    fn broadcast_batches_when_enabled() {
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        ctx.batch_broadcasts = true;
        ctx.send(Message::new(
            0,
            9,
            MessageKind::IdAssignment,
            0,
            Payload::Empty,
        ));
        ctx.broadcast(MessageKind::ModelParams, 2, Payload::Empty, &[1, 2, 3]);
        assert_eq!(ctx.outbox.len(), 1);
        assert_eq!(ctx.broadcasts.len(), 1);
        let b = &ctx.broadcasts[0];
        assert_eq!(b.anchor, 1);
        assert_eq!(b.targets, vec![1, 2, 3]);
        // One emitted event per batch: conformance diffs by membership.
        assert_eq!(ctx.emitted.len(), 2);
    }

    #[test]
    fn broadcast_to_nobody_is_a_no_op() {
        let mut ctx = Ctx::at(VirtualTime::ZERO);
        ctx.broadcast(MessageKind::Finish, 1, Payload::Empty, &[]);
        ctx.batch_broadcasts = true;
        ctx.broadcast(MessageKind::Finish, 1, Payload::Empty, &[]);
        assert!(ctx.outbox.is_empty());
        assert!(ctx.broadcasts.is_empty());
        assert!(ctx.emitted.is_empty());
    }
}
