//! Config lints over a backend-neutral projection of `FlConfig`.
//!
//! `fs-verify` sits *below* `fs-core` in the dependency graph, so it cannot
//! name `FlConfig` directly. Instead the engine lowers its config into
//! [`ConfigFacts`] — the handful of primitives the lints need — via
//! `FlConfig::facts()`. Keeping the lint input this small also makes the
//! lints trivially testable without building a course.

use crate::diag::{Code, Diagnostic};

/// The aggregation rule, reduced to what the lints need.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RuleFacts {
    /// Wait for every sampled client.
    AllReceived,
    /// Aggregate once `goal` usable updates arrive.
    GoalAchieved {
        /// The update-count trigger.
        goal: usize,
    },
    /// Aggregate when the round budget runs out.
    TimeUp {
        /// Per-round virtual-time budget, seconds.
        budget_secs: f64,
        /// Minimum usable updates before remedial measures.
        min_feedback: usize,
    },
}

/// One direction's codec, reduced to what the lints need.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CodecFacts {
    /// Dense passthrough.
    Identity,
    /// Uniform quantization at `bits` per value.
    Quantize {
        /// Quantization width.
        bits: u8,
    },
    /// Top-k sparsification keeping `ratio` of entries.
    TopK {
        /// Keep fraction, expected in `(0, 1]`.
        ratio: f32,
    },
}

/// Backend-neutral projection of an FL course configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfigFacts {
    /// Maximum number of aggregation rounds.
    pub total_rounds: u64,
    /// Target number of concurrently training clients.
    pub concurrency: usize,
    /// Clients sampled per refill (concurrency × (1 + over_selection)).
    pub sample_target: usize,
    /// Population size, when the course is already assembled.
    pub num_clients: Option<usize>,
    /// Aggregation trigger.
    pub rule: RuleFacts,
    /// Whether broadcast happens after each *receive* (FedBuff style).
    pub after_receiving_broadcast: bool,
    /// Maximum tolerated staleness.
    pub staleness_tolerance: u64,
    /// Staleness discount exponent.
    pub staleness_discount: f32,
    /// Extra sampled fraction beyond concurrency.
    pub over_selection: f32,
    /// Evaluate every this many rounds.
    pub eval_every: u64,
    /// Early-stop accuracy target.
    pub target_accuracy: Option<f32>,
    /// Early-stop patience, in evaluations.
    pub patience: Option<u64>,
    /// Local steps per round.
    pub local_steps: usize,
    /// Local minibatch size.
    pub batch_size: usize,
    /// Local learning rate.
    pub lr: f32,
    /// Upload codec, if compression is on.
    pub upload: Option<CodecFacts>,
    /// Whether uploads are delta-encoded against the broadcast model.
    pub upload_delta: bool,
    /// Download codec, if compression is on.
    pub download: Option<CodecFacts>,
}

impl Default for ConfigFacts {
    /// Mirrors `FlConfig::default()`.
    fn default() -> Self {
        Self {
            total_rounds: 50,
            concurrency: 10,
            sample_target: 10,
            num_clients: None,
            rule: RuleFacts::AllReceived,
            after_receiving_broadcast: false,
            staleness_tolerance: 20,
            staleness_discount: 0.5,
            over_selection: 0.0,
            eval_every: 1,
            target_accuracy: None,
            patience: None,
            local_steps: 4,
            batch_size: 20,
            lr: 0.1,
            upload: None,
            upload_delta: false,
            download: None,
        }
    }
}

fn lint_codec(direction: &str, codec: CodecFacts, out: &mut Vec<Diagnostic>) {
    match codec {
        CodecFacts::Identity => {}
        CodecFacts::Quantize { bits } => {
            if bits != 4 && bits != 8 {
                out.push(
                    Diagnostic::new(
                        Code::QuantBitsInvalid,
                        format!("compression.{direction}"),
                        format!("uniform quantization supports 4 or 8 bits, got {bits}"),
                    )
                    .with_suggestion("use UniformQuant { bits: 8 } or { bits: 4 }"),
                );
            }
        }
        CodecFacts::TopK { ratio } => {
            if !(ratio > 0.0 && ratio <= 1.0) {
                out.push(
                    Diagnostic::new(
                        Code::TopKRatioInvalid,
                        format!("compression.{direction}"),
                        format!("top-k keep ratio must lie in (0, 1], got {ratio}"),
                    )
                    .with_suggestion("a typical sparsification ratio is 0.01–0.2"),
                );
            }
        }
    }
}

/// Runs every config lint, returning the findings in field order.
pub fn lint_config(facts: &ConfigFacts) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    if facts.total_rounds == 0 {
        out.push(
            Diagnostic::new(
                Code::ZeroRounds,
                "total_rounds",
                "zero rounds: the course terminates before any aggregation",
            )
            .with_suggestion("set total_rounds >= 1"),
        );
    }

    if facts.concurrency == 0 || facts.sample_target == 0 {
        out.push(
            Diagnostic::new(
                Code::EmptySampleTarget,
                "concurrency",
                format!(
                    "the sampler target is empty (concurrency = {}, sample_target = {}): \
                     no client is ever asked to train",
                    facts.concurrency, facts.sample_target
                ),
            )
            .with_suggestion("set concurrency >= 1"),
        );
    }

    if matches!(facts.rule, RuleFacts::AllReceived)
        && (facts.staleness_tolerance > 0 || facts.staleness_discount != 0.0)
    {
        out.push(Diagnostic::new(
            Code::StalenessInertUnderSync,
            "staleness_tolerance",
            "staleness settings have no effect under the synchronous all_received rule \
             (no update can be stale when every round waits for all sampled clients)",
        ));
    }

    if facts.over_selection.is_nan() || facts.over_selection < 0.0 {
        out.push(
            Diagnostic::new(
                Code::OverSelectionNegative,
                "over_selection",
                format!(
                    "over_selection must be a non-negative fraction, got {}",
                    facts.over_selection
                ),
            )
            .with_suggestion("the paper's Sync-OS uses 0.3"),
        );
    } else if facts.over_selection >= 1.0 {
        out.push(
            Diagnostic::new(
                Code::OverSelectionHuge,
                "over_selection",
                format!(
                    "over_selection = {} looks like a multiplicative factor; it is the \
                     *extra* fraction sampled beyond concurrency",
                    facts.over_selection
                ),
            )
            .with_suggestion("for 30% extra clients use 0.3, not 1.3"),
        );
    }

    if facts.upload_delta && facts.upload.is_none() {
        out.push(
            Diagnostic::new(
                Code::DeltaWithoutUploadCodec,
                "compression.upload_delta",
                "upload_delta is set but no upload codec is configured, so delta \
                 encoding never runs",
            )
            .with_suggestion("set compression.upload (e.g. UniformQuant { bits: 8 })"),
        );
    }

    if facts.after_receiving_broadcast && matches!(facts.rule, RuleFacts::AllReceived) {
        out.push(
            Diagnostic::new(
                Code::AfterReceivingUnderAllReceived,
                "broadcast",
                "after_receiving broadcast under the all_received rule keeps adding \
                 newly sampled clients to the set the rule waits for; the round may \
                 never close",
            )
            .with_suggestion("use after_aggregating, or switch to goal_achieved/time_up"),
        );
    }

    if let Some(codec) = facts.upload {
        lint_codec("upload", codec, &mut out);
    }
    if let Some(codec) = facts.download {
        lint_codec("download", codec, &mut out);
    }

    if facts.eval_every == 0 {
        out.push(
            Diagnostic::new(
                Code::ZeroEvalEvery,
                "eval_every",
                "eval_every is zero: the evaluation cadence is undefined",
            )
            .with_suggestion("set eval_every >= 1"),
        );
    } else if facts.total_rounds > 0 && facts.eval_every > facts.total_rounds {
        out.push(
            Diagnostic::new(
                Code::EvalEveryExceedsRounds,
                "eval_every",
                format!(
                    "eval_every ({}) exceeds total_rounds ({}): the model is never \
                     evaluated during the course",
                    facts.eval_every, facts.total_rounds
                ),
            )
            .with_suggestion("set eval_every <= total_rounds"),
        );
    }

    if facts.patience == Some(0) {
        out.push(
            Diagnostic::new(
                Code::ZeroPatience,
                "patience",
                "patience of zero early-stops at the very first evaluation",
            )
            .with_suggestion("use patience >= 1, or None to disable early stopping"),
        );
    }

    if let Some(acc) = facts.target_accuracy {
        if !(acc > 0.0 && acc <= 1.0) {
            out.push(
                Diagnostic::new(
                    Code::TargetAccuracyUnreachable,
                    "target_accuracy",
                    format!("target accuracy {acc} lies outside (0, 1] and can never be reached"),
                )
                .with_suggestion("accuracy is a fraction, e.g. 0.9 for 90%"),
            );
        }
    }

    if facts.lr.is_nan() || facts.lr <= 0.0 {
        out.push(
            Diagnostic::new(
                Code::NonPositiveLr,
                "sgd.lr",
                format!("learning rate must be positive, got {}", facts.lr),
            )
            .with_suggestion("a typical range is 0.01–1.0 for the in-repo models"),
        );
    }

    if facts.batch_size == 0 {
        out.push(
            Diagnostic::new(Code::ZeroBatchSize, "batch_size", "batch size of zero")
                .with_suggestion("set batch_size >= 1"),
        );
    }

    if facts.local_steps == 0 {
        out.push(
            Diagnostic::new(
                Code::ZeroLocalSteps,
                "local_steps",
                "zero local steps: every client returns the broadcast model unchanged",
            )
            .with_suggestion("set local_steps >= 1"),
        );
    }

    match facts.rule {
        RuleFacts::AllReceived => {}
        RuleFacts::GoalAchieved { goal } => {
            if goal == 0 {
                out.push(
                    Diagnostic::new(
                        Code::ZeroGoal,
                        "rule.goal",
                        "goal_achieved with a goal of zero fires before any update arrives",
                    )
                    .with_suggestion("set goal >= 1"),
                );
            } else if goal > facts.sample_target {
                out.push(
                    Diagnostic::new(
                        Code::ThresholdExceedsSampleTarget,
                        "rule.goal",
                        format!(
                            "goal ({goal}) exceeds the sample target ({}): with \
                             after_aggregating broadcast the condition can never fire",
                            facts.sample_target
                        ),
                    )
                    .with_suggestion("keep goal <= concurrency × (1 + over_selection)"),
                );
            }
        }
        RuleFacts::TimeUp {
            budget_secs,
            min_feedback,
        } => {
            if budget_secs.is_nan() || budget_secs <= 0.0 {
                out.push(
                    Diagnostic::new(
                        Code::NonPositiveBudget,
                        "rule.budget_secs",
                        format!("time_up budget must be positive, got {budget_secs}"),
                    )
                    .with_suggestion("give each round a positive virtual-time budget"),
                );
            }
            if min_feedback > facts.sample_target {
                out.push(
                    Diagnostic::new(
                        Code::ThresholdExceedsSampleTarget,
                        "rule.min_feedback",
                        format!(
                            "min_feedback ({min_feedback}) exceeds the sample target ({}): \
                             every round triggers the remedial measure",
                            facts.sample_target
                        ),
                    )
                    .with_suggestion("keep min_feedback <= the number of sampled clients"),
                );
            }
        }
    }

    if let Some(n) = facts.num_clients {
        if facts.sample_target > n {
            out.push(
                Diagnostic::new(
                    Code::SampleTargetExceedsClients,
                    "concurrency",
                    format!(
                        "the sample target ({}) exceeds the client population ({n})",
                        facts.sample_target
                    ),
                )
                .with_suggestion("lower concurrency/over_selection or add clients"),
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    #[test]
    fn default_facts_lint_to_notes_only() {
        let ds = lint_config(&ConfigFacts::default());
        // default FlConfig keeps staleness settings under all_received → Note
        assert!(ds.iter().all(|d| d.severity == Severity::Note), "{ds:?}");
        assert!(ds.iter().any(|d| d.code == Code::StalenessInertUnderSync));
    }

    #[test]
    fn zero_rounds_and_empty_target_are_errors() {
        let facts = ConfigFacts {
            total_rounds: 0,
            concurrency: 0,
            sample_target: 0,
            ..Default::default()
        };
        let ds = lint_config(&facts);
        assert!(ds.iter().any(|d| d.code == Code::ZeroRounds));
        assert!(ds.iter().any(|d| d.code == Code::EmptySampleTarget));
    }

    #[test]
    fn codec_range_lints() {
        let facts = ConfigFacts {
            upload: Some(CodecFacts::Quantize { bits: 3 }),
            download: Some(CodecFacts::TopK { ratio: 1.5 }),
            ..Default::default()
        };
        let ds = lint_config(&facts);
        assert!(ds.iter().any(|d| d.code == Code::QuantBitsInvalid));
        assert!(ds.iter().any(|d| d.code == Code::TopKRatioInvalid));
        let nan = ConfigFacts {
            upload: Some(CodecFacts::TopK { ratio: f32::NAN }),
            ..Default::default()
        };
        assert!(lint_config(&nan)
            .iter()
            .any(|d| d.code == Code::TopKRatioInvalid));
    }

    #[test]
    fn threshold_lints_respect_sample_target() {
        let facts = ConfigFacts {
            rule: RuleFacts::GoalAchieved { goal: 40 },
            concurrency: 10,
            sample_target: 10,
            ..Default::default()
        };
        assert!(lint_config(&facts)
            .iter()
            .any(|d| d.code == Code::ThresholdExceedsSampleTarget));
        let facts = ConfigFacts {
            rule: RuleFacts::TimeUp {
                budget_secs: -1.0,
                min_feedback: 99,
            },
            ..Default::default()
        };
        let ds = lint_config(&facts);
        assert!(ds.iter().any(|d| d.code == Code::NonPositiveBudget));
        assert!(ds
            .iter()
            .any(|d| d.code == Code::ThresholdExceedsSampleTarget));
    }

    #[test]
    fn population_bound() {
        let facts = ConfigFacts {
            num_clients: Some(8),
            concurrency: 10,
            sample_target: 13,
            ..Default::default()
        };
        assert!(lint_config(&facts)
            .iter()
            .any(|d| d.code == Code::SampleTargetExceedsClients));
    }
}
