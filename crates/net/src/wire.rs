//! The neutral wire format — the paper's *message translation* (§3.5).
//!
//! Participants agree only on this byte format ("an array of pairs of
//! parameters and values"), never on computation graphs. Encoding turns
//! backend-native parameters into the neutral format; decoding parses it into
//! the receiver's own representation. The format follows the principle of
//! information minimization: it carries names, shapes, and values — nothing
//! about architecture, training algorithm, or personalization operators.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! params  := u32 count, entry*
//! entry   := u16 name_len, name bytes (UTF-8), u8 ndim, u32 dim*, f32 value*
//! message := u32 sender, u32 receiver, u16 kind_tag, u64 round, f64 timestamp,
//!            u8 payload_tag, payload_body
//! ```

use crate::message::{Message, MessageKind, Payload};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use fs_compress::{put_block, take_block, BlockCodecError};
use fs_tensor::model::Metrics;
use fs_tensor::{ParamMap, Tensor};
use std::fmt;

/// Serialized size of the fixed message header
/// (sender + receiver + kind + round + timestamp).
pub const HEADER_LEN: usize = 4 + 4 + 2 + 8 + 8;

/// Errors raised while decoding wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the structure was complete.
    Truncated,
    /// A parameter name was not valid UTF-8.
    BadName,
    /// An unknown message-kind or payload tag was encountered.
    BadTag(u16),
    /// A declared shape does not match the number of values present.
    BadShape,
    /// A delta-encoded payload referenced a model version the receiver does
    /// not hold.
    MissingReference(u64),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "wire data truncated"),
            CodecError::BadName => write!(f, "parameter name is not valid UTF-8"),
            CodecError::BadTag(t) => write!(f, "unknown wire tag {t}"),
            CodecError::BadShape => write!(f, "shape/value-count mismatch"),
            CodecError::MissingReference(v) => {
                write!(f, "delta payload references unavailable model version {v}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

impl From<BlockCodecError> for CodecError {
    fn from(e: BlockCodecError) -> Self {
        match e {
            BlockCodecError::Truncated => CodecError::Truncated,
            BlockCodecError::BadName => CodecError::BadName,
            BlockCodecError::BadTag(t) => CodecError::BadTag(t as u16),
            BlockCodecError::BadShape => CodecError::BadShape,
        }
    }
}

/// Exact serialized size of a [`ParamMap`] in the neutral format.
pub fn params_wire_len(params: &ParamMap) -> usize {
    4 + params
        .iter()
        .map(|(name, t)| 2 + name.len() + 1 + 4 * t.shape().len() + 4 * t.numel())
        .sum::<usize>()
}

/// Exact serialized size of a payload (tag byte + body), matching
/// [`encode_message`] byte for byte.
pub fn payload_wire_len(payload: &Payload) -> usize {
    1 + match payload {
        Payload::Empty => 0,
        Payload::Model { params, .. } => 8 + params_wire_len(params),
        Payload::Update { params, .. } => 24 + params_wire_len(params),
        Payload::Report { .. } => 16,
        Payload::Bytes(b) => 4 + b.len(),
        Payload::CompressedModel { block, .. } => 8 + block.encoded_len(),
        Payload::CompressedUpdate { block, .. } => 24 + block.encoded_len(),
    }
}

fn need(buf: &impl Buf, n: usize) -> Result<(), CodecError> {
    if buf.remaining() < n {
        Err(CodecError::Truncated)
    } else {
        Ok(())
    }
}

/// Encodes a [`ParamMap`] into the neutral format.
pub fn encode_params(params: &ParamMap) -> Bytes {
    let mut buf = BytesMut::with_capacity(params.numel() * 4 + params.len() * 32 + 4);
    put_params(&mut buf, params);
    buf.freeze()
}

fn put_params(buf: &mut BytesMut, params: &ParamMap) {
    buf.put_u32_le(params.len() as u32);
    for (name, t) in params.iter() {
        buf.put_u16_le(name.len() as u16);
        buf.put_slice(name.as_bytes());
        buf.put_u8(t.shape().len() as u8);
        for &d in t.shape() {
            buf.put_u32_le(d as u32);
        }
        for &v in t.data() {
            buf.put_f32_le(v);
        }
    }
}

/// Decodes a [`ParamMap`] from the neutral format.
pub fn decode_params(mut buf: &[u8]) -> Result<ParamMap, CodecError> {
    take_params(&mut buf)
}

fn take_params(buf: &mut &[u8]) -> Result<ParamMap, CodecError> {
    need(buf, 4)?;
    let count = buf.get_u32_le() as usize;
    let mut out = ParamMap::new();
    for _ in 0..count {
        need(buf, 2)?;
        let name_len = buf.get_u16_le() as usize;
        need(buf, name_len)?;
        let name = std::str::from_utf8(&buf[..name_len])
            .map_err(|_| CodecError::BadName)?
            .to_string();
        buf.advance(name_len);
        need(buf, 1)?;
        let ndim = buf.get_u8() as usize;
        need(buf, 4 * ndim)?;
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(buf.get_u32_le() as usize);
        }
        // checked product: a crafted frame must yield a decode error, not an
        // overflow panic or huge allocation
        let numel = shape
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or(CodecError::BadShape)?;
        let bytes = numel.checked_mul(4).ok_or(CodecError::BadShape)?;
        need(buf, bytes)?;
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            data.push(buf.get_f32_le());
        }
        out.insert(name, Tensor::from_vec(shape, data));
    }
    Ok(out)
}

/// Encodes a whole [`Message`] (header + payload) for transport.
pub fn encode_message(msg: &Message) -> Bytes {
    let mut buf = BytesMut::with_capacity(msg.payload_bytes() + 64);
    buf.put_u32_le(msg.sender);
    buf.put_u32_le(msg.receiver);
    buf.put_u16_le(msg.kind.tag());
    buf.put_u64_le(msg.round);
    buf.put_f64_le(msg.timestamp);
    match &msg.payload {
        Payload::Empty => buf.put_u8(0),
        Payload::Model { params, version } => {
            buf.put_u8(1);
            buf.put_u64_le(*version);
            put_params(&mut buf, params);
        }
        Payload::Update {
            params,
            start_version,
            n_samples,
            n_steps,
        } => {
            buf.put_u8(2);
            buf.put_u64_le(*start_version);
            buf.put_u64_le(*n_samples);
            buf.put_u64_le(*n_steps);
            put_params(&mut buf, params);
        }
        Payload::Report { metrics } => {
            buf.put_u8(3);
            buf.put_f32_le(metrics.loss);
            buf.put_f32_le(metrics.accuracy);
            buf.put_u64_le(metrics.n as u64);
        }
        Payload::Bytes(b) => {
            buf.put_u8(4);
            buf.put_u32_le(b.len() as u32);
            buf.put_slice(b);
        }
        Payload::CompressedModel { block, version } => {
            buf.put_u8(5);
            buf.put_u64_le(*version);
            put_block(&mut buf, block);
        }
        Payload::CompressedUpdate {
            block,
            start_version,
            n_samples,
            n_steps,
        } => {
            buf.put_u8(6);
            buf.put_u64_le(*start_version);
            buf.put_u64_le(*n_samples);
            buf.put_u64_le(*n_steps);
            put_block(&mut buf, block);
        }
    }
    buf.freeze()
}

/// Decodes a whole [`Message`] from transport bytes.
pub fn decode_message(mut buf: &[u8]) -> Result<Message, CodecError> {
    need(&buf, 4 + 4 + 2 + 8 + 8 + 1)?;
    let sender = buf.get_u32_le();
    let receiver = buf.get_u32_le();
    let kind_tag = buf.get_u16_le();
    let kind = MessageKind::from_tag(kind_tag).ok_or(CodecError::BadTag(kind_tag))?;
    let round = buf.get_u64_le();
    let timestamp = buf.get_f64_le();
    let payload_tag = buf.get_u8();
    let payload = match payload_tag {
        0 => Payload::Empty,
        1 => {
            need(&buf, 8)?;
            let version = buf.get_u64_le();
            let params = take_params(&mut buf)?;
            Payload::Model { params, version }
        }
        2 => {
            need(&buf, 24)?;
            let start_version = buf.get_u64_le();
            let n_samples = buf.get_u64_le();
            let n_steps = buf.get_u64_le();
            let params = take_params(&mut buf)?;
            Payload::Update {
                params,
                start_version,
                n_samples,
                n_steps,
            }
        }
        3 => {
            need(&buf, 16)?;
            let loss = buf.get_f32_le();
            let accuracy = buf.get_f32_le();
            let n = buf.get_u64_le() as usize;
            Payload::Report {
                metrics: Metrics { loss, accuracy, n },
            }
        }
        4 => {
            need(&buf, 4)?;
            let len = buf.get_u32_le() as usize;
            need(&buf, len)?;
            let b = buf[..len].to_vec();
            buf.advance(len);
            Payload::Bytes(b)
        }
        5 => {
            need(&buf, 8)?;
            let version = buf.get_u64_le();
            let block = take_block(&mut buf)?;
            Payload::CompressedModel { block, version }
        }
        6 => {
            need(&buf, 24)?;
            let start_version = buf.get_u64_le();
            let n_samples = buf.get_u64_le();
            let n_steps = buf.get_u64_le();
            let block = take_block(&mut buf)?;
            Payload::CompressedUpdate {
                block,
                start_version,
                n_samples,
                n_steps,
            }
        }
        t => return Err(CodecError::BadTag(t as u16)),
    };
    Ok(Message {
        sender,
        receiver,
        kind,
        round,
        timestamp,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_compress::{CompressedBlock, CompressedTensor, Encoding};

    fn sample_block() -> CompressedBlock {
        CompressedBlock {
            delta: true,
            ref_version: 11,
            tensors: vec![
                CompressedTensor {
                    name: "w".into(),
                    shape: vec![2, 2],
                    encoding: Encoding::Quantized {
                        bits: 8,
                        min: -1.0,
                        max: 1.0,
                        packed: vec![0, 128, 255, 64],
                    },
                },
                CompressedTensor {
                    name: "b".into(),
                    shape: vec![4],
                    encoding: Encoding::Sparse {
                        indices: vec![1, 3],
                        values: vec![0.5, -0.25],
                    },
                },
            ],
        }
    }

    fn sample_params() -> ParamMap {
        let mut p = ParamMap::new();
        p.insert(
            "fc.weight",
            Tensor::from_vec(vec![2, 3], vec![1.0, -2.0, 3.5, 0.0, 4.25, -1.5]),
        );
        p.insert("fc.bias", Tensor::from_vec(vec![3], vec![0.1, 0.2, 0.3]));
        p
    }

    #[test]
    fn params_roundtrip() {
        let p = sample_params();
        let bytes = encode_params(&p);
        let q = decode_params(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn empty_params_roundtrip() {
        let p = ParamMap::new();
        assert_eq!(decode_params(&encode_params(&p)).unwrap(), p);
    }

    #[test]
    fn truncated_params_rejected() {
        let bytes = encode_params(&sample_params());
        for cut in [0, 3, 10, bytes.len() - 1] {
            let r = decode_params(&bytes[..cut]);
            assert_eq!(r, Err(CodecError::Truncated), "cut={cut}");
        }
    }

    #[test]
    fn message_roundtrip_all_payloads() {
        let payloads = vec![
            Payload::Empty,
            Payload::Model {
                params: sample_params(),
                version: 9,
            },
            Payload::Update {
                params: sample_params(),
                start_version: 7,
                n_samples: 123,
                n_steps: 4,
            },
            Payload::Report {
                metrics: Metrics {
                    loss: 0.5,
                    accuracy: 0.9,
                    n: 42,
                },
            },
            Payload::Bytes(vec![1, 2, 3, 4, 5]),
            Payload::CompressedModel {
                block: sample_block(),
                version: 9,
            },
            Payload::CompressedUpdate {
                block: sample_block(),
                start_version: 7,
                n_samples: 123,
                n_steps: 4,
            },
        ];
        for payload in payloads {
            let mut m = Message::new(3, 0, MessageKind::Updates, 5, payload);
            m.timestamp = 123.456;
            let bytes = encode_message(&m);
            let d = decode_message(&bytes).unwrap();
            assert_eq!(m, d);
            // payload_bytes must be the exact serialized size, not an estimate
            assert_eq!(bytes.len(), HEADER_LEN + m.payload_bytes());
            assert_eq!(bytes.len(), m.wire_bytes());
        }
    }

    #[test]
    fn truncated_compressed_payload_rejected() {
        let m = Message::new(
            1,
            0,
            MessageKind::Updates,
            2,
            Payload::CompressedUpdate {
                block: sample_block(),
                start_version: 1,
                n_samples: 8,
                n_steps: 2,
            },
        );
        let bytes = encode_message(&m);
        for cut in [HEADER_LEN + 1, HEADER_LEN + 25, bytes.len() - 1] {
            assert_eq!(
                decode_message(&bytes[..cut]),
                Err(CodecError::Truncated),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn bad_kind_tag_rejected() {
        let mut m = Message::new(1, 0, MessageKind::JoinIn, 0, Payload::Empty);
        m.timestamp = 1.0;
        let bytes = encode_message(&m);
        let mut raw = bytes.to_vec();
        raw[8] = 0xFF; // corrupt kind tag (low byte)
        raw[9] = 0x00;
        assert!(matches!(decode_message(&raw), Err(CodecError::BadTag(_))));
    }

    #[test]
    fn format_carries_no_architecture_information() {
        // information minimization: the wire bytes contain names, shapes and
        // values only — identical architectures with different internals
        // produce byte-identical encodings.
        let p = sample_params();
        let a = encode_params(&p);
        let b = encode_params(&p.clone());
        assert_eq!(a, b);
    }
}
