//! Minimal in-repo stand-in for the `serde_json` crate.
//!
//! Renders the in-repo `serde::Value` tree as JSON. Only serialization is
//! provided ([`to_string`] and [`to_string_pretty`]); nothing in the
//! workspace parses JSON back.

use serde::{Serialize, Value};
use std::fmt;

/// Serialization failure (non-finite float).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = Writer { out: String::new(), indent: None };
    w.value(&value.to_value(), 0)?;
    Ok(w.out)
}

/// Serializes to pretty JSON (two-space indent, `"key": value` spacing).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = Writer { out: String::new(), indent: Some("  ") };
    w.value(&value.to_value(), 0)?;
    Ok(w.out)
}

struct Writer {
    out: String,
    indent: Option<&'static str>,
}

impl Writer {
    fn value(&mut self, value: &Value, depth: usize) -> Result<(), Error> {
        match value {
            Value::Null => self.out.push_str("null"),
            Value::Bool(b) => self.out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => self.out.push_str(&i.to_string()),
            Value::UInt(u) => self.out.push_str(&u.to_string()),
            Value::F32(f) => self.float(f64::from(*f), &f.to_string())?,
            Value::F64(f) => self.float(*f, &f.to_string())?,
            Value::String(s) => self.string(s),
            Value::Array(items) => {
                self.delimited('[', ']', items.len(), depth, |w, idx, depth| {
                    w.value(&items[idx], depth)
                })?;
            }
            Value::Object(entries) => {
                self.delimited('{', '}', entries.len(), depth, |w, idx, depth| {
                    let (key, val) = &entries[idx];
                    w.string(key);
                    w.out.push(':');
                    if w.indent.is_some() {
                        w.out.push(' ');
                    }
                    w.value(val, depth)
                })?;
            }
        }
        Ok(())
    }

    fn delimited(
        &mut self,
        open: char,
        close: char,
        len: usize,
        depth: usize,
        mut item: impl FnMut(&mut Self, usize, usize) -> Result<(), Error>,
    ) -> Result<(), Error> {
        self.out.push(open);
        if len == 0 {
            self.out.push(close);
            return Ok(());
        }
        for idx in 0..len {
            if idx > 0 {
                self.out.push(',');
            }
            self.newline_indent(depth + 1);
            item(self, idx, depth + 1)?;
        }
        self.newline_indent(depth);
        self.out.push(close);
        Ok(())
    }

    fn newline_indent(&mut self, depth: usize) {
        if let Some(pad) = self.indent {
            self.out.push('\n');
            for _ in 0..depth {
                self.out.push_str(pad);
            }
        }
    }

    fn float(&mut self, value: f64, shortest: &str) -> Result<(), Error> {
        if !value.is_finite() {
            return Err(Error(format!("non-finite float {value} is not valid JSON")));
        }
        self.out.push_str(shortest);
        // Rust's shortest form drops the fractional part for whole floats
        // ("2"); JSON readers expect a float-typed literal, so match
        // serde_json ("2.0").
        if !shortest.contains(['.', 'e', 'E']) {
            self.out.push_str(".0");
        }
        Ok(())
    }

    fn string(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_scalars() {
        assert_eq!(to_string(&7u32).unwrap(), "7");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&1.5f32).unwrap(), "1.5");
        assert_eq!(to_string(&None::<u8>).unwrap(), "null");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn pretty_object_layout() {
        #[derive(Serialize)]
        struct S {
            x: u32,
            ys: Vec<f64>,
        }
        let s = S { x: 7, ys: vec![1.0, 2.5] };
        let json = to_string_pretty(&s).unwrap();
        assert_eq!(json, "{\n  \"x\": 7,\n  \"ys\": [\n    1.0,\n    2.5\n  ]\n}");
    }

    #[test]
    fn empty_containers_stay_inline() {
        let empty: Vec<u8> = Vec::new();
        assert_eq!(to_string_pretty(&empty).unwrap(), "[]");
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f32::INFINITY).is_err());
    }
}
