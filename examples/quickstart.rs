//! Quickstart: a vanilla synchronous FedAvg course in ~20 lines.
//!
//! Builds a Twitter-like sentiment federation (120 tiny clients), trains a
//! logistic regression with FedAvg for 20 rounds under virtual time, and
//! prints the learning curve, the effective `<event, handler>` pairs, and the
//! completeness check of the constructed course.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fedscope::core::completeness::FlowGraph;
use fedscope::core::config::FlConfig;
use fedscope::core::course::CourseBuilder;
use fedscope::data::synth::{twitter_like, TwitterConfig};
use fedscope::tensor::model::logistic_regression;
use fedscope::tensor::optim::SgdConfig;

fn main() {
    // 1. data: 120 users, each with a handful of bag-of-words texts
    // seed 21 draws a topic pair separable enough to learn well under the
    // in-repo RNG (same choice as the fs-core course tests)
    let data = twitter_like(&TwitterConfig {
        num_clients: 120,
        seed: 21,
        ..Default::default()
    });
    let dim = data.input_dim();

    // 2. course configuration: vanilla synchronous FedAvg
    let cfg = FlConfig {
        total_rounds: 20,
        concurrency: 40,
        local_steps: 4,
        batch_size: 2,
        sgd: SgdConfig::with_lr(0.5),
        seed: 1,
        ..Default::default()
    };

    // 3. build and run
    let mut runner = CourseBuilder::new(
        data,
        Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
        cfg,
    )
    .build();

    // the handlers that take effect are recorded, as the paper requires
    println!("effective server handlers:");
    for (event, name) in runner.server.effective_handlers() {
        println!("  {event} -> {name}");
    }

    // completeness checking (Appendix E): start-to-termination path exists?
    let clients: Vec<&fedscope::core::Client> = runner.clients.values().collect();
    let graph = FlowGraph::from_course(&runner.server, &clients);
    let check = graph.check();
    println!("\ncourse complete: {}", check.complete);
    assert!(check.complete, "default FedAvg course must be complete");

    let report = runner.run();
    println!("\nlearning curve (virtual time -> accuracy):");
    for r in report.history.iter().step_by(4) {
        println!(
            "  round {:>3}  t={:>7.1}s  acc={:.3}",
            r.round, r.time_secs, r.metrics.accuracy
        );
    }
    println!(
        "\nfinished: {} after {:.1} virtual seconds",
        report.finish_reason, report.final_time_secs
    );
}
