// FSA092 fixture: a pragma naming a code that does not exist.
pub fn id(x: u32) -> u32 {
    // fsa::allow(FSA999, no such code)
    x
}
