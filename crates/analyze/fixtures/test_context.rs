// Test-context fixture: panic-family lints are exempt inside tests.
pub fn add(a: u32, b: u32) -> u32 {
    a + b
}

#[cfg(test)]
mod tests {
    #[test]
    fn adds() {
        assert_eq!("3".parse::<u32>().unwrap(), super::add(1, 2));
    }
}
