//! A replayable monitor buffer for parallel execution.
//!
//! When the standalone runner speculatively executes a client handler on a
//! worker thread, the handler must not write to the shared monitor directly:
//! interleaved writes from concurrent workers would scramble the record
//! order (and per-track span nesting) that serial execution produces. A
//! [`BufferMonitor`] solves this by *recording* every operation the handler
//! issues; once the runner adopts the speculation — at the exact point the
//! serial simulator would have run the handler — it [`replay`]s the buffer
//! into the real monitor, between the runner's own `enter`/`exit` calls.
//! The replayed stream is byte-for-byte the stream a serial run would have
//! produced.
//!
//! [`replay`]: BufferMonitor::replay

use crate::api::{Monitor, MonitorHandle, TrackId};
use fs_sim::VirtualTime;
use fs_tensor::model::Metrics;

/// One recorded monitor operation.
///
/// Span names and categories stay `&'static str` — the [`Monitor`] trait
/// only accepts static strings, so buffering them is copy-free.
#[derive(Clone, Debug)]
pub enum MonitorOp {
    /// An `enter` call.
    Enter {
        /// Span track.
        track: TrackId,
        /// Span name.
        name: &'static str,
        /// Span category.
        cat: &'static str,
        /// Open time.
        at: VirtualTime,
    },
    /// An `exit` call.
    Exit {
        /// Span track.
        track: TrackId,
        /// Close time.
        at: VirtualTime,
    },
    /// A complete `span` call.
    Span {
        /// Span track.
        track: TrackId,
        /// Span name.
        name: &'static str,
        /// Span category.
        cat: &'static str,
        /// Start time.
        start: VirtualTime,
        /// Duration in virtual seconds.
        dur_secs: f64,
    },
    /// An `add` call.
    Add {
        /// Counter name.
        counter: &'static str,
        /// Increment.
        delta: u64,
    },
    /// A `round` call.
    Round {
        /// Aggregation round.
        round: u64,
        /// Virtual time of the evaluation.
        time: VirtualTime,
        /// Global metrics.
        metrics: Metrics,
    },
}

/// A monitor that records operations for later in-order replay.
#[derive(Debug, Default)]
pub struct BufferMonitor {
    ops: Vec<MonitorOp>,
}

impl BufferMonitor {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded operations, in issue order.
    pub fn ops(&self) -> &[MonitorOp] {
        &self.ops
    }

    /// Consumes the buffer, yielding the recorded operations.
    pub fn into_ops(self) -> Vec<MonitorOp> {
        self.ops
    }

    /// Replays the recorded operations into `target`, preserving order.
    pub fn replay(&self, target: &MonitorHandle) {
        Self::replay_ops(&self.ops, target);
    }

    /// Replays an operation list into `target`, preserving order.
    pub fn replay_ops(ops: &[MonitorOp], target: &MonitorHandle) {
        for op in ops {
            match *op {
                MonitorOp::Enter {
                    track,
                    name,
                    cat,
                    at,
                } => target.enter(track, name, cat, at),
                MonitorOp::Exit { track, at } => target.exit(track, at),
                MonitorOp::Span {
                    track,
                    name,
                    cat,
                    start,
                    dur_secs,
                } => target.span(track, name, cat, start, dur_secs),
                MonitorOp::Add { counter, delta } => target.add(counter, delta),
                MonitorOp::Round {
                    round,
                    time,
                    ref metrics,
                } => target.round(round, time, metrics),
            }
        }
    }
}

impl Monitor for BufferMonitor {
    fn enter(&mut self, track: TrackId, name: &'static str, cat: &'static str, at: VirtualTime) {
        self.ops.push(MonitorOp::Enter {
            track,
            name,
            cat,
            at,
        });
    }

    fn exit(&mut self, track: TrackId, at: VirtualTime) {
        self.ops.push(MonitorOp::Exit { track, at });
    }

    fn span(
        &mut self,
        track: TrackId,
        name: &'static str,
        cat: &'static str,
        start: VirtualTime,
        dur_secs: f64,
    ) {
        self.ops.push(MonitorOp::Span {
            track,
            name,
            cat,
            start,
            dur_secs,
        });
    }

    fn add(&mut self, counter: &'static str, delta: u64) {
        self.ops.push(MonitorOp::Add { counter, delta });
    }

    fn round(&mut self, round: u64, time: VirtualTime, metrics: &Metrics) {
        self.ops.push(MonitorOp::Round {
            round,
            time,
            metrics: *metrics,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters;
    use crate::recording::RecordingMonitor;
    use std::sync::{Arc, Mutex};

    #[test]
    fn replay_reproduces_the_serial_record_stream() {
        // record the same operations directly and through a buffer
        let direct = Arc::new(Mutex::new(RecordingMonitor::new()));
        let direct_handle = MonitorHandle::from_shared(direct.clone());
        let buffered = Arc::new(Mutex::new(RecordingMonitor::new()));
        let buffered_handle = MonitorHandle::from_shared(buffered.clone());

        let drive = |h: &MonitorHandle| {
            h.enter(3, "ModelParams", "dispatch", VirtualTime::ZERO);
            h.add(counters::MESSAGES_SENT, 2);
            h.span(3, "local_train", "compute", VirtualTime::ZERO, 1.5);
            h.exit(3, VirtualTime::ZERO + 2.0);
            h.round(1, VirtualTime::ZERO + 2.0, &Metrics::default());
        };

        drive(&direct_handle);

        let buf = Arc::new(Mutex::new(BufferMonitor::new()));
        drive(&MonitorHandle::from_shared(buf.clone()));
        buf.lock().unwrap().replay(&buffered_handle);

        let direct = direct.lock().unwrap();
        let buffered = buffered.lock().unwrap();
        assert_eq!(direct.spans().len(), buffered.spans().len());
        for (a, b) in direct.spans().iter().zip(buffered.spans().iter()) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        assert_eq!(
            direct.counter(counters::MESSAGES_SENT),
            buffered.counter(counters::MESSAGES_SENT)
        );
        assert_eq!(direct.rounds().len(), buffered.rounds().len());
    }

    #[test]
    fn buffer_keeps_issue_order() {
        let mut buf = BufferMonitor::new();
        buf.add("a", 1);
        buf.enter(1, "x", "dispatch", VirtualTime::ZERO);
        buf.add("b", 2);
        buf.exit(1, VirtualTime::ZERO);
        let kinds: Vec<&str> = buf
            .ops()
            .iter()
            .map(|op| match op {
                MonitorOp::Add { .. } => "add",
                MonitorOp::Enter { .. } => "enter",
                MonitorOp::Exit { .. } => "exit",
                MonitorOp::Span { .. } => "span",
                MonitorOp::Round { .. } => "round",
            })
            .collect();
        assert_eq!(kinds, ["add", "enter", "add", "exit"]);
    }
}
