//! File exporters: JSONL round log, CSV counter summary, and the
//! `BENCH_monitor.json` snapshot.

use crate::recording::RecordingMonitor;
use serde::Value;
use std::io::{self, Write};

/// Writes one JSON object per recorded round (the JSONL round log).
pub fn write_rounds_jsonl<W: Write>(monitor: &RecordingMonitor, out: &mut W) -> io::Result<()> {
    for r in monitor.rounds() {
        let line = serde_json::to_string(r)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        writeln!(out, "{line}")?;
    }
    Ok(())
}

/// Writes the counter table as two-column CSV (`counter,value`), name-sorted.
pub fn write_counters_csv<W: Write>(monitor: &RecordingMonitor, out: &mut W) -> io::Result<()> {
    writeln!(out, "counter,value")?;
    for (name, value) in monitor.counters() {
        writeln!(out, "{name},{value}")?;
    }
    Ok(())
}

/// One benchmarked configuration in `BENCH_monitor.json`.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BenchRow {
    /// Workload name (e.g. `"femnist"`).
    pub workload: String,
    /// Training-strategy name (e.g. `"goal_aggr_unif"`).
    pub strategy: String,
    /// Compressor name (e.g. `"identity"`, `"topk"`).
    pub compressor: String,
    /// Aggregation rounds completed.
    pub rounds: u64,
    /// Rounds completed per wall-clock second of engine time.
    pub rounds_per_sec: f64,
    /// Virtual seconds when the target accuracy was first reached
    /// (negative when the target was never reached).
    pub virtual_secs_to_target: f64,
    /// Target accuracy used for `virtual_secs_to_target`.
    pub target_accuracy: f64,
    /// Best global accuracy seen over the course.
    pub best_accuracy: f64,
    /// Payload bytes charged client → server.
    pub uploaded_bytes: u64,
    /// Payload bytes charged server → clients.
    pub downloaded_bytes: u64,
    /// Final virtual time of the course, in seconds.
    pub final_virtual_secs: f64,
}

/// The `BENCH_monitor.json` document: the grid of [`BenchRow`]s plus schema
/// metadata the CI gate checks.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BenchSnapshot {
    /// Snapshot schema version; bump on incompatible changes.
    pub schema_version: u64,
    /// Benchmark name (`"exp_monitor"`).
    pub bench: String,
    /// One row per (workload, strategy, compressor) cell.
    pub rows: Vec<BenchRow>,
}

impl BenchSnapshot {
    /// Current schema version.
    pub const SCHEMA_VERSION: u64 = 1;

    /// An empty snapshot for `exp_monitor`.
    pub fn new(bench: &str) -> Self {
        Self {
            schema_version: Self::SCHEMA_VERSION,
            bench: bench.to_string(),
            rows: Vec::new(),
        }
    }

    /// Serializes the snapshot as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }
}

/// Parses and validates a `BENCH_monitor.json` document. This is the CI
/// gate: a missing field, wrong schema version, empty grid, or
/// non-finite measurement all fail loudly.
pub fn validate_bench_snapshot(json: &str) -> Result<BenchSnapshot, String> {
    let snap: BenchSnapshot =
        serde_json::from_str(json).map_err(|e| format!("malformed BENCH snapshot: {e:?}"))?;
    if snap.schema_version != BenchSnapshot::SCHEMA_VERSION {
        return Err(format!(
            "schema_version {} != expected {}",
            snap.schema_version,
            BenchSnapshot::SCHEMA_VERSION
        ));
    }
    if snap.rows.is_empty() {
        return Err("snapshot has no rows".to_string());
    }
    for (i, row) in snap.rows.iter().enumerate() {
        if row.workload.is_empty() || row.strategy.is_empty() || row.compressor.is_empty() {
            return Err(format!("row {i}: empty workload/strategy/compressor"));
        }
        if row.rounds == 0 {
            return Err(format!("row {i}: zero rounds completed"));
        }
        for (name, v) in [
            ("rounds_per_sec", row.rounds_per_sec),
            ("target_accuracy", row.target_accuracy),
            ("best_accuracy", row.best_accuracy),
            ("final_virtual_secs", row.final_virtual_secs),
        ] {
            if !v.is_finite() {
                return Err(format!("row {i}: non-finite {name}"));
            }
        }
        if !row.virtual_secs_to_target.is_finite() {
            return Err(format!("row {i}: non-finite virtual_secs_to_target"));
        }
    }
    Ok(snap)
}

/// One serial-vs-parallel grid cell in `BENCH_perf.json`.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PerfRow {
    /// Workload name (e.g. `"femnist"`).
    pub workload: String,
    /// Training-strategy name (e.g. `"sync_vanilla"`).
    pub strategy: String,
    /// Aggregation rounds completed (identical for both runs by contract).
    pub rounds: u64,
    /// Worker threads used for the parallel run (`FlConfig::parallelism`).
    pub threads: usize,
    /// Wall-clock milliseconds of the serial (`parallelism = 1`) run.
    pub serial_ms: f64,
    /// Wall-clock milliseconds of the parallel run.
    pub parallel_ms: f64,
    /// `serial_ms / parallel_ms`.
    pub speedup: f64,
    /// Whether the serial and parallel `CourseReport`s compared equal —
    /// the determinism contract; the validator rejects `false`.
    pub reports_identical: bool,
}

/// One matmul micro-measurement in `BENCH_perf.json`.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MatmulRow {
    /// Left operand rows.
    pub m: usize,
    /// Inner (contraction) dimension.
    pub k: usize,
    /// Right operand columns.
    pub n: usize,
    /// Best-of-N nanoseconds for the naive triple loop.
    pub naive_ns: f64,
    /// Best-of-N nanoseconds for the blocked/SIMD kernel.
    pub blocked_ns: f64,
    /// `naive_ns / blocked_ns`.
    pub speedup: f64,
}

/// The `BENCH_perf.json` document: serial-vs-parallel engine timings plus
/// matmul kernel micro-benchmarks, with schema metadata the CI gate checks.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PerfSnapshot {
    /// Snapshot schema version; bump on incompatible changes.
    pub schema_version: u64,
    /// Benchmark name (`"exp_perf"`).
    pub bench: String,
    /// CPU cores available on the measurement host. Wall-clock speedup is
    /// bounded by this — a single-core host cannot show a parallel win, so
    /// readers must interpret `speedup` relative to `cores`.
    pub cores: usize,
    /// One row per (workload, strategy) engine cell.
    pub rows: Vec<PerfRow>,
    /// One row per benchmarked matmul shape.
    pub matmul: Vec<MatmulRow>,
}

impl PerfSnapshot {
    /// Current schema version.
    pub const SCHEMA_VERSION: u64 = 1;

    /// An empty snapshot for the given bench, stamped with this host's
    /// core count.
    pub fn new(bench: &str) -> Self {
        Self {
            schema_version: Self::SCHEMA_VERSION,
            bench: bench.to_string(),
            cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            rows: Vec::new(),
            matmul: Vec::new(),
        }
    }

    /// Serializes the snapshot as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }
}

/// Parses and validates a `BENCH_perf.json` document. This is the CI gate:
/// a missing field, wrong schema version, empty grid, non-finite or
/// non-positive timing, or a determinism violation all fail loudly.
pub fn validate_perf_snapshot(json: &str) -> Result<PerfSnapshot, String> {
    let snap: PerfSnapshot =
        serde_json::from_str(json).map_err(|e| format!("malformed perf snapshot: {e:?}"))?;
    if snap.schema_version != PerfSnapshot::SCHEMA_VERSION {
        return Err(format!(
            "schema_version {} != expected {}",
            snap.schema_version,
            PerfSnapshot::SCHEMA_VERSION
        ));
    }
    if snap.cores == 0 {
        return Err("cores must be >= 1".to_string());
    }
    if snap.rows.is_empty() {
        return Err("snapshot has no engine rows".to_string());
    }
    if snap.matmul.is_empty() {
        return Err("snapshot has no matmul rows".to_string());
    }
    for (i, row) in snap.rows.iter().enumerate() {
        if row.workload.is_empty() || row.strategy.is_empty() {
            return Err(format!("engine row {i}: empty workload/strategy"));
        }
        if row.rounds == 0 {
            return Err(format!("engine row {i}: zero rounds completed"));
        }
        if row.threads == 0 {
            return Err(format!("engine row {i}: zero threads"));
        }
        for (name, v) in [
            ("serial_ms", row.serial_ms),
            ("parallel_ms", row.parallel_ms),
            ("speedup", row.speedup),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("engine row {i}: bad {name} ({v})"));
            }
        }
        if !row.reports_identical {
            return Err(format!(
                "engine row {i}: serial and parallel reports differ — determinism violated"
            ));
        }
    }
    for (i, row) in snap.matmul.iter().enumerate() {
        if row.m == 0 || row.k == 0 || row.n == 0 {
            return Err(format!("matmul row {i}: zero dimension"));
        }
        for (name, v) in [
            ("naive_ns", row.naive_ns),
            ("blocked_ns", row.blocked_ns),
            ("speedup", row.speedup),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("matmul row {i}: bad {name} ({v})"));
            }
        }
    }
    Ok(snap)
}

/// One client-count sweep point in `BENCH_scale.json`.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScaleRow {
    /// Clients in the simulated course.
    pub clients: u64,
    /// Aggregation rounds completed.
    pub rounds: u64,
    /// Simulation events processed (deliveries, batch members, timers).
    pub events: u64,
    /// Wall-clock seconds for the full course.
    pub wall_secs: f64,
    /// `clients / wall_secs` — the headline scale metric.
    pub clients_per_sec: f64,
    /// `events / wall_secs` — event-heap throughput.
    pub events_per_sec: f64,
    /// Peak resident set size in bytes (`VmHWM`), or 0 when the platform
    /// does not expose it. Measured once per process, so rows report the
    /// high-water mark *up to and including* their run.
    pub peak_rss_bytes: u64,
}

/// The `BENCH_scale.json` document: the client-count sweep of the fs-scale
/// runner, with schema metadata the CI gate checks.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScaleSnapshot {
    /// Snapshot schema version; bump on incompatible changes.
    pub schema_version: u64,
    /// Benchmark name (`"exp_scale"`).
    pub bench: String,
    /// One row per swept client count.
    pub rows: Vec<ScaleRow>,
}

impl ScaleSnapshot {
    /// Current schema version.
    pub const SCHEMA_VERSION: u64 = 1;

    /// An empty snapshot for the given bench.
    pub fn new(bench: &str) -> Self {
        Self {
            schema_version: Self::SCHEMA_VERSION,
            bench: bench.to_string(),
            rows: Vec::new(),
        }
    }

    /// Serializes the snapshot as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }
}

/// Parses and validates a `BENCH_scale.json` document. This is the CI gate:
/// a missing field, wrong schema version, empty sweep, zero counts, or a
/// non-finite/non-positive rate all fail loudly.
pub fn validate_scale_snapshot(json: &str) -> Result<ScaleSnapshot, String> {
    let snap: ScaleSnapshot =
        serde_json::from_str(json).map_err(|e| format!("malformed scale snapshot: {e:?}"))?;
    if snap.schema_version != ScaleSnapshot::SCHEMA_VERSION {
        return Err(format!(
            "schema_version {} != expected {}",
            snap.schema_version,
            ScaleSnapshot::SCHEMA_VERSION
        ));
    }
    if snap.rows.is_empty() {
        return Err("snapshot has no rows".to_string());
    }
    for (i, row) in snap.rows.iter().enumerate() {
        if row.clients == 0 {
            return Err(format!("row {i}: zero clients"));
        }
        if row.rounds == 0 {
            return Err(format!("row {i}: zero rounds completed"));
        }
        if row.events == 0 {
            return Err(format!("row {i}: zero events processed"));
        }
        for (name, v) in [
            ("wall_secs", row.wall_secs),
            ("clients_per_sec", row.clients_per_sec),
            ("events_per_sec", row.events_per_sec),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("row {i}: bad {name} ({v})"));
            }
        }
    }
    Ok(snap)
}

/// Parses one JSONL round log back into values (used by tests and tooling).
pub fn parse_rounds_jsonl(text: &str) -> Result<Vec<Value>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str::<Value>(l).map_err(|e| format!("bad JSONL line: {e:?}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{counters, Monitor};
    use fs_sim::VirtualTime;
    use fs_tensor::model::Metrics;

    fn sample_monitor() -> RecordingMonitor {
        let mut m = RecordingMonitor::new();
        m.add(counters::UPLOADED_BYTES, 2048);
        m.add(counters::MESSAGES_DELIVERED, 12);
        m.round(
            1,
            VirtualTime::from_secs(60.0),
            &Metrics {
                loss: 1.2,
                accuracy: 0.31,
                n: 400,
            },
        );
        m.round(
            2,
            VirtualTime::from_secs(120.0),
            &Metrics {
                loss: 0.9,
                accuracy: 0.44,
                n: 400,
            },
        );
        m
    }

    #[test]
    fn jsonl_has_one_parseable_object_per_round() {
        let m = sample_monitor();
        let mut buf = Vec::new();
        write_rounds_jsonl(&m, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let values = parse_rounds_jsonl(&text).unwrap();
        assert_eq!(values.len(), 2);
        assert_eq!(values[0].get("round").and_then(Value::as_u64), Some(1));
        assert_eq!(values[1].get("round").and_then(Value::as_u64), Some(2));
        assert_eq!(
            values[1].get("time_secs").and_then(Value::as_f64),
            Some(120.0)
        );
    }

    #[test]
    fn csv_is_header_plus_sorted_counters() {
        let m = sample_monitor();
        let mut buf = Vec::new();
        write_counters_csv(&m, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "counter,value");
        assert_eq!(lines[1], "bytes.uploaded,2048");
        assert_eq!(lines[2], "messages.delivered,12");
    }

    fn sample_row() -> BenchRow {
        BenchRow {
            workload: "femnist".into(),
            strategy: "sync_vanilla".into(),
            compressor: "identity".into(),
            rounds: 20,
            rounds_per_sec: 85.0,
            virtual_secs_to_target: 900.0,
            target_accuracy: 0.5,
            best_accuracy: 0.62,
            uploaded_bytes: 1 << 20,
            downloaded_bytes: 1 << 21,
            final_virtual_secs: 3600.0,
        }
    }

    #[test]
    fn bench_snapshot_roundtrips_and_validates() {
        let mut snap = BenchSnapshot::new("exp_monitor");
        snap.rows.push(sample_row());
        let json = snap.to_json();
        let back = validate_bench_snapshot(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn validation_rejects_bad_snapshots() {
        assert!(validate_bench_snapshot("not json").is_err());
        assert!(validate_bench_snapshot("{}").is_err(), "missing fields");
        let empty = BenchSnapshot::new("exp_monitor");
        assert!(
            validate_bench_snapshot(&empty.to_json()).is_err(),
            "no rows"
        );
        let mut wrong_version = BenchSnapshot::new("exp_monitor");
        wrong_version.rows.push(sample_row());
        wrong_version.schema_version = 999;
        assert!(validate_bench_snapshot(&wrong_version.to_json()).is_err());
        let mut nan = BenchSnapshot::new("exp_monitor");
        let mut row = sample_row();
        row.rounds_per_sec = f64::NAN;
        nan.rows.push(row);
        assert!(validate_bench_snapshot(&nan.to_json()).is_err());
    }

    fn sample_perf_row() -> PerfRow {
        PerfRow {
            workload: "femnist".into(),
            strategy: "sync_vanilla".into(),
            rounds: 8,
            threads: 4,
            serial_ms: 812.0,
            parallel_ms: 233.0,
            speedup: 812.0 / 233.0,
            reports_identical: true,
        }
    }

    fn sample_matmul_row() -> MatmulRow {
        MatmulRow {
            m: 128,
            k: 256,
            n: 128,
            naive_ns: 3.1e6,
            blocked_ns: 0.9e6,
            speedup: 3.1 / 0.9,
        }
    }

    #[test]
    fn perf_snapshot_roundtrips_and_validates() {
        let mut snap = PerfSnapshot::new("exp_perf");
        assert!(snap.cores >= 1);
        snap.rows.push(sample_perf_row());
        snap.matmul.push(sample_matmul_row());
        let json = snap.to_json();
        let back = validate_perf_snapshot(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn perf_validation_rejects_bad_snapshots() {
        assert!(validate_perf_snapshot("not json").is_err());
        assert!(validate_perf_snapshot("{}").is_err(), "missing fields");

        let mut no_rows = PerfSnapshot::new("exp_perf");
        no_rows.matmul.push(sample_matmul_row());
        assert!(validate_perf_snapshot(&no_rows.to_json()).is_err());

        let mut no_matmul = PerfSnapshot::new("exp_perf");
        no_matmul.rows.push(sample_perf_row());
        assert!(validate_perf_snapshot(&no_matmul.to_json()).is_err());

        let mut wrong_version = PerfSnapshot::new("exp_perf");
        wrong_version.rows.push(sample_perf_row());
        wrong_version.matmul.push(sample_matmul_row());
        wrong_version.schema_version = 999;
        assert!(validate_perf_snapshot(&wrong_version.to_json()).is_err());

        // the determinism contract is load-bearing: a cell whose serial and
        // parallel reports differ must fail the gate
        let mut diverged = PerfSnapshot::new("exp_perf");
        let mut row = sample_perf_row();
        row.reports_identical = false;
        diverged.rows.push(row);
        diverged.matmul.push(sample_matmul_row());
        assert!(validate_perf_snapshot(&diverged.to_json()).is_err());

        let mut bad_timing = PerfSnapshot::new("exp_perf");
        let mut row = sample_perf_row();
        row.parallel_ms = -1.0;
        bad_timing.rows.push(row);
        bad_timing.matmul.push(sample_matmul_row());
        assert!(validate_perf_snapshot(&bad_timing.to_json()).is_err());
    }

    fn sample_scale_row() -> ScaleRow {
        ScaleRow {
            clients: 100_000,
            rounds: 100,
            events: 1_250_000,
            wall_secs: 12.5,
            clients_per_sec: 8_000.0,
            events_per_sec: 100_000.0,
            peak_rss_bytes: 512 << 20,
        }
    }

    #[test]
    fn scale_snapshot_roundtrips_and_validates() {
        let mut snap = ScaleSnapshot::new("exp_scale");
        snap.rows.push(sample_scale_row());
        let json = snap.to_json();
        let back = validate_scale_snapshot(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn scale_validation_rejects_bad_snapshots() {
        assert!(validate_scale_snapshot("not json").is_err());
        assert!(validate_scale_snapshot("{}").is_err(), "missing fields");

        let empty = ScaleSnapshot::new("exp_scale");
        assert!(
            validate_scale_snapshot(&empty.to_json()).is_err(),
            "no rows"
        );

        let mut wrong_version = ScaleSnapshot::new("exp_scale");
        wrong_version.rows.push(sample_scale_row());
        wrong_version.schema_version = 999;
        assert!(validate_scale_snapshot(&wrong_version.to_json()).is_err());

        let mut zero_clients = ScaleSnapshot::new("exp_scale");
        let mut row = sample_scale_row();
        row.clients = 0;
        zero_clients.rows.push(row);
        assert!(validate_scale_snapshot(&zero_clients.to_json()).is_err());

        let mut bad_rate = ScaleSnapshot::new("exp_scale");
        let mut row = sample_scale_row();
        row.clients_per_sec = f64::NAN;
        bad_rate.rows.push(row);
        assert!(validate_scale_snapshot(&bad_rate.to_json()).is_err());

        // peak_rss_bytes = 0 is the "unavailable" sentinel and must pass
        let mut no_rss = ScaleSnapshot::new("exp_scale");
        let mut row = sample_scale_row();
        row.peak_rss_bytes = 0;
        no_rss.rows.push(row);
        assert!(validate_scale_snapshot(&no_rss.to_json()).is_ok());
    }
}
