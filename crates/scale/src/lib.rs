//! # fs-scale — million-client simulation core
//!
//! The legacy standalone runner materializes every client up front: a model,
//! a dataset split, an optimizer, and a handler registry per client, held for
//! the whole course. That caps simulations around the tens of thousands of
//! clients. This crate rearchitects the standalone execution core around two
//! observations about federated courses at scale:
//!
//! 1. **Almost every client is idle almost always.** Per round the server
//!    samples a small cohort; the rest of the fleet does nothing. An idle
//!    client needs no tensors — only the tiny resumable state (optimizer
//!    buffers, RNG stream, a few counters) that makes its *next* activation
//!    bit-identical to a world where it had stayed resident.
//! 2. **Most events are cohort-shaped.** A broadcast to `m` clients is one
//!    payload and `m` arrival times — not `m` owned messages.
//!
//! So: idle clients live as O(1) slots ([`runner::ScaleRunner`]'s slab of
//! slot structs), the dispatched client is lazily materialized from a
//! [`runner::ClientFactory`] (model tensors recycled through a pool), and
//! the course is driven by a single indexed event heap
//! ([`fs_sim::IndexedEventQueue`]) where a broadcast occupies one entry that
//! is re-armed member by member. The result runs 1,000,000-client courses in
//! a memory footprint the legacy runner would need for a few hundred, while
//! producing **bit-identical** [`fs_core::CourseReport`]s (and monitor
//! streams) on scales where both runners can run — the equivalence suite in
//! `tests/scale_equivalence.rs` holds that line.
//!
//! Select it per course with `FlConfig { execution: ExecutionMode::Scale }`
//! through [`course::build_course`], or construct a
//! [`course::ScaleCourseBuilder`] directly (required for the closure-backed
//! synthetic data sources that make million-client datasets feasible).

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod course;
pub mod runner;
pub mod slab;

pub use course::{build_course, CourseRunner, ScaleCourseBuilder};
pub use runner::{ClientFactory, ScaleRunner};
pub use slab::Slab;

use fs_core::trainer::{LocalUpdate, Trainer};
use fs_tensor::model::Metrics;
use fs_tensor::ParamMap;

/// A placeholder trainer for client shells that must never train: the
/// verification representative, and hibernating clients whose real trainer
/// has been dismantled into pooled parts.
pub struct NullTrainer;

impl Trainer for NullTrainer {
    fn incorporate(&mut self, _global: &ParamMap) {}

    fn local_train(&mut self, _global: &ParamMap, _round: u64) -> LocalUpdate {
        LocalUpdate {
            params: ParamMap::new(),
            n_samples: 0,
            n_steps: 0,
            examples_processed: 0,
        }
    }

    fn evaluate_val(&mut self) -> Metrics {
        Metrics::default()
    }

    fn evaluate_test(&mut self) -> Metrics {
        Metrics::default()
    }

    fn num_train_samples(&self) -> usize {
        0
    }
}
