//! The [`Model`] trait and the paper's evaluation architectures.
//!
//! The FL engine never sees layers — only models, addressed through named
//! parameters. The constructors here mirror the paper's ModelZoo subset used
//! in §5: logistic regression (Twitter sentiment), an MLP, the two-convolution
//! CNN ("ConvNet2", FEMNIST / CIFAR-10), an MLP with batch-norm (the FedBN
//! workhorse), and a dense GCN for the multi-goal graph scenarios (§3.4.2).

use crate::layer::{
    BatchNorm1d, Conv2d, Dropout, Flatten, Layer, Linear, MaxPool2d, Relu, Sequential,
};
use crate::loss::{accuracy, mse, softmax_cross_entropy, LossKind, Target};
use crate::{init, ParamMap, Tensor};
use rand::Rng;

/// Evaluation metrics for one dataset split.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Metrics {
    /// Mean loss over the split.
    pub loss: f32,
    /// Classification accuracy (0 for regression tasks).
    pub accuracy: f32,
    /// Number of evaluated examples.
    pub n: usize,
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "loss={:.4} acc={:.4} n={}",
            self.loss, self.accuracy, self.n
        )
    }
}

impl Metrics {
    /// Size-weighted combination of per-client metrics.
    pub fn weighted_merge(parts: &[Metrics]) -> Metrics {
        let n: usize = parts.iter().map(|m| m.n).sum();
        if n == 0 {
            return Metrics::default();
        }
        let nf = n as f32;
        Metrics {
            loss: parts.iter().map(|m| m.loss * m.n as f32).sum::<f32>() / nf,
            accuracy: parts.iter().map(|m| m.accuracy * m.n as f32).sum::<f32>() / nf,
            n,
        }
    }
}

/// A trainable model exposing name-addressed parameters.
pub trait Model: Send {
    /// Snapshot of all parameters (including buffers).
    fn get_params(&self) -> ParamMap;

    /// Loads parameters by name; names absent from `src` keep their values.
    fn set_params(&mut self, src: &ParamMap);

    /// Eval-mode forward pass returning logits / predictions.
    fn predict(&mut self, x: &Tensor) -> Tensor;

    /// Train-mode forward + backward; returns the mean loss and the gradient
    /// of the mean loss with respect to every trainable parameter.
    fn loss_grad(&mut self, x: &Tensor, y: &Target) -> (f32, ParamMap);

    /// Keys of non-trained buffers (e.g. batch-norm running statistics).
    fn buffer_keys(&self) -> Vec<String> {
        Vec::new()
    }

    /// Evaluates loss and accuracy on a split without computing gradients.
    fn evaluate(&mut self, x: &Tensor, y: &Target) -> Metrics {
        let logits = self.predict(x);
        match y {
            Target::Classes(c) => {
                let (loss, _) = softmax_cross_entropy(&logits, c);
                Metrics {
                    loss,
                    accuracy: accuracy(&logits, c),
                    n: c.len(),
                }
            }
            Target::Values(v) => {
                let (loss, _) = mse(&logits, v);
                Metrics {
                    loss,
                    accuracy: 0.0,
                    n: v.len(),
                }
            }
        }
    }

    /// Deep copy as a boxed trait object.
    fn clone_model(&self) -> Box<dyn Model>;
}

impl Clone for Box<dyn Model> {
    fn clone(&self) -> Self {
        self.clone_model()
    }
}

/// A [`Sequential`] network paired with a loss — covers every feed-forward
/// architecture in the evaluation.
pub struct NetModel {
    net: Sequential,
    loss: LossKind,
}

impl NetModel {
    /// Wraps a network and a loss into a model.
    pub fn new(net: Sequential, loss: LossKind) -> Self {
        Self { net, loss }
    }

    /// The loss this model trains with.
    pub fn loss_kind(&self) -> LossKind {
        self.loss
    }
}

impl Model for NetModel {
    fn get_params(&self) -> ParamMap {
        let mut p = ParamMap::new();
        self.net.collect_params("", &mut p);
        p
    }

    fn set_params(&mut self, src: &ParamMap) {
        self.net.load_params("", src);
    }

    fn predict(&mut self, x: &Tensor) -> Tensor {
        self.net.forward(x, false)
    }

    fn loss_grad(&mut self, x: &Tensor, y: &Target) -> (f32, ParamMap) {
        self.net.zero_grad();
        let logits = self.net.forward(x, true);
        let (loss, grad_logits) = match (self.loss, y) {
            (LossKind::SoftmaxCrossEntropy, Target::Classes(c)) => {
                softmax_cross_entropy(&logits, c)
            }
            (LossKind::Mse, Target::Values(v)) => mse(&logits, v),
            (kind, _) => panic!("loss {kind:?} incompatible with target type"),
        };
        self.net.backward(&grad_logits);
        let mut grads = ParamMap::new();
        self.net.collect_grads("", &mut grads);
        (loss, grads)
    }

    fn buffer_keys(&self) -> Vec<String> {
        self.net.buffer_keys()
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(NetModel {
            net: self.net.clone_net(),
            loss: self.loss,
        })
    }
}

/// Multinomial logistic regression: a single linear layer + softmax CE.
///
/// This is the paper's Twitter model (bag-of-words sentiment, §5.2).
pub fn logistic_regression(in_dim: usize, classes: usize, rng: &mut impl Rng) -> NetModel {
    let mut net = Sequential::new();
    net.push("fc", Box::new(Linear::new(in_dim, classes, rng)));
    NetModel::new(net, LossKind::SoftmaxCrossEntropy)
}

/// Multi-layer perceptron with ReLU activations.
pub fn mlp(dims: &[usize], rng: &mut impl Rng) -> NetModel {
    assert!(dims.len() >= 2, "mlp needs at least input and output dims");
    let mut net = Sequential::new();
    for (i, w) in dims.windows(2).enumerate() {
        net.push(
            format!("fc{}", i + 1),
            Box::new(Linear::new(w[0], w[1], rng)),
        );
        if i + 2 < dims.len() {
            net.push(format!("act{}", i + 1), Box::new(Relu::new()));
        }
    }
    NetModel::new(net, LossKind::SoftmaxCrossEntropy)
}

/// MLP with a batch-norm layer after each hidden linear layer.
///
/// FedBN keeps the `bn*.*` keys local; everything else is shared.
pub fn mlp_bn(dims: &[usize], rng: &mut impl Rng) -> NetModel {
    assert!(
        dims.len() >= 2,
        "mlp_bn needs at least input and output dims"
    );
    let mut net = Sequential::new();
    for (i, w) in dims.windows(2).enumerate() {
        net.push(
            format!("fc{}", i + 1),
            Box::new(Linear::new(w[0], w[1], rng)),
        );
        if i + 2 < dims.len() {
            net.push(format!("bn{}", i + 1), Box::new(BatchNorm1d::new(w[1])));
            net.push(format!("act{}", i + 1), Box::new(Relu::new()));
        }
    }
    NetModel::new(net, LossKind::SoftmaxCrossEntropy)
}

/// The paper's "ConvNet2": two 3x3 convolutions (each followed by ReLU and
/// 2x2 max-pooling), a hidden fully-connected layer with dropout, and a
/// classification head.
///
/// `img` is the square input side length, `in_ch` the channel count.
pub fn convnet2(
    in_ch: usize,
    img: usize,
    hidden: usize,
    classes: usize,
    dropout: f32,
    rng: &mut impl Rng,
) -> NetModel {
    let mut net = Sequential::new();
    net.push("conv1", Box::new(Conv2d::new(in_ch, 8, 3, 1, rng)));
    net.push("act1", Box::new(Relu::new()));
    net.push("pool1", Box::new(MaxPool2d::new()));
    net.push("conv2", Box::new(Conv2d::new(8, 16, 3, 1, rng)));
    net.push("act2", Box::new(Relu::new()));
    net.push("pool2", Box::new(MaxPool2d::new()));
    net.push("flat", Box::new(Flatten::new()));
    let side = img / 4;
    let feat = 16 * side * side;
    net.push("fc1", Box::new(Linear::new(feat, hidden, rng)));
    net.push("act3", Box::new(Relu::new()));
    if dropout > 0.0 {
        net.push("drop", Box::new(Dropout::new(dropout, rng.gen())));
    }
    net.push("fc2", Box::new(Linear::new(hidden, classes, rng)));
    NetModel::new(net, LossKind::SoftmaxCrossEntropy)
}

/// A two-layer graph convolutional network over *packed* fixed-size graphs.
///
/// Multi-goal FL (§3.4.2) federates research institutes owning different
/// molecular tasks; each example here is a graph with exactly `n` nodes and
/// `f` input features, packed row-major into a `[B, n*n + n*f]` tensor
/// (adjacency first, then features). The model computes
/// `readout(Â · relu(Â X W1) · W2)` followed by a task head, where `Â` is the
/// symmetric-normalized adjacency with self-loops.
///
/// Parameter names: `gconv1.weight`, `gconv2.weight` (the shared *consensus
/// set* in multi-goal courses) and `head.weight` / `head.bias` (private).
pub struct Gcn {
    n: usize,
    f: usize,
    hidden: usize,
    out: usize,
    w1: Tensor,
    w2: Tensor,
    head_w: Tensor,
    head_b: Tensor,
    loss: LossKind,
}

impl Gcn {
    /// Creates a GCN for `n`-node graphs with `f` input features.
    pub fn new(
        n: usize,
        f: usize,
        hidden: usize,
        out: usize,
        loss: LossKind,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            n,
            f,
            hidden,
            out,
            w1: init::xavier_uniform(&[f, hidden], f, hidden, rng),
            w2: init::xavier_uniform(&[hidden, hidden], hidden, hidden, rng),
            head_w: init::xavier_uniform(&[hidden, out], hidden, out, rng),
            head_b: Tensor::zeros(&[out]),
            loss,
        }
    }

    /// Packs an adjacency matrix and node features into one example row.
    pub fn pack(adj: &Tensor, feats: &Tensor) -> Vec<f32> {
        let mut row = Vec::with_capacity(adj.numel() + feats.numel());
        row.extend_from_slice(adj.data());
        row.extend_from_slice(feats.data());
        row
    }

    /// Input width expected by [`Model::predict`] for this configuration.
    pub fn input_width(&self) -> usize {
        self.n * self.n + self.n * self.f
    }

    #[allow(clippy::needless_range_loop)]
    fn norm_adj(&self, packed: &[f32]) -> Tensor {
        let n = self.n;
        let mut a = Tensor::from_vec(vec![n, n], packed[..n * n].to_vec());
        for i in 0..n {
            *a.at_mut(i, i) = 1.0; // self-loops
        }
        let mut deg = vec![0.0f32; n];
        for i in 0..n {
            deg[i] = a.row(i).iter().sum::<f32>().max(1e-6);
        }
        for i in 0..n {
            for j in 0..n {
                *a.at_mut(i, j) /= (deg[i] * deg[j]).sqrt();
            }
        }
        a
    }

    fn feats(&self, packed: &[f32]) -> Tensor {
        let off = self.n * self.n;
        Tensor::from_vec(vec![self.n, self.f], packed[off..].to_vec())
    }

    /// Forward pass over a packed batch; returns per-graph intermediates when
    /// `keep` is set (used by backward).
    #[allow(clippy::type_complexity, clippy::needless_range_loop)]
    fn forward_batch(
        &self,
        x: &Tensor,
        keep: bool,
    ) -> (Tensor, Vec<(Tensor, Tensor, Tensor, Tensor, Tensor)>) {
        assert_eq!(x.cols(), self.input_width(), "Gcn packed input width");
        let b = x.rows();
        let mut logits = Tensor::zeros(&[b, self.out]);
        let mut caches = Vec::new();
        for bi in 0..b {
            let packed = x.row(bi);
            let a = self.norm_adj(packed);
            let feats = self.feats(packed);
            let ax = a.matmul(&feats); // [n, f]
            let z1 = ax.matmul(&self.w1); // [n, hidden]
            let h1 = z1.map(|v| v.max(0.0));
            let ah1 = a.matmul(&h1); // [n, hidden]
            let h2 = ah1.matmul(&self.w2); // [n, hidden]
                                           // mean readout over nodes -> [hidden]
            let mut pooled = vec![0.0f32; self.hidden];
            for r in 0..self.n {
                for c in 0..self.hidden {
                    pooled[c] += h2.at(r, c);
                }
            }
            for p in &mut pooled {
                *p /= self.n as f32;
            }
            let pooled_t = Tensor::from_vec(vec![1, self.hidden], pooled);
            let out_row = pooled_t.matmul(&self.head_w); // [1, out]
            for c in 0..self.out {
                *logits.at_mut(bi, c) = out_row.at(0, c) + self.head_b.data()[c];
            }
            if keep {
                caches.push((a, ax, z1, ah1, pooled_t));
            }
        }
        (logits, caches)
    }
}

impl Model for Gcn {
    fn get_params(&self) -> ParamMap {
        let mut p = ParamMap::new();
        p.insert("gconv1.weight", self.w1.clone());
        p.insert("gconv2.weight", self.w2.clone());
        p.insert("head.weight", self.head_w.clone());
        p.insert("head.bias", self.head_b.clone());
        p
    }

    fn set_params(&mut self, src: &ParamMap) {
        if let Some(t) = src.get("gconv1.weight") {
            self.w1 = t.clone();
        }
        if let Some(t) = src.get("gconv2.weight") {
            self.w2 = t.clone();
        }
        if let Some(t) = src.get("head.weight") {
            self.head_w = t.clone();
        }
        if let Some(t) = src.get("head.bias") {
            self.head_b = t.clone();
        }
    }

    fn predict(&mut self, x: &Tensor) -> Tensor {
        self.forward_batch(x, false).0
    }

    fn loss_grad(&mut self, x: &Tensor, y: &Target) -> (f32, ParamMap) {
        let (logits, caches) = self.forward_batch(x, true);
        let (loss, grad_logits) = match (self.loss, y) {
            (LossKind::SoftmaxCrossEntropy, Target::Classes(c)) => {
                softmax_cross_entropy(&logits, c)
            }
            (LossKind::Mse, Target::Values(v)) => mse(&logits, v),
            (kind, _) => panic!("loss {kind:?} incompatible with target type"),
        };
        let b = x.rows();
        let mut gw1 = self.w1.zeros_like();
        let mut gw2 = self.w2.zeros_like();
        let mut ghw = self.head_w.zeros_like();
        let mut ghb = self.head_b.zeros_like();
        for (bi, (a, ax, z1, ah1, pooled)) in caches.into_iter().enumerate() {
            let go = Tensor::from_vec(vec![1, self.out], grad_logits.row(bi).to_vec());
            // head: out = pooled * head_w + head_b
            ghw.add_scaled(1.0, &pooled.t().matmul(&go));
            ghb.add_scaled(1.0, &go.reshape(&[self.out]));
            let gp = go.matmul(&self.head_w.t()); // [1, hidden]
                                                  // mean readout: each node row gets gp / n
            let mut gh2 = Tensor::zeros(&[self.n, self.hidden]);
            for r in 0..self.n {
                for c in 0..self.hidden {
                    *gh2.at_mut(r, c) = gp.at(0, c) / self.n as f32;
                }
            }
            // h2 = ah1 * w2
            gw2.add_scaled(1.0, &ah1.t().matmul(&gh2));
            let gah1 = gh2.matmul(&self.w2.t()); // [n, hidden]
                                                 // ah1 = a * h1, a symmetric normalized (a^T = a)
            let gh1 = a.t().matmul(&gah1);
            // h1 = relu(z1)
            let gz1_data: Vec<f32> = gh1
                .data()
                .iter()
                .zip(z1.data())
                .map(|(&g, &z)| if z > 0.0 { g } else { 0.0 })
                .collect();
            let gz1 = Tensor::from_vec(vec![self.n, self.hidden], gz1_data);
            // z1 = ax * w1
            gw1.add_scaled(1.0, &ax.t().matmul(&gz1));
        }
        let _ = b;
        let mut grads = ParamMap::new();
        grads.insert("gconv1.weight", gw1);
        grads.insert("gconv2.weight", gw2);
        grads.insert("head.weight", ghw);
        grads.insert("head.bias", ghb);
        (loss, grads)
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(Gcn {
            n: self.n,
            f: self.f,
            hidden: self.hidden,
            out: self.out,
            w1: self.w1.clone(),
            w2: self.w2.clone(),
            head_w: self.head_w.clone(),
            head_b: self.head_b.clone(),
            loss: self.loss,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn logistic_param_names() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = logistic_regression(5, 3, &mut rng);
        let p = m.get_params();
        let names: Vec<_> = p.names().collect();
        assert_eq!(names, vec!["fc.bias", "fc.weight"]);
        assert_eq!(p.get("fc.weight").unwrap().shape(), &[3, 5]);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = mlp(&[4, 8, 3], &mut rng);
        let zeros = m.get_params().zeros_like();
        m.set_params(&zeros);
        assert_eq!(m.get_params(), zeros);
    }

    #[test]
    fn mlp_bn_reports_buffers() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = mlp_bn(&[4, 8, 3], &mut rng);
        assert_eq!(m.buffer_keys(), vec!["bn1.running_mean", "bn1.running_var"]);
    }

    #[test]
    fn convnet_trains_on_tiny_problem() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = convnet2(1, 8, 16, 2, 0.0, &mut rng);
        // two constant images, classes 0 and 1
        let mut x = Tensor::zeros(&[2, 1, 8, 8]);
        for i in 0..64 {
            x.data_mut()[64 + i] = 1.0;
        }
        let y = Target::Classes(vec![0, 1]);
        let mut last = f32::INFINITY;
        for _ in 0..30 {
            let (loss, grads) = m.loss_grad(&x, &y);
            let mut p = m.get_params();
            p.add_scaled(-0.5, &grads);
            m.set_params(&p);
            last = loss;
        }
        assert!(last < 0.2, "convnet failed to fit: loss {last}");
    }

    #[test]
    fn mlp_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = mlp(&[3, 4, 2], &mut rng);
        let x = Tensor::from_vec(vec![2, 3], vec![0.5, -0.2, 0.8, -1.0, 0.3, 0.1]);
        let y = Target::Classes(vec![1, 0]);
        let (_, grads) = m.loss_grad(&x, &y);
        let params = m.get_params();
        let eps = 1e-2f32;
        for (name, g) in grads.iter() {
            for i in 0..g.numel().min(6) {
                let mut pp = params.clone();
                pp.get_mut(name).unwrap().data_mut()[i] += eps;
                m.set_params(&pp);
                let (lp, _) = m.loss_grad(&x, &y);
                let mut pm = params.clone();
                pm.get_mut(name).unwrap().data_mut()[i] -= eps;
                m.set_params(&pm);
                let (lm, _) = m.loss_grad(&x, &y);
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - g.data()[i]).abs() < 2e-2,
                    "{name}[{i}]: fd {fd} vs analytic {}",
                    g.data()[i]
                );
            }
        }
    }

    #[test]
    fn gcn_shapes_and_fit() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 4;
        let f = 3;
        let mut m = Gcn::new(n, f, 8, 2, LossKind::SoftmaxCrossEntropy, &mut rng);
        // two graphs: empty graph vs complete graph, distinct features
        let mut rows = Vec::new();
        for g in 0..2 {
            let mut adj = Tensor::zeros(&[n, n]);
            if g == 1 {
                for i in 0..n {
                    for j in 0..n {
                        if i != j {
                            *adj.at_mut(i, j) = 1.0;
                        }
                    }
                }
            }
            let feats = Tensor::full(&[n, f], g as f32);
            rows.push(Gcn::pack(&adj, &feats));
        }
        let width = m.input_width();
        let flat: Vec<f32> = rows.concat();
        let x = Tensor::from_vec(vec![2, width], flat);
        let y = Target::Classes(vec![0, 1]);
        let mut last = f32::INFINITY;
        for _ in 0..100 {
            let (loss, grads) = m.loss_grad(&x, &y);
            let mut p = m.get_params();
            p.add_scaled(-0.5, &grads);
            m.set_params(&p);
            last = loss;
        }
        assert!(last < 0.1, "gcn failed to fit: loss {last}");
    }

    #[test]
    fn gcn_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 3;
        let f = 2;
        let mut m = Gcn::new(n, f, 4, 2, LossKind::SoftmaxCrossEntropy, &mut rng);
        let mut adj = Tensor::zeros(&[n, n]);
        *adj.at_mut(0, 1) = 1.0;
        *adj.at_mut(1, 0) = 1.0;
        let feats = Tensor::from_vec(vec![n, f], vec![0.5, -0.3, 0.2, 0.8, -0.1, 0.4]);
        let row = Gcn::pack(&adj, &feats);
        let x = Tensor::from_vec(vec![1, m.input_width()], row);
        let y = Target::Classes(vec![1]);
        let (_, grads) = m.loss_grad(&x, &y);
        let params = m.get_params();
        let eps = 1e-2f32;
        for (name, g) in grads.iter() {
            for i in 0..g.numel().min(4) {
                let mut pp = params.clone();
                pp.get_mut(name).unwrap().data_mut()[i] += eps;
                m.set_params(&pp);
                let (lp, _) = m.loss_grad(&x, &y);
                let mut pm = params.clone();
                pm.get_mut(name).unwrap().data_mut()[i] -= eps;
                m.set_params(&pm);
                let (lm, _) = m.loss_grad(&x, &y);
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - g.data()[i]).abs() < 2e-2,
                    "{name}[{i}]: fd {fd} vs analytic {}",
                    g.data()[i]
                );
            }
        }
        m.set_params(&params);
    }

    #[test]
    fn metrics_weighted_merge() {
        let a = Metrics {
            loss: 1.0,
            accuracy: 0.5,
            n: 10,
        };
        let b = Metrics {
            loss: 3.0,
            accuracy: 1.0,
            n: 30,
        };
        let m = Metrics::weighted_merge(&[a, b]);
        assert!((m.loss - 2.5).abs() < 1e-6);
        assert!((m.accuracy - 0.875).abs() < 1e-6);
        assert_eq!(m.n, 40);
        assert_eq!(Metrics::weighted_merge(&[]), Metrics::default());
    }

    #[test]
    fn metrics_serde_roundtrip_and_display() {
        use serde::{Deserialize, Serialize};
        let m = Metrics {
            loss: 0.25,
            accuracy: 0.875,
            n: 40,
        };
        let back = Metrics::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
        assert_eq!(m.to_string(), "loss=0.2500 acc=0.8750 n=40");
    }
}
