// FSA002 fixture: wall-clock reads on a sim-charged path.
pub fn stamp() -> std::time::Duration {
    let t0 = std::time::Instant::now();
    let _ = std::time::SystemTime::now();
    t0.elapsed()
}
