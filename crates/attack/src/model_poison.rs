//! Model-poisoning attacks.
//!
//! Instead of (or in addition to) poisoning data, a malicious client can
//! manipulate the *update* it returns:
//!
//! * [`model_replacement`] — scale the malicious delta so it survives
//!   averaging with `n` benign updates (`theta_mal = global + n * delta`),
//!   effectively replacing the global model;
//! * [`neurotoxin_mask`] — Neurotoxin: project the malicious delta onto the
//!   coordinates the benign population updates *least*, so later benign
//!   training does not overwrite the backdoor.

use fs_tensor::ParamMap;

/// Scales a malicious update for model replacement: given the current global
/// parameters and the attacker's desired parameters, returns the update to
/// submit so that after weighted averaging with `n_participants` equal-weight
/// updates the global lands (approximately) on the desired model.
pub fn model_replacement(global: &ParamMap, desired: &ParamMap, n_participants: usize) -> ParamMap {
    let boost = n_participants.max(1) as f32;
    let mut delta = desired.sub(global);
    delta.scale(boost);
    let mut out = global.clone();
    out.add_scaled(1.0, &delta);
    out
}

/// Applies the Neurotoxin mask: zeroes the malicious delta on the fraction
/// `top_frac` of coordinates with the largest benign-update magnitude,
/// keeping only rarely-updated coordinates. Returns the masked update
/// (as full parameters, like a normal client update).
pub fn neurotoxin_mask(
    global: &ParamMap,
    malicious: &ParamMap,
    benign_reference_delta: &ParamMap,
    top_frac: f32,
) -> ParamMap {
    assert!((0.0..=1.0).contains(&top_frac), "top_frac in [0,1]");
    // global magnitude threshold across all coordinates
    let mut mags: Vec<f32> = benign_reference_delta
        .iter()
        .flat_map(|(_, t)| t.data().iter().map(|v| v.abs()))
        .collect();
    if mags.is_empty() {
        return malicious.clone();
    }
    mags.sort_by(|a, b| b.partial_cmp(a).expect("finite magnitudes"));
    let cut = ((mags.len() as f32) * top_frac).floor() as usize;
    // mask exactly the `cut` hottest coordinates
    let threshold = if cut == 0 {
        f32::INFINITY
    } else {
        mags[cut - 1]
    };
    let mut out = malicious.clone();
    for (k, t) in out.iter_mut() {
        let (Some(g), Some(b)) = (global.get(k), benign_reference_delta.get(k)) else {
            continue;
        };
        for i in 0..t.numel() {
            if b.data()[i].abs() >= threshold {
                // heavily-updated coordinate: revert to the global value
                t.data_mut()[i] = g.data()[i];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_core::aggregator::{Aggregator, FedAvg, ReceivedUpdate};
    use fs_tensor::Tensor;

    fn p(v: &[f32]) -> ParamMap {
        let mut m = ParamMap::new();
        m.insert("w", Tensor::from_vec(vec![v.len()], v.to_vec()));
        m
    }

    #[test]
    fn replacement_survives_averaging() {
        let global = p(&[0.0, 0.0]);
        let desired = p(&[1.0, -1.0]);
        let n = 5;
        let mal = model_replacement(&global, &desired, n);
        // aggregate the boosted update with n-1 benign no-op updates
        let mut agg = FedAvg::new(0.0);
        let mut updates: Vec<ReceivedUpdate> = (0..n - 1)
            .map(|i| ReceivedUpdate {
                client: i as u32 + 1,
                params: global.clone(),
                staleness: 0,
                n_samples: 10,
                n_steps: 4,
            })
            .collect();
        updates.push(ReceivedUpdate {
            client: 99,
            params: mal,
            staleness: 0,
            n_samples: 10,
            n_steps: 4,
        });
        let next = agg.aggregate(&global, &updates);
        let w = next.get("w").unwrap();
        assert!((w.data()[0] - 1.0).abs() < 1e-5, "got {:?}", w.data());
        assert!((w.data()[1] + 1.0).abs() < 1e-5);
    }

    #[test]
    fn neurotoxin_keeps_only_cold_coordinates() {
        let global = p(&[0.0, 0.0, 0.0, 0.0]);
        let malicious = p(&[9.0, 9.0, 9.0, 9.0]);
        // benign delta is hot on coords 0 and 1
        let benign = p(&[5.0, 4.0, 0.01, 0.0]);
        let masked = neurotoxin_mask(&global, &malicious, &benign, 0.5);
        let w = masked.get("w").unwrap();
        assert_eq!(w.data()[0], 0.0, "hot coordinate reverted");
        assert_eq!(w.data()[1], 0.0, "hot coordinate reverted");
        assert_eq!(w.data()[2], 9.0, "cold coordinate kept");
        assert_eq!(w.data()[3], 9.0, "cold coordinate kept");
    }

    #[test]
    fn zero_top_frac_keeps_everything() {
        let global = p(&[0.0]);
        let malicious = p(&[7.0]);
        let benign = p(&[100.0]);
        let masked = neurotoxin_mask(&global, &malicious, &benign, 0.0);
        assert_eq!(masked.get("w").unwrap().data(), &[7.0]);
    }
}
