//! Random search (Bergstra & Bengio) — the paper's RS baseline.

use crate::objective::{Objective, TrialResult};
use crate::space::{Config, SearchSpace};
use rand::Rng;

/// One point on the best-seen-so-far curve (Figure 14's y-axis).
#[derive(Clone, Copy, Debug)]
pub struct BestSeen {
    /// Total rounds spent so far across all trials.
    pub cumulative_cost: u64,
    /// Best validation loss observed so far.
    pub best_val_loss: f64,
}

/// Outcome of a search: the best configuration, its result, and the
/// best-seen trace.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The best configuration found.
    pub best_config: Config,
    /// Its trial result.
    pub best_result: TrialResult,
    /// Best-seen validation loss after each trial.
    pub trace: Vec<BestSeen>,
}

/// Runs random search: `n_trials` independent samples, each evaluated with
/// `budget_per_trial` rounds.
pub fn random_search(
    space: &SearchSpace,
    objective: &mut dyn Objective,
    n_trials: usize,
    budget_per_trial: u64,
    rng: &mut impl Rng,
) -> SearchOutcome {
    assert!(n_trials > 0, "need at least one trial");
    let mut best: Option<(Config, TrialResult)> = None;
    let mut trace = Vec::with_capacity(n_trials);
    let mut spent = 0u64;
    for _ in 0..n_trials {
        let cfg = space.sample(rng);
        let (result, _ck) = objective.run(&cfg, budget_per_trial, None);
        spent += result.cost;
        let better = best
            .as_ref()
            .is_none_or(|(_, b)| result.val_loss < b.val_loss);
        if better {
            best = Some((cfg, result.clone()));
        }
        trace.push(BestSeen {
            cumulative_cost: spent,
            best_val_loss: best.as_ref().expect("set above").1.val_loss,
        });
    }
    let (best_config, best_result) = best.expect("n_trials > 0");
    SearchOutcome {
        best_config,
        best_result,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::QuadraticObjective;
    use crate::space::Param;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_near_optimal_lr() {
        let space = SearchSpace::new().with(
            "lr",
            Param::Float {
                lo: 0.01,
                hi: 1.0,
                log: false,
            },
        );
        let mut obj = QuadraticObjective;
        let mut rng = StdRng::seed_from_u64(3);
        let out = random_search(&space, &mut obj, 50, 10, &mut rng);
        assert!(
            (out.best_config["lr"] - 0.3).abs() < 0.1,
            "best lr {}",
            out.best_config["lr"]
        );
    }

    #[test]
    fn trace_is_monotone_nonincreasing() {
        let space = SearchSpace::new().with(
            "lr",
            Param::Float {
                lo: 0.01,
                hi: 1.0,
                log: false,
            },
        );
        let mut obj = QuadraticObjective;
        let mut rng = StdRng::seed_from_u64(4);
        let out = random_search(&space, &mut obj, 20, 5, &mut rng);
        assert_eq!(out.trace.len(), 20);
        for w in out.trace.windows(2) {
            assert!(w[1].best_val_loss <= w[0].best_val_loss);
            assert!(w[1].cumulative_cost > w[0].cumulative_cost);
        }
    }
}
