//! # fs-analyze — workspace determinism & panic-safety lints
//!
//! The repo's guarantees — bit-identical serial/parallel/scale runs, seeded
//! fault injection, monitor counters that reconcile with `CourseReport` by
//! construction — rest on source-level invariants nothing else enforces:
//! no ambient RNG, no wall-clock on sim-charged paths, no order-sensitive
//! map iteration, no panics in the distributed runtime. fs-verify checks
//! *courses and configs*; this crate checks *source*, on every PR.
//!
//! The pipeline:
//!
//! 1. [`lexer`] — a self-contained Rust tokenizer (no `syn`, no registry
//!    access): identifiers, literals, comments, with exact line numbers.
//! 2. [`lints`] — token-pattern and scope-tracking lints emitting stable
//!    `FSAnnn` [`diag::Finding`]s, graded by [`policy`] tier
//!    (Runtime / Library / Bench) and test context.
//! 3. [`pragma`] — `// fsa::allow(FSA0nn, reason)` suppressions, policed by
//!    their own hygiene codes.
//! 4. [`baseline`] — the `ANALYZE_baseline.json` debt ratchet: new findings
//!    fail CI, counts only go down.
//!
//! The `fsa` binary drives it: `cargo run -p fs-analyze --bin fsa -- --check`.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod baseline;
pub mod diag;
pub mod lexer;
pub mod lints;
pub mod policy;
pub mod pragma;
pub mod walk;

pub use baseline::{ratchet, Baseline, BaselineEntry, RatchetOutcome};
pub use diag::{AnalyzeReport, Code, Finding, Severity, ALL_CODES};
pub use lints::{analyze_source, FileContext};
pub use policy::{charged_crate, grade, tier_for_crate, Tier};

use std::fs;
use std::io;
use std::path::Path;

/// Derives the analysis context for a workspace-relative path.
pub fn context_for(rel_path: &str) -> FileContext {
    let crate_name = match rel_path.strip_prefix("crates/") {
        Some(rest) => {
            let dir = rest.split('/').next().unwrap_or("");
            format!("fs-{dir}")
        }
        None => "fedscope".to_string(),
    };
    let force_test = rel_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches");
    let tier = tier_for_crate(&crate_name);
    // examples are CLI-shaped regardless of their crate
    let tier = if rel_path.split('/').any(|seg| seg == "examples") {
        Tier::Bench
    } else {
        tier
    };
    FileContext {
        path: rel_path.to_string(),
        charged: charged_crate(&crate_name),
        crate_name,
        tier,
        force_test,
    }
}

/// Analyzes the whole workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> io::Result<AnalyzeReport> {
    let mut report = AnalyzeReport::new();
    for rel in walk::workspace_files(root)? {
        let rel_str = rel
            .to_str()
            .map(|s| s.replace('\\', "/"))
            .unwrap_or_else(|| rel.to_string_lossy().into_owned());
        let src = fs::read_to_string(root.join(&rel))?;
        let ctx = context_for(&rel_str);
        report.extend(analyze_source(&src, &ctx));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_mapping() {
        let c = context_for("crates/net/src/tcp.rs");
        assert_eq!(c.crate_name, "fs-net");
        assert_eq!(c.tier, Tier::Runtime);
        assert!(!c.charged && !c.force_test);

        let c = context_for("crates/sim/src/time.rs");
        assert!(c.charged);

        let c = context_for("crates/tensor/tests/gradcheck.rs");
        assert_eq!(c.tier, Tier::Library);
        assert!(c.force_test);

        let c = context_for("examples/quickstart.rs");
        assert_eq!(c.crate_name, "fedscope");
        assert_eq!(c.tier, Tier::Bench);

        let c = context_for("tests/end_to_end.rs");
        assert!(c.force_test);
        assert_eq!(c.tier, Tier::Bench);
    }
}
