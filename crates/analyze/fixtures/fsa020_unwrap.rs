// FSA020 fixture: unwrap on a runtime path.
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
