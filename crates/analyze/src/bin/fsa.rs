//! `fsa` — the fs-analyze CLI.
//!
//! ```text
//! fsa --check [--root DIR]             # lint + ratchet against ANALYZE_baseline.json (CI gate)
//! fsa --list [--notes] [--root DIR]    # print every finding, baselined or not
//! fsa --update-baseline [--root DIR]   # freeze current gating findings into the baseline
//! ```
//!
//! Exit codes: 0 clean / ratchet holds, 1 new findings or invalid baseline,
//! 2 usage error.

use fs_analyze::{analyze_workspace, ratchet, AnalyzeReport, Baseline, Severity};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const BASELINE_FILE: &str = "ANALYZE_baseline.json";

enum Mode {
    Check,
    List,
    UpdateBaseline,
}

fn main() -> ExitCode {
    let mut mode = None;
    let mut root = PathBuf::from(".");
    let mut notes = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => mode = Some(Mode::Check),
            "--list" => mode = Some(Mode::List),
            "--update-baseline" => mode = Some(Mode::UpdateBaseline),
            "--notes" => notes = true,
            "--root" => match args.next() {
                Some(r) => root = PathBuf::from(r),
                None => return usage("--root needs a directory"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let Some(mode) = mode else {
        return usage("one of --check, --list, --update-baseline is required");
    };
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "fsa: {} does not look like a workspace root",
            root.display()
        );
        return ExitCode::from(2);
    }

    let report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fsa: workspace scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    match mode {
        Mode::List => {
            for f in &report.findings {
                if f.severity > Severity::Note || notes {
                    println!("{}", f.render());
                }
            }
            print_tally(&report);
            ExitCode::SUCCESS
        }
        Mode::UpdateBaseline => {
            let b = Baseline::from_findings(report.findings.iter());
            let path = root.join(BASELINE_FILE);
            let mut json = b.to_json();
            json.push('\n');
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("fsa: writing {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!(
                "froze {} finding(s) across {} (file, code) pair(s) into {}",
                b.total,
                b.entries.len(),
                path.display()
            );
            ExitCode::SUCCESS
        }
        Mode::Check => check(&root, &report, notes),
    }
}

fn check(root: &Path, report: &AnalyzeReport, notes: bool) -> ExitCode {
    let path = root.join(BASELINE_FILE);
    let baseline = match std::fs::read_to_string(&path) {
        Ok(s) => match Baseline::from_json(&s) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("fsa: {} is invalid: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!(
                "fsa: cannot read {} ({e}); run `fsa --update-baseline` once and commit it",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let outcome = ratchet(&report.findings, &baseline);
    if notes {
        for f in &report.findings {
            if f.severity == Severity::Note {
                println!("{}", f.render());
            }
        }
    }
    for (file, code, was, now) in &outcome.improved {
        println!(
            "improved: {file} {code}: {was} -> {now} (re-freeze with --update-baseline to lock in)"
        );
    }
    print_tally(report);
    if outcome.passes() {
        println!(
            "ratchet holds: {} gating finding(s), all within {}",
            report.gating().len(),
            BASELINE_FILE
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("new findings exceed the baseline:");
        for f in &outcome.new {
            eprintln!("  {}", f.render());
        }
        eprintln!(
            "fix them, add an `// fsa::allow(CODE, reason)` pragma, or (for accepted debt) \
             re-freeze with `fsa --update-baseline`"
        );
        ExitCode::FAILURE
    }
}

fn print_tally(report: &AnalyzeReport) {
    let (e, w, n) = report.tally();
    println!("{e} error(s), {w} warning(s), {n} note(s)");
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("fsa: {msg}");
    eprintln!("usage: fsa (--check | --list | --update-baseline) [--root DIR] [--notes]");
    ExitCode::from(2)
}
