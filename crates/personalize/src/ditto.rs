//! Ditto: fair and robust personalization through a proximal personal model.
//!
//! Each client keeps two models: the *global-track* model, trained exactly
//! like FedAvg and shared with the server, and a *personal* model, trained on
//! the same data with an extra proximal pull `lambda/2 * ||v - w_global||^2`
//! toward the received global parameters. Evaluation uses the personal model;
//! the paper notes Ditto costs extra local computation but no extra
//! communication (§5.3.2).

use fs_core::trainer::{LocalUpdate, ShareFilter, TrainConfig, Trainer};
use fs_data::ClientSplit;
use fs_tensor::model::{Metrics, Model};
use fs_tensor::optim::{Sgd, SgdConfig};
use fs_tensor::ParamMap;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The Ditto trainer.
pub struct DittoTrainer {
    global_track: Box<dyn Model>,
    personal: Box<dyn Model>,
    data: ClientSplit,
    cfg: TrainConfig,
    /// Proximal strength pulling the personal model toward the global.
    pub lambda: f32,
    share: ShareFilter,
    opt_global: Sgd,
    opt_personal: Sgd,
    rng: StdRng,
}

impl DittoTrainer {
    /// Creates a Ditto trainer; `model` seeds both the global-track and the
    /// personal model.
    pub fn new(
        model: Box<dyn Model>,
        data: ClientSplit,
        cfg: TrainConfig,
        lambda: f32,
        share: ShareFilter,
        seed: u64,
    ) -> Self {
        let personal = model.clone_model();
        let opt_global = Sgd::new(cfg.sgd);
        let personal_cfg = SgdConfig {
            prox_mu: lambda,
            ..cfg.sgd
        };
        let opt_personal = Sgd::new(personal_cfg);
        Self {
            global_track: model,
            personal,
            data,
            cfg,
            lambda,
            share,
            opt_global,
            opt_personal,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The personal model (for inspection).
    pub fn personal_model(&self) -> &dyn Model {
        self.personal.as_ref()
    }

    fn sgd_steps(
        model: &mut Box<dyn Model>,
        opt: &mut Sgd,
        data: &ClientSplit,
        steps: usize,
        batch: usize,
        anchor: Option<&ParamMap>,
        rng: &mut StdRng,
    ) {
        for _ in 0..steps {
            let b = data.train.sample_batch(batch, rng);
            if b.is_empty() {
                return;
            }
            let (_, grads) = model.loss_grad(&b.x, &b.y);
            let mut params = model.get_params();
            opt.step(&mut params, &grads, anchor);
            model.set_params(&params);
        }
    }
}

impl Trainer for DittoTrainer {
    fn incorporate(&mut self, global: &ParamMap) {
        let mut p = self.global_track.get_params();
        p.merge_from(global);
        self.global_track.set_params(&p);
    }

    fn local_train(&mut self, global: &ParamMap, _round: u64) -> LocalUpdate {
        self.incorporate(global);
        // (1) global-track update: plain local SGD, shared with the server
        Self::sgd_steps(
            &mut self.global_track,
            &mut self.opt_global,
            &self.data,
            self.cfg.local_steps,
            self.cfg.batch_size,
            None,
            &mut self.rng,
        );
        // (2) personal update: proximal pull toward the *received* global
        Self::sgd_steps(
            &mut self.personal,
            &mut self.opt_personal,
            &self.data,
            self.cfg.local_steps,
            self.cfg.batch_size,
            Some(global),
            &mut self.rng,
        );
        let share = self.share.clone();
        LocalUpdate {
            params: self.global_track.get_params().filter(|k| share(k)),
            n_samples: self.data.train.len() as u64,
            n_steps: self.cfg.local_steps as u64,
            // Ditto doubles local computation
            examples_processed: 2 * self.cfg.local_steps * self.cfg.batch_size,
        }
    }

    fn evaluate_val(&mut self) -> Metrics {
        if self.data.val.is_empty() {
            return Metrics::default();
        }
        self.personal.evaluate(&self.data.val.x, &self.data.val.y)
    }

    fn evaluate_test(&mut self) -> Metrics {
        if self.data.test.is_empty() {
            return Metrics::default();
        }
        self.personal.evaluate(&self.data.test.x, &self.data.test.y)
    }

    fn num_train_samples(&self) -> usize {
        self.data.train.len()
    }

    fn set_sgd_config(&mut self, cfg: SgdConfig) {
        self.cfg.sgd = cfg;
        self.opt_global.set_config(cfg);
        self.opt_personal.set_config(SgdConfig {
            prox_mu: self.lambda,
            ..cfg
        });
    }

    fn try_clone(&self) -> Option<Box<dyn Trainer>> {
        Some(Box::new(Self {
            global_track: self.global_track.clone_model(),
            personal: self.personal.clone_model(),
            data: self.data.clone(),
            cfg: self.cfg.clone(),
            lambda: self.lambda,
            share: self.share.clone(),
            opt_global: self.opt_global.clone(),
            opt_personal: self.opt_personal.clone(),
            rng: self.rng.clone(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_core::trainer::share_all;
    use fs_data::synth::{twitter_like, TwitterConfig};
    use fs_tensor::model::logistic_regression;

    fn setup() -> DittoTrainer {
        let d = twitter_like(&TwitterConfig {
            num_clients: 2,
            per_client: 30,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(0);
        let model = logistic_regression(d.input_dim(), 2, &mut rng);
        DittoTrainer::new(
            Box::new(model),
            d.clients[0].clone(),
            TrainConfig {
                local_steps: 6,
                batch_size: 4,
                sgd: SgdConfig::with_lr(0.5),
            },
            0.5,
            share_all(),
            3,
        )
    }

    #[test]
    fn shares_global_track_not_personal() {
        let mut t = setup();
        let global = t.global_track.get_params();
        let personal_before = t.personal.get_params();
        let up = t.local_train(&global, 0);
        // personal model changed but is not what was shared
        let personal_after = t.personal.get_params();
        assert_ne!(personal_before, personal_after);
        assert_ne!(up.params, personal_after);
    }

    #[test]
    fn reports_double_compute() {
        let mut t = setup();
        let global = t.global_track.get_params();
        let up = t.local_train(&global, 0);
        assert_eq!(up.examples_processed, 2 * 6 * 4);
    }

    #[test]
    fn personal_model_stays_near_global_with_large_lambda() {
        let d = twitter_like(&TwitterConfig {
            num_clients: 1,
            per_client: 30,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(0);
        let model = logistic_regression(d.input_dim(), 2, &mut rng);
        let mut strong = DittoTrainer::new(
            model.clone_model(),
            d.clients[0].clone(),
            TrainConfig {
                local_steps: 10,
                batch_size: 4,
                sgd: SgdConfig::with_lr(0.1),
            },
            2.0,
            share_all(),
            3,
        );
        let mut weak = DittoTrainer::new(
            Box::new(model),
            d.clients[0].clone(),
            TrainConfig {
                local_steps: 10,
                batch_size: 4,
                sgd: SgdConfig::with_lr(0.1),
            },
            0.0,
            share_all(),
            3,
        );
        let global = strong.global_track.get_params();
        strong.local_train(&global, 0);
        weak.local_train(&global, 0);
        let d_strong = strong.personal.get_params().sq_dist(&global);
        let d_weak = weak.personal.get_params().sq_dist(&global);
        assert!(
            d_strong < d_weak,
            "lambda=50 drift {d_strong} should be below lambda=0 drift {d_weak}"
        );
    }

    #[test]
    fn evaluate_uses_personal_model() {
        let mut t = setup();
        let global = t.global_track.get_params();
        for r in 0..5 {
            t.local_train(&global, r);
        }
        let m = t.evaluate_test();
        assert!(m.n > 0);
    }
}
