//! Criterion: Paillier keygen / encrypt / decrypt / homomorphic add.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fs_privacy::paillier::keygen;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_paillier(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier");
    group.sample_size(10);
    for bits in [128usize, 256] {
        let mut rng = StdRng::seed_from_u64(1);
        let (pk, sk) = keygen(bits, &mut rng);
        let ct = pk.encrypt_u64(12345, &mut rng);
        let ct2 = pk.encrypt_u64(67890, &mut rng);
        group.bench_with_input(BenchmarkId::new("encrypt", bits), &pk, |b, pk| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| pk.encrypt_u64(std::hint::black_box(42), &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("decrypt", bits), &ct, |b, ct| {
            b.iter(|| sk.decrypt_u64(std::hint::black_box(ct)))
        });
        group.bench_with_input(
            BenchmarkId::new("hom_add", bits),
            &(ct, ct2),
            |b, (a, bb)| b.iter(|| pk.add(std::hint::black_box(a), std::hint::black_box(bb))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_paillier);
criterion_main!(benches);
