// FSA001 fixture: ambient RNG calls break seeded replay.
pub fn draw() -> u64 {
    let mut rng = rand::thread_rng();
    let other = rand::rngs::StdRng::from_entropy();
    rng.gen::<u64>() ^ other.gen::<u64>()
}
