//! Label partitioners used by the synthetic generators.
//!
//! These mirror the splits the paper evaluates on: IID (uniform labels per
//! client) and the Dirichlet label-skew split of Hsu et al. used for CIFAR-10
//! (§5.2, Appendix G), plus the Appendix-I "bias" assignment where chosen rare
//! labels exist only on a designated slow-client subset.

use rand::Rng;
use rand_distr::{Distribution, Gamma};

/// Samples a probability vector from `Dirichlet(alpha * 1)` of length `k`.
///
/// Implemented via normalized Gamma draws (the standard construction), so we
/// only need `rand_distr`'s Gamma.
pub fn dirichlet(alpha: f64, k: usize, rng: &mut impl Rng) -> Vec<f64> {
    assert!(alpha > 0.0, "Dirichlet alpha must be positive");
    assert!(k > 0, "Dirichlet dimension must be positive");
    let gamma = Gamma::new(alpha, 1.0).expect("valid gamma");
    let mut draws: Vec<f64> = (0..k).map(|_| gamma.sample(rng).max(1e-12)).collect();
    let sum: f64 = draws.iter().sum();
    for d in &mut draws {
        *d /= sum;
    }
    draws
}

/// Per-client label distributions.
#[derive(Clone, Debug)]
pub struct LabelPartition {
    /// `dist[c][y]` = probability client `c` draws label `y`.
    pub dist: Vec<Vec<f64>>,
}

impl LabelPartition {
    /// IID: every client draws labels uniformly.
    pub fn iid(num_clients: usize, num_classes: usize) -> Self {
        let row = vec![1.0 / num_classes as f64; num_classes];
        Self {
            dist: vec![row; num_clients],
        }
    }

    /// Dirichlet(α) label skew: each client's label distribution is an
    /// independent Dirichlet draw. Smaller α means more skew.
    pub fn dirichlet(
        num_clients: usize,
        num_classes: usize,
        alpha: f64,
        rng: &mut impl Rng,
    ) -> Self {
        let dist = (0..num_clients)
            .map(|_| dirichlet(alpha, num_classes, rng))
            .collect();
        Self { dist }
    }

    /// The Appendix-I bias split: labels in `rare_labels` are owned *only* by
    /// clients with index `>= slow_start` (the slow group); fast clients
    /// redistribute that mass uniformly over the remaining labels. Slow
    /// clients are skewed toward the rare labels by `rare_boost`.
    pub fn biased(
        num_clients: usize,
        num_classes: usize,
        rare_labels: &[usize],
        slow_start: usize,
        rare_boost: f64,
    ) -> Self {
        assert!(slow_start <= num_clients, "slow_start out of range");
        assert!(
            rare_labels.iter().all(|&y| y < num_classes),
            "rare label out of range"
        );
        let is_rare = |y: usize| rare_labels.contains(&y);
        let n_rare = rare_labels.len();
        let n_common = num_classes - n_rare;
        let mut dist = Vec::with_capacity(num_clients);
        for c in 0..num_clients {
            let slow = c >= slow_start;
            let mut row = vec![0.0f64; num_classes];
            for (y, p) in row.iter_mut().enumerate() {
                *p = if is_rare(y) {
                    if slow {
                        rare_boost / n_rare.max(1) as f64
                    } else {
                        0.0
                    }
                } else if slow {
                    (1.0 - rare_boost) / n_common.max(1) as f64
                } else {
                    1.0 / n_common.max(1) as f64
                };
            }
            dist.push(row);
        }
        Self { dist }
    }

    /// Samples one label for client `c`.
    pub fn sample_label(&self, c: usize, rng: &mut impl Rng) -> usize {
        let row = &self.dist[c];
        let mut u: f64 = rng.gen();
        for (y, &p) in row.iter().enumerate() {
            if u < p {
                return y;
            }
            u -= p;
        }
        row.len() - 1
    }

    /// Number of clients in the partition.
    pub fn num_clients(&self) -> usize {
        self.dist.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(0);
        for alpha in [0.1, 1.0, 10.0] {
            let d = dirichlet(alpha, 10, &mut rng);
            let sum: f64 = d.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(d.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn small_alpha_is_more_skewed() {
        let mut rng = StdRng::seed_from_u64(1);
        let max_small: f64 = (0..50)
            .map(|_| dirichlet(0.1, 10, &mut rng).into_iter().fold(0.0, f64::max))
            .sum::<f64>()
            / 50.0;
        let max_large: f64 = (0..50)
            .map(|_| {
                dirichlet(10.0, 10, &mut rng)
                    .into_iter()
                    .fold(0.0, f64::max)
            })
            .sum::<f64>()
            / 50.0;
        assert!(
            max_small > max_large + 0.2,
            "expected alpha=0.1 ({max_small}) more peaked than alpha=10 ({max_large})"
        );
    }

    #[test]
    fn iid_partition_uniform() {
        let p = LabelPartition::iid(3, 4);
        assert_eq!(p.num_clients(), 3);
        assert!(p
            .dist
            .iter()
            .all(|r| r.iter().all(|&v| (v - 0.25).abs() < 1e-12)));
    }

    #[test]
    fn biased_partition_keeps_rare_off_fast_clients() {
        let p = LabelPartition::biased(10, 5, &[4], 7, 0.5);
        for c in 0..7 {
            assert_eq!(p.dist[c][4], 0.0, "fast client {c} owns rare label");
        }
        for c in 7..10 {
            assert!(p.dist[c][4] > 0.4);
        }
        for row in &p.dist {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sample_label_respects_distribution() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = LabelPartition::iid(1, 3);
        p.dist[0] = vec![0.0, 1.0, 0.0];
        for _ in 0..20 {
            assert_eq!(p.sample_label(0, &mut rng), 1);
        }
    }
}
