//! Course assembly for the scale runner.
//!
//! [`ScaleCourseBuilder`] mirrors `fs_core::CourseBuilder` decision for
//! decision — same validation messages, same RNG draws in the same order,
//! same sampler/evaluator/aggregator wiring — so a course built here is the
//! *same course*, just executed by the lazy runner. The one structural
//! difference: clients are described by a data *source* (a shared dataset or
//! a closure from client index to split) instead of being constructed up
//! front, which is what makes million-client courses representable at all.
//!
//! [`build_course`] dispatches on [`ExecutionMode`] so callers holding an
//! ordinary [`FedDataset`] can switch runners with one config field.

use crate::runner::{ClientFactory, ScaleRunner};
use fs_core::aggregator::FedAvg;
use fs_core::config::{AggregationRule, ExecutionMode, FlConfig, SamplerKind};
use fs_core::course::{CourseBuilder, ModelFactory};
use fs_core::eval::GlobalEvaluator;
use fs_core::sampler::Sampler;
use fs_core::trainer::{pooled_test_set, share_all, ShareFilter, TrainConfig};
use fs_core::{CourseReport, Server, StandaloneRunner};
use fs_data::{ClientSplit, FedDataset};
use fs_monitor::MonitorHandle;
use fs_sim::{Fleet, FleetConfig};
use fs_verify::VerifyReport;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Where client splits come from.
enum DataSource {
    /// A fully materialized dataset (splits cloned per activation).
    Dataset(Arc<FedDataset>),
    /// A deterministic closure: client index → split. The only viable form
    /// at millions of clients — data exists only while its client is active.
    Closure(Arc<dyn Fn(usize) -> ClientSplit + Send + Sync>),
}

/// Assembles courses for the [`ScaleRunner`].
pub struct ScaleCourseBuilder {
    source: DataSource,
    num_clients: usize,
    cfg: FlConfig,
    fleet: Option<Fleet>,
    fleet_cfg: FleetConfig,
    model_factory: ModelFactory,
    share: ShareFilter,
    sampler_override: Option<Sampler>,
    central_eval: bool,
    eval_cap_per_client: usize,
    detect_perf_drop: bool,
}

impl ScaleCourseBuilder {
    /// Starts a builder from a materialized dataset — the drop-in analogue
    /// of `CourseBuilder::new`, producing a bit-identical course.
    pub fn from_dataset(
        dataset: Arc<FedDataset>,
        model_factory: ModelFactory,
        cfg: FlConfig,
    ) -> Self {
        let num_clients = dataset.num_clients();
        let fleet_cfg = FleetConfig {
            num_clients,
            seed: cfg.seed ^ 0xf1ee,
            ..Default::default()
        };
        Self {
            source: DataSource::Dataset(dataset),
            num_clients,
            cfg,
            fleet: None,
            fleet_cfg,
            model_factory,
            share: share_all(),
            sampler_override: None,
            central_eval: true,
            eval_cap_per_client: 20,
            detect_perf_drop: false,
        }
    }

    /// Starts a builder over `num_clients` splits produced on demand by
    /// `data`. No centralized evaluator (pooling a million test splits is
    /// exactly the materialization this crate exists to avoid); the course
    /// history stays empty unless one is impractical to want at this scale.
    pub fn synthetic(
        num_clients: usize,
        data: Arc<dyn Fn(usize) -> ClientSplit + Send + Sync>,
        model_factory: ModelFactory,
        cfg: FlConfig,
    ) -> Self {
        let fleet_cfg = FleetConfig {
            num_clients,
            seed: cfg.seed ^ 0xf1ee,
            ..Default::default()
        };
        Self {
            source: DataSource::Closure(data),
            num_clients,
            cfg,
            fleet: None,
            fleet_cfg,
            model_factory,
            share: share_all(),
            sampler_override: None,
            central_eval: false,
            eval_cap_per_client: 20,
            detect_perf_drop: false,
        }
    }

    /// Uses an explicit fleet instead of generating one.
    pub fn fleet(mut self, fleet: Fleet) -> Self {
        self.fleet = Some(fleet);
        self
    }

    /// Adjusts the generated fleet's configuration.
    pub fn fleet_config(mut self, cfg: FleetConfig) -> Self {
        self.fleet_cfg = cfg;
        self
    }

    /// Sets the parameter-sharing filter (personalization / multi-goal).
    pub fn share_filter(mut self, share: ShareFilter) -> Self {
        self.share = share;
        self
    }

    /// Replaces the sampler derived from `cfg.sampler`.
    pub fn sampler(mut self, s: Sampler) -> Self {
        self.sampler_override = Some(s);
        self
    }

    /// Disables the centralized evaluator.
    pub fn no_central_eval(mut self) -> Self {
        self.central_eval = false;
        self
    }

    /// Enables client-side `performance_drop` detection.
    pub fn detect_perf_drop(mut self) -> Self {
        self.detect_perf_drop = true;
        self
    }

    // Same checks, same messages as `CourseBuilder::validate`.
    fn validate(&self) {
        let n = self.num_clients;
        assert!(n > 0, "dataset has no clients");
        assert!(
            self.cfg.sample_target() <= n,
            "sample target {} exceeds client count {n}",
            self.cfg.sample_target()
        );
        match self.cfg.rule {
            AggregationRule::GoalAchieved { goal } => {
                assert!(goal >= 1, "aggregation goal must be >= 1");
                assert!(
                    goal <= self.cfg.sample_target(),
                    "goal {goal} can never be reached with sample target {}",
                    self.cfg.sample_target()
                );
            }
            AggregationRule::TimeUp {
                budget_secs,
                min_feedback,
            } => {
                assert!(budget_secs > 0.0, "time budget must be positive");
                assert!(
                    min_feedback <= self.cfg.sample_target(),
                    "min_feedback {min_feedback} exceeds sample target {}",
                    self.cfg.sample_target()
                );
            }
            AggregationRule::AllReceived => {}
        }
    }

    /// Builds the scale runner. Every RNG draw and derived quantity happens
    /// in exactly the order `CourseBuilder::build` performs them.
    pub fn build(self) -> ScaleRunner {
        self.validate();
        let ScaleCourseBuilder {
            source,
            num_clients: n,
            cfg,
            fleet,
            fleet_cfg,
            model_factory,
            share,
            sampler_override,
            central_eval,
            eval_cap_per_client,
            detect_perf_drop,
        } = self;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let fleet = fleet.unwrap_or_else(|| Fleet::generate(&fleet_cfg));
        if !matches!(cfg.rule, AggregationRule::TimeUp { .. }) {
            assert!(
                fleet.profiles().iter().all(|p| p.crash_prob == 0.0),
                "client crashes require the time_up rule (its remedial measure \
                 re-arms the round); all_received/goal_achieved would deadlock"
            );
        }

        // template model defines the initial global parameters
        let template = model_factory(&mut rng);
        let global = template.get_params().filter(|k| share(k));

        let avg_examples = cfg.local_steps * cfg.batch_size;
        let payload = match cfg.compression.build_download() {
            Some(mut codec) => 1 + 8 + codec.compress(&global).encoded_len(),
            None => 1 + 8 + fs_net::wire::params_wire_len(&global),
        };
        let sampler = if let Some(s) = sampler_override {
            s
        } else {
            match cfg.sampler {
                SamplerKind::Uniform => Sampler::Uniform,
                SamplerKind::Responsiveness => Sampler::Responsiveness {
                    speeds: fleet.response_speeds(avg_examples, payload),
                },
                SamplerKind::Group => {
                    let groups = (0..fleet.num_groups())
                        .map(|g| fleet.group_members(g))
                        .collect();
                    Sampler::group(groups)
                }
            }
        };

        let evaluator = if central_eval {
            match &source {
                DataSource::Dataset(ds) => {
                    let (x, y) = pooled_test_set(ds, eval_cap_per_client);
                    if y.is_empty() {
                        None
                    } else {
                        Some(GlobalEvaluator::new(template.clone_model(), x, y))
                    }
                }
                DataSource::Closure(_) => None,
            }
        } else {
            None
        };

        let aggregator = Box::new(FedAvg::new(cfg.staleness_discount));
        let server = Server::new(cfg.clone(), global, n, aggregator, sampler, evaluator);

        let share_for_private = share.clone();
        let template_private = template.get_params().filter(|k| !share_for_private(k));
        let data: Arc<dyn Fn(usize) -> ClientSplit + Send + Sync> = match source {
            DataSource::Dataset(ds) => Arc::new(move |i| ds.clients[i].clone()),
            DataSource::Closure(f) => f,
        };
        let factory = ClientFactory {
            template,
            template_private,
            data,
            train_cfg: TrainConfig {
                local_steps: cfg.local_steps,
                batch_size: cfg.batch_size,
                sgd: cfg.sgd,
            },
            share,
            compression: cfg.compression,
            detect_perf_drop,
            seed: cfg.seed,
        };
        ScaleRunner::new(server, factory, n, fleet, cfg.seed)
    }
}

/// A runner built by [`build_course`] — whichever execution core the config
/// selected.
// one instance per course, so the variant-size asymmetry costs nothing
#[allow(clippy::large_enum_variant)]
pub enum CourseRunner {
    /// The legacy fully-materialized runner (supports `parallelism > 1`,
    /// custom trainers/aggregators, plug-ins).
    Legacy(StandaloneRunner),
    /// The lazy-materialization scale runner.
    Scale(ScaleRunner),
}

impl CourseRunner {
    /// Attaches an observability sink.
    pub fn with_monitor(self, monitor: MonitorHandle) -> Self {
        match self {
            CourseRunner::Legacy(r) => CourseRunner::Legacy(r.with_monitor(monitor)),
            CourseRunner::Scale(r) => CourseRunner::Scale(r.with_monitor(monitor)),
        }
    }

    /// Runs the course to completion.
    pub fn run(&mut self) -> CourseReport {
        match self {
            CourseRunner::Legacy(r) => r.run(),
            CourseRunner::Scale(r) => r.run(),
        }
    }

    /// Runs the course, surfacing static-verification rejection as an error.
    pub fn try_run(&mut self) -> Result<CourseReport, Box<VerifyReport>> {
        match self {
            CourseRunner::Legacy(r) => r.try_run(),
            CourseRunner::Scale(r) => r.try_run(),
        }
    }
}

/// Builds a course from a dataset, dispatching on `cfg.execution`: the
/// legacy runner by default, the scale runner under
/// [`ExecutionMode::Scale`]. Both paths produce bit-identical courses.
pub fn build_course(
    dataset: FedDataset,
    model_factory: ModelFactory,
    cfg: FlConfig,
) -> CourseRunner {
    match cfg.execution {
        ExecutionMode::Legacy => {
            CourseRunner::Legacy(CourseBuilder::new(dataset, model_factory, cfg).build())
        }
        ExecutionMode::Scale => CourseRunner::Scale(
            ScaleCourseBuilder::from_dataset(Arc::new(dataset), model_factory, cfg).build(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_data::synth::{twitter_like, TwitterConfig};
    use fs_tensor::model::logistic_regression;
    use fs_tensor::optim::SgdConfig;

    fn data(n: usize) -> FedDataset {
        twitter_like(&TwitterConfig {
            num_clients: n,
            per_client: 12,
            ..Default::default()
        })
    }

    fn base_cfg() -> FlConfig {
        FlConfig {
            total_rounds: 4,
            concurrency: 4,
            sgd: SgdConfig::with_lr(0.5),
            ..Default::default()
        }
    }

    #[test]
    fn scale_report_matches_legacy_report() {
        let d = data(8);
        let dim = d.input_dim();
        let legacy = CourseBuilder::new(
            d.clone(),
            Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
            base_cfg(),
        )
        .build()
        .run();
        let scale = ScaleCourseBuilder::from_dataset(
            Arc::new(d),
            Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
            base_cfg(),
        )
        .build()
        .run();
        assert_eq!(legacy, scale);
    }

    #[test]
    fn build_course_dispatches_on_execution_mode() {
        let d = data(8);
        let dim = d.input_dim();
        let cfg = FlConfig {
            execution: ExecutionMode::Scale,
            ..base_cfg()
        };
        let mut runner = build_course(
            d,
            Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
            cfg,
        );
        assert!(matches!(runner, CourseRunner::Scale(_)));
        let report = runner.run();
        assert_eq!(report.rounds, 4);
        assert_eq!(report.history.len(), 4);
    }

    #[test]
    fn synthetic_source_runs_without_central_eval() {
        let d = Arc::new(data(8));
        let dim = d.input_dim();
        let src = d.clone();
        let mut runner = ScaleCourseBuilder::synthetic(
            8,
            Arc::new(move |i| src.clients[i].clone()),
            Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
            base_cfg(),
        )
        .build();
        let report = runner.run();
        assert_eq!(report.rounds, 4);
        assert!(report.history.is_empty(), "no evaluator, no history");
        assert!(report.total_updates > 0);
    }

    #[test]
    #[should_panic(expected = "sample target")]
    fn oversized_concurrency_rejected() {
        let d = data(2);
        let dim = d.input_dim();
        let cfg = FlConfig {
            concurrency: 1000,
            ..base_cfg()
        };
        let _ = ScaleCourseBuilder::from_dataset(
            Arc::new(d),
            Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
            cfg,
        )
        .build();
    }
}
