//! Integration tests: the extensibility claims of §3.2/§3.6 — new message
//! kinds, new condition events, and customized behaviours slot into running
//! courses without touching the engine.

use fedscope::core::config::{BroadcastManner, FlConfig, SamplerKind};
use fedscope::core::course::CourseBuilder;
use fedscope::core::{Condition, Event};
use fedscope::data::synth::{twitter_like, TwitterConfig};
use fedscope::net::{Message, MessageKind, Payload, SERVER_ID};
use fedscope::tensor::model::logistic_regression;

fn course(cfg: FlConfig) -> fedscope::core::StandaloneRunner {
    let data = twitter_like(&TwitterConfig {
        num_clients: 10,
        per_client: 16,
        ..Default::default()
    });
    let dim = data.input_dim();
    CourseBuilder::new(
        data,
        Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
        cfg,
    )
    .build()
}

/// Clients exchange a *new message type* (call it "embeddings", the paper's
/// federated-graph-learning motif): a custom client handler piggybacks a
/// Custom(7) message on every model receipt, and a custom server handler
/// accumulates them — no engine changes, just two registrations.
#[test]
fn custom_message_kind_flows_through_the_course() {
    const EMBEDDINGS: MessageKind = MessageKind::Custom(7);
    let cfg = FlConfig {
        total_rounds: 3,
        concurrency: 5,
        seed: 21,
        ..Default::default()
    };
    let mut runner = course(cfg);

    // client side: wrap the default behaviour — we register a new handler for
    // ModelParams that trains as usual *and* ships an embeddings message.
    for client in runner.clients.values_mut() {
        client.registry_mut().register(
            Event::Message(MessageKind::ModelParams),
            "train_and_share_embeddings",
            vec![
                Event::Message(MessageKind::Updates),
                Event::Message(EMBEDDINGS),
            ],
            Box::new(|state, msg, ctx| {
                if let Payload::Model { params, version } = &msg.payload {
                    let update = state.trainer.local_train(params, msg.round);
                    state.rounds_trained += 1;
                    ctx.send_after_compute(
                        Message::new(
                            state.id,
                            SERVER_ID,
                            MessageKind::Updates,
                            msg.round,
                            Payload::Update {
                                params: update.params,
                                start_version: *version,
                                n_samples: update.n_samples,
                                n_steps: update.n_steps,
                            },
                        ),
                        update.examples_processed as f64,
                    );
                    // the new exchanged information: an opaque embedding blob
                    ctx.send(Message::new(
                        state.id,
                        SERVER_ID,
                        EMBEDDINGS,
                        msg.round,
                        Payload::Bytes(vec![state.id as u8; 8]),
                    ));
                }
            }),
        );
    }
    // server side: count embedding messages in a custom handler
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    let seen = Arc::new(AtomicUsize::new(0));
    let seen2 = seen.clone();
    runner.server.registry_mut().register(
        Event::Message(EMBEDDINGS),
        "collect_embeddings",
        vec![],
        Box::new(move |_state, msg, _ctx| {
            assert!(matches!(msg.payload, Payload::Bytes(_)));
            seen2.fetch_add(1, Ordering::Relaxed);
        }),
    );
    let report = runner.run();
    assert_eq!(report.rounds, 3);
    // 5 sampled clients per round x 3 rounds
    assert_eq!(seen.load(Ordering::Relaxed), 15);
}

/// A client-side custom condition (the paper's `low_bandwidth` motif): a
/// client that only returns an update every second round. Under the
/// `goal_achieved` rule the course keeps moving without its feedback.
#[test]
fn low_bandwidth_client_skips_rounds_without_stalling_goal_courses() {
    const LOW_BANDWIDTH: Condition = Condition::Custom(42);
    let cfg = FlConfig {
        total_rounds: 4,
        concurrency: 5,
        seed: 22,
        ..Default::default()
    }
    .async_goal(4, BroadcastManner::AfterAggregating, SamplerKind::Uniform);
    let mut runner = course(cfg);
    let constrained: u32 = 3;
    let client = runner.clients.get_mut(&constrained).expect("client 3");
    client.registry_mut().register(
        Event::Message(MessageKind::ModelParams),
        "maybe_skip_for_bandwidth",
        vec![
            Event::Message(MessageKind::Updates),
            Event::Condition(LOW_BANDWIDTH),
        ],
        Box::new(|state, msg, ctx| {
            if let Payload::Model { params, version } = &msg.payload {
                if state.rounds_trained % 2 == 1 {
                    // bandwidth budget exhausted: train silently, skip upload
                    state.rounds_trained += 1;
                    ctx.raise(LOW_BANDWIDTH);
                    return;
                }
                let update = state.trainer.local_train(params, msg.round);
                state.rounds_trained += 1;
                ctx.send_after_compute(
                    Message::new(
                        state.id,
                        SERVER_ID,
                        MessageKind::Updates,
                        msg.round,
                        Payload::Update {
                            params: update.params,
                            start_version: *version,
                            n_samples: update.n_samples,
                            n_steps: update.n_steps,
                        },
                    ),
                    update.examples_processed as f64,
                );
            }
        }),
    );
    client.registry_mut().register(
        Event::Condition(LOW_BANDWIDTH),
        "count_skips",
        vec![],
        Box::new(|state, _msg, _ctx| {
            state.perf_drop_count += 1; // reuse the counter as a skip counter
        }),
    );
    let report = runner.run();
    assert_eq!(
        report.rounds, 4,
        "goal course must absorb the silent client"
    );
}

/// Removing a handler produces exactly the paper's incomplete-course error
/// surface: the completeness check fails before any message flows.
#[test]
fn removing_the_aggregation_handler_breaks_completeness() {
    use fedscope::core::completeness::FlowGraph;
    let cfg = FlConfig {
        total_rounds: 2,
        concurrency: 5,
        seed: 23,
        ..Default::default()
    };
    let mut runner = course(cfg);
    runner
        .server
        .registry_mut()
        .unregister(Event::Condition(Condition::AllReceived));
    let clients: Vec<&fedscope::core::Client> = runner.clients.values().collect();
    let check = FlowGraph::from_course(&runner.server, &clients).check();
    assert!(
        !check.complete,
        "no aggregation handler -> no path to Finish"
    );
}
