//! Centralized evaluation of the global model against virtual time.
//!
//! The paper records "the performance of the global model with respect to
//! virtual timestamps" (§5.3.1). The [`GlobalEvaluator`] holds a template
//! model and a pooled test set; the server calls it after aggregations and
//! appends [`EvalRecord`]s to its history, which the bench harness turns into
//! Table 1 and the learning-curve figures.

use fs_tensor::loss::Target;
use fs_tensor::model::{Metrics, Model};
use fs_tensor::{ParamMap, Tensor};

/// One point on the global learning curve.
#[derive(Clone, Copy, Debug)]
pub struct EvalRecord {
    /// Aggregation round at which the evaluation ran.
    pub round: u64,
    /// Virtual time of the evaluation, seconds.
    pub time_secs: f64,
    /// Global-model metrics on the pooled test set.
    pub metrics: Metrics,
}

/// Evaluates global parameters on a fixed pooled test set.
pub struct GlobalEvaluator {
    model: Box<dyn Model>,
    x: Tensor,
    y: Target,
}

impl GlobalEvaluator {
    /// Creates an evaluator from a template model and a pooled test set.
    pub fn new(model: Box<dyn Model>, x: Tensor, y: Target) -> Self {
        Self { model, x, y }
    }

    /// Loads `params` into the template (missing keys keep template values,
    /// which matters when only a shared subset is federated) and evaluates.
    pub fn eval(&mut self, params: &ParamMap) -> Metrics {
        let mut p = self.model.get_params();
        p.merge_from(params);
        self.model.set_params(&p);
        self.model.evaluate(&self.x, &self.y)
    }

    /// Size of the evaluation set.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// `true` when the evaluation set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_tensor::model::logistic_regression;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn eval_applies_params() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = logistic_regression(2, 2, &mut rng);
        // inputs where class = argmax of identity map
        let x = Tensor::from_vec(vec![2, 2], vec![5.0, 0.0, 0.0, 5.0]);
        let y = Target::Classes(vec![0, 1]);
        let mut ev = GlobalEvaluator::new(Box::new(model), x, y);
        assert_eq!(ev.len(), 2);
        // identity weights solve the problem perfectly
        let mut good = ParamMap::new();
        good.insert(
            "fc.weight",
            Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]),
        );
        good.insert("fc.bias", Tensor::zeros(&[2]));
        let m = ev.eval(&good);
        assert_eq!(m.accuracy, 1.0);
        // inverted weights get everything wrong
        let mut bad = ParamMap::new();
        bad.insert(
            "fc.weight",
            Tensor::from_vec(vec![2, 2], vec![0.0, 1.0, 1.0, 0.0]),
        );
        bad.insert("fc.bias", Tensor::zeros(&[2]));
        let m = ev.eval(&bad);
        assert_eq!(m.accuracy, 0.0);
    }
}
