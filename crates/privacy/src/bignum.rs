//! Arbitrary-precision unsigned integers, from scratch.
//!
//! Paillier homomorphic encryption (§4.1) needs multi-hundred-bit modular
//! arithmetic; no bignum crate is on the approved dependency list, so this
//! module implements one: little-endian `u64` limbs with schoolbook
//! multiplication, shift-subtract division, modular exponentiation, extended
//! Euclid (for modular inverses), and Miller–Rabin primality testing. It is
//! correctness-oriented, not constant-time — fine for an FL research
//! platform, *not* for production cryptography.

use rand::Rng;
use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// Invariant: no trailing zero limbs (zero is the empty limb vector).
#[derive(Clone, PartialEq, Eq)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.limbs.is_empty() {
            return write!(f, "BigUint(0)");
        }
        write!(f, "BigUint(0x")?;
        for (i, limb) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                write!(f, "{limb:x}")?;
            } else {
                write!(f, "{limb:016x}")?;
            }
        }
        write!(f, ")")
    }
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        Self::from_u64(1)
    }

    /// Constructs from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            Self { limbs: vec![v] }
        }
    }

    /// Constructs from little-endian limbs (normalizing).
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Self { limbs }
    }

    /// The value as `u64`, if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// `true` when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` when the value is odd.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|l| l & 1 == 1)
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// Bit `i` (little-endian).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sum.
    pub fn add(&self, rhs: &BigUint) -> BigUint {
        let n = self.limbs.len().max(rhs.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0u64;
        for i in 0..n {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = rhs.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// Difference.
    ///
    /// # Panics
    /// Panics if `rhs > self`.
    pub fn sub(&self, rhs: &BigUint) -> BigUint {
        assert!(self >= rhs, "BigUint::sub underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = rhs.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        BigUint::from_limbs(out)
    }

    /// Product (schoolbook).
    pub fn mul(&self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + rhs.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> BigUint {
        if self.is_zero() || n == 0 {
            return if n == 0 {
                self.clone()
            } else {
                BigUint::zero()
            };
        }
        let (limb_shift, bit_shift) = (n / 64, n % 64);
        let mut out = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            out[i + limb_shift] |= l << bit_shift;
            if bit_shift > 0 {
                out[i + limb_shift + 1] |= l >> (64 - bit_shift);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: usize) -> BigUint {
        let (limb_shift, bit_shift) = (n / 64, n % 64);
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        for i in limb_shift..self.limbs.len() {
            let mut l = self.limbs[i] >> bit_shift;
            if bit_shift > 0 && i + 1 < self.limbs.len() {
                l |= self.limbs[i + 1] << (64 - bit_shift);
            }
            out.push(l);
        }
        BigUint::from_limbs(out)
    }

    /// Quotient and remainder (shift-subtract long division).
    ///
    /// # Panics
    /// Panics on division by zero.
    pub fn div_rem(&self, rhs: &BigUint) -> (BigUint, BigUint) {
        assert!(!rhs.is_zero(), "division by zero");
        if self < rhs {
            return (BigUint::zero(), self.clone());
        }
        if let (Some(a), Some(b)) = (self.to_u64(), rhs.to_u64()) {
            return (BigUint::from_u64(a / b), BigUint::from_u64(a % b));
        }
        let shift = self.bits() - rhs.bits();
        let mut rem = self.clone();
        let mut quo = vec![0u64; shift / 64 + 1];
        let mut d = rhs.shl(shift);
        for i in (0..=shift).rev() {
            if rem >= d {
                rem = rem.sub(&d);
                quo[i / 64] |= 1u64 << (i % 64);
            }
            d = d.shr(1);
        }
        (BigUint::from_limbs(quo), rem)
    }

    /// `self mod m`.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).1
    }

    /// `(self * rhs) mod m`.
    pub fn mod_mul(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        self.mul(rhs).rem(m)
    }

    /// `self^exp mod m` by square-and-multiply.
    pub fn mod_pow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "zero modulus");
        if m == &BigUint::one() {
            return BigUint::zero();
        }
        let mut base = self.rem(m);
        let mut result = BigUint::one();
        for i in 0..exp.bits() {
            if exp.bit(i) {
                result = result.mod_mul(&base, m);
            }
            base = base.mod_mul(&base, m);
        }
        result
    }

    /// Greatest common divisor (Euclid).
    pub fn gcd(&self, rhs: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = rhs.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Least common multiple.
    pub fn lcm(&self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        self.mul(rhs).div_rem(&self.gcd(rhs)).0
    }

    /// Modular inverse of `self` mod `m`, if `gcd(self, m) == 1`.
    ///
    /// Uses extended Euclid with coefficients tracked in `Z_m`.
    pub fn mod_inverse(&self, m: &BigUint) -> Option<BigUint> {
        if m.is_zero() || self.is_zero() {
            return None;
        }
        let mut r0 = m.clone();
        let mut r1 = self.rem(m);
        let mut t0 = BigUint::zero();
        let mut t1 = BigUint::one();
        while !r1.is_zero() {
            let (q, r) = r0.div_rem(&r1);
            // t0 - q*t1 (mod m)
            let qt1 = q.mod_mul(&t1, m);
            let t2 = t0.add(m).sub(&qt1).rem(m);
            t0 = t1;
            t1 = t2;
            r0 = r1;
            r1 = r;
        }
        if r0 == BigUint::one() {
            Some(t0)
        } else {
            None
        }
    }

    /// A uniformly random value in `[0, bound)`.
    pub fn random_below(bound: &BigUint, rng: &mut impl Rng) -> BigUint {
        assert!(!bound.is_zero(), "empty range");
        let bits = bound.bits();
        loop {
            let mut limbs = vec![0u64; bits.div_ceil(64)];
            for l in &mut limbs {
                *l = rng.gen();
            }
            // mask the top limb to the bound's bit length
            let extra = limbs.len() * 64 - bits;
            if extra > 0 {
                let last = limbs.len() - 1;
                limbs[last] &= u64::MAX >> extra;
            }
            let v = BigUint::from_limbs(limbs);
            if &v < bound {
                return v;
            }
        }
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random bases.
    pub fn is_probably_prime(&self, rounds: usize, rng: &mut impl Rng) -> bool {
        if let Some(v) = self.to_u64() {
            if v < 2 {
                return false;
            }
            for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
                if v == p {
                    return true;
                }
                if v % p == 0 {
                    return false;
                }
            }
        }
        if !self.is_odd() {
            return false;
        }
        // trial division by small primes
        for p in [
            3u64, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
        ] {
            let pb = BigUint::from_u64(p);
            if self == &pb {
                return true;
            }
            if self.rem(&pb).is_zero() {
                return false;
            }
        }
        let one = BigUint::one();
        let n_minus_1 = self.sub(&one);
        // n-1 = d * 2^s
        let mut s = 0usize;
        let mut d = n_minus_1.clone();
        while !d.is_odd() {
            d = d.shr(1);
            s += 1;
        }
        let two = BigUint::from_u64(2);
        'witness: for _ in 0..rounds {
            let range = self.sub(&BigUint::from_u64(3));
            let a = BigUint::random_below(&range, rng).add(&two); // [2, n-2]
            let mut x = a.mod_pow(&d, self);
            if x == one || x == n_minus_1 {
                continue 'witness;
            }
            for _ in 0..s - 1 {
                x = x.mod_mul(&x, self);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// Generates a random prime with exactly `bits` bits.
    pub fn gen_prime(bits: usize, rng: &mut impl Rng) -> BigUint {
        assert!(bits >= 8, "prime too small to be useful");
        loop {
            let mut limbs = vec![0u64; bits.div_ceil(64)];
            for l in &mut limbs {
                *l = rng.gen();
            }
            let extra = limbs.len() * 64 - bits;
            let last = limbs.len() - 1;
            limbs[last] &= u64::MAX >> extra;
            limbs[last] |= 1u64 << ((bits - 1) % 64); // exact bit length
            limbs[0] |= 1; // odd
            let candidate = BigUint::from_limbs(limbs);
            if candidate.is_probably_prime(16, rng) {
                return candidate;
            }
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn b(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(b(2).add(&b(3)), b(5));
        assert_eq!(b(10).sub(&b(4)), b(6));
        assert_eq!(b(7).mul(&b(6)), b(42));
        let (q, r) = b(17).div_rem(&b(5));
        assert_eq!((q, r), (b(3), b(2)));
    }

    #[test]
    fn carry_propagation() {
        let max = BigUint::from_u64(u64::MAX);
        let sum = max.add(&BigUint::one());
        assert_eq!(sum.bits(), 65);
        assert_eq!(sum.sub(&BigUint::one()), max);
        let sq = max.mul(&max);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(
            sq.add(&max.shl(1)),
            BigUint::one().shl(128).sub(&BigUint::one())
        );
    }

    #[test]
    fn shifts() {
        assert_eq!(b(1).shl(64).shr(64), b(1));
        assert_eq!(b(0b1011).shl(3), b(0b1011000));
        assert_eq!(b(0b1011).shr(2), b(0b10));
        assert_eq!(b(5).shr(100), BigUint::zero());
    }

    #[test]
    fn div_rem_invariant_random() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let a = BigUint::random_below(&BigUint::one().shl(192), &mut rng);
            let mut m = BigUint::random_below(&BigUint::one().shl(100), &mut rng);
            if m.is_zero() {
                m = BigUint::one();
            }
            let (q, r) = a.div_rem(&m);
            assert!(r < m);
            assert_eq!(q.mul(&m).add(&r), a);
        }
    }

    #[test]
    fn mod_pow_matches_u64() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30 {
            let base: u64 = rng.gen_range(0..1000);
            let exp: u64 = rng.gen_range(0..20);
            let m: u64 = rng.gen_range(2..10_000);
            let expect = {
                let mut r: u128 = 1;
                for _ in 0..exp {
                    r = r * base as u128 % m as u128;
                }
                r as u64
            };
            assert_eq!(b(base).mod_pow(&b(exp), &b(m)).to_u64(), Some(expect));
        }
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(p-1) = 1 mod p for prime p
        let p = b(1_000_000_007);
        let a = b(123_456_789);
        assert_eq!(a.mod_pow(&p.sub(&BigUint::one()), &p), BigUint::one());
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(b(12).gcd(&b(18)), b(6));
        assert_eq!(b(12).lcm(&b(18)), b(36));
        assert_eq!(b(17).gcd(&b(31)), b(1));
        assert_eq!(b(0).gcd(&b(5)), b(5));
    }

    #[test]
    fn mod_inverse_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = BigUint::gen_prime(64, &mut rng);
        for _ in 0..20 {
            let a = BigUint::random_below(&m, &mut rng);
            if a.is_zero() {
                continue;
            }
            let inv = a.mod_inverse(&m).expect("prime modulus");
            assert_eq!(a.mod_mul(&inv, &m), BigUint::one());
        }
        // non-invertible
        assert!(b(4).mod_inverse(&b(8)).is_none());
    }

    #[test]
    fn primality_known_values() {
        let mut rng = StdRng::seed_from_u64(4);
        for p in [2u64, 3, 5, 17, 97, 65_537, 1_000_000_007] {
            assert!(b(p).is_probably_prime(16, &mut rng), "{p} is prime");
        }
        for c in [1u64, 4, 100, 65_535, 1_000_000_008] {
            assert!(!b(c).is_probably_prime(16, &mut rng), "{c} is composite");
        }
        // Carmichael number 561 = 3*11*17 must be rejected
        assert!(!b(561).is_probably_prime(16, &mut rng));
    }

    #[test]
    fn gen_prime_has_exact_bits() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = BigUint::gen_prime(96, &mut rng);
        assert_eq!(p.bits(), 96);
        assert!(p.is_odd());
        assert!(p.is_probably_prime(16, &mut rng));
    }

    #[test]
    fn ordering() {
        assert!(b(5) > b(3));
        assert!(BigUint::one().shl(64) > b(u64::MAX));
        assert_eq!(b(7).cmp(&b(7)), Ordering::Equal);
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(6);
        let bound = b(1000);
        for _ in 0..100 {
            assert!(BigUint::random_below(&bound, &mut rng) < bound);
        }
    }
}
