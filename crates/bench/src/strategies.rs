//! The named strategy grid of Table 1 and Figure 17.
//!
//! Strategies follow the paper's naming scheme
//! `Async-<AdoptedEvent>-<BroadcastManner>-<SampleStrategy>` plus the two
//! synchronous baselines.

use crate::workloads::Workload;
use fs_core::config::{BroadcastManner, FlConfig, SamplerKind};

/// A named training strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Vanilla synchronous FedAvg (`all_received`).
    SyncVanilla,
    /// Synchronous with 30% over-selection (goal = concurrency, tolerance 0).
    SyncOverSelection,
    /// `goal_achieved` + after-aggregating + uniform sampling.
    GoalAggrUnif,
    /// `goal_achieved` + after-receiving + uniform sampling (FedBuff).
    GoalReceUnif,
    /// `time_up` + after-aggregating + uniform sampling.
    TimeAggrUnif,
    /// `goal_achieved` + after-aggregating + group sampling.
    GoalAggrGroup,
    /// `time_up` + after-receiving + uniform sampling.
    TimeReceUnif,
    /// `goal_achieved` + after-receiving + responsiveness sampling.
    GoalReceResp,
    /// `goal_achieved` + after-aggregating + responsiveness sampling.
    GoalAggrResp,
}

impl Strategy {
    /// The paper's column label.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::SyncVanilla => "Sync-vanilla",
            Strategy::SyncOverSelection => "Sync-OS",
            Strategy::GoalAggrUnif => "Goal-Aggr-Unif",
            Strategy::GoalReceUnif => "Goal-Rece-Unif",
            Strategy::TimeAggrUnif => "Time-Aggr-Unif",
            Strategy::GoalAggrGroup => "Goal-Aggr-Group",
            Strategy::TimeReceUnif => "Time-Rece-Unif",
            Strategy::GoalReceResp => "Goal-Rece-Resp",
            Strategy::GoalAggrResp => "Goal-Aggr-Resp",
        }
    }

    /// Every named strategy.
    pub fn all() -> Vec<Strategy> {
        Self::fig17()
    }

    /// Parses a strategy name: the paper label (`Goal-Aggr-Unif`) or any
    /// case/separator variant of it (`goal_aggr_unif`, `goalaggrunif`).
    pub fn from_name(name: &str) -> Option<Strategy> {
        let norm = |s: &str| {
            s.chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .map(|c| c.to_ascii_lowercase())
                .collect::<String>()
        };
        let wanted = norm(name);
        Self::all().into_iter().find(|s| norm(s.label()) == wanted)
    }

    /// The Table-1 strategy set.
    pub fn table1() -> Vec<Strategy> {
        vec![
            Strategy::SyncVanilla,
            Strategy::SyncOverSelection,
            Strategy::GoalAggrUnif,
            Strategy::GoalReceUnif,
            Strategy::TimeAggrUnif,
            Strategy::GoalAggrGroup,
        ]
    }

    /// The extended Figure-17 strategy set.
    pub fn fig17() -> Vec<Strategy> {
        let mut v = Self::table1();
        v.extend([
            Strategy::TimeReceUnif,
            Strategy::GoalReceResp,
            Strategy::GoalAggrResp,
        ]);
        v
    }

    /// `true` for asynchronous strategies.
    pub fn is_async(self) -> bool {
        !matches!(self, Strategy::SyncVanilla | Strategy::SyncOverSelection)
    }

    /// Applies the strategy to a workload's base configuration.
    ///
    /// Asynchronous rounds aggregate fewer updates, so the round cap is
    /// scaled up to keep total client work comparable.
    pub fn configure(self, wl: &Workload) -> FlConfig {
        let base = wl.base_cfg.clone();
        let goal = wl.aggregation_goal;
        let budget = wl.time_budget_secs;
        let async_rounds = base.total_rounds * (base.concurrency as u64) / (goal as u64).max(1);
        match self {
            Strategy::SyncVanilla => base.sync_vanilla(),
            Strategy::SyncOverSelection => base.sync_over_selection(0.3),
            Strategy::GoalAggrUnif => {
                let mut c = base.async_goal(
                    goal,
                    BroadcastManner::AfterAggregating,
                    SamplerKind::Uniform,
                );
                c.total_rounds = async_rounds;
                c
            }
            Strategy::GoalReceUnif => {
                let mut c =
                    base.async_goal(goal, BroadcastManner::AfterReceiving, SamplerKind::Uniform);
                c.total_rounds = async_rounds;
                c
            }
            Strategy::TimeAggrUnif => {
                let mut c = base.async_time(
                    budget,
                    1,
                    BroadcastManner::AfterAggregating,
                    SamplerKind::Uniform,
                );
                c.total_rounds = async_rounds;
                c
            }
            Strategy::GoalAggrGroup => {
                let mut c =
                    base.async_goal(goal, BroadcastManner::AfterAggregating, SamplerKind::Group);
                c.total_rounds = async_rounds;
                c
            }
            Strategy::TimeReceUnif => {
                let mut c = base.async_time(
                    budget,
                    1,
                    BroadcastManner::AfterReceiving,
                    SamplerKind::Uniform,
                );
                c.total_rounds = async_rounds;
                c
            }
            Strategy::GoalReceResp => {
                let mut c = base.async_goal(
                    goal,
                    BroadcastManner::AfterReceiving,
                    SamplerKind::Responsiveness,
                );
                c.total_rounds = async_rounds;
                c
            }
            Strategy::GoalAggrResp => {
                let mut c = base.async_goal(
                    goal,
                    BroadcastManner::AfterAggregating,
                    SamplerKind::Responsiveness,
                );
                c.total_rounds = async_rounds;
                c
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::twitter;
    use fs_core::config::AggregationRule;

    #[test]
    fn labels_match_paper_columns() {
        assert_eq!(Strategy::SyncVanilla.label(), "Sync-vanilla");
        assert_eq!(Strategy::GoalReceUnif.label(), "Goal-Rece-Unif");
        assert_eq!(Strategy::table1().len(), 6);
        assert_eq!(Strategy::fig17().len(), 9);
    }

    #[test]
    fn configure_sets_expected_rules() {
        let wl = twitter(1);
        let c = Strategy::SyncVanilla.configure(&wl);
        assert_eq!(c.rule, AggregationRule::AllReceived);
        let c = Strategy::SyncOverSelection.configure(&wl);
        assert_eq!(c.staleness_tolerance, 0);
        assert!(c.over_selection > 0.0);
        let c = Strategy::GoalAggrGroup.configure(&wl);
        assert_eq!(
            c.rule,
            AggregationRule::GoalAchieved {
                goal: wl.aggregation_goal
            }
        );
        assert_eq!(c.sampler, SamplerKind::Group);
        let c = Strategy::TimeAggrUnif.configure(&wl);
        assert!(matches!(c.rule, AggregationRule::TimeUp { .. }));
        // async strategies get more (smaller) rounds
        assert!(c.total_rounds > wl.base_cfg.total_rounds);
    }

    #[test]
    fn async_detection() {
        assert!(!Strategy::SyncVanilla.is_async());
        assert!(!Strategy::SyncOverSelection.is_async());
        assert!(Strategy::GoalAggrUnif.is_async());
    }
}
