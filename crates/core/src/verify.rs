//! Lowering an assembled course into the `fs-verify` IR.
//!
//! The static-analysis engine lives in the `fs-verify` crate and knows
//! nothing about `Server`/`Client`/`FlConfig`; this module bridges the gap:
//! it collects handler specs from every participant (collapsing clients with
//! identical handler tables into one group, so a 10k-client course lowers to
//! a couple of specs), gathers registry overwrite warnings, projects the
//! config into [`fs_verify::ConfigFacts`], and hands the result to
//! [`fs_verify::verify_course`]. Runners call [`verify_assembled`] before
//! starting a course.

use crate::client::Client;
use crate::config::FlConfig;
use crate::server::Server;
use fs_net::ParticipantId;
use fs_verify::{CourseIr, HandlerSpec, ParticipantSpec, VerifyReport};

/// Lowers a course into the verifier's IR. `config` is optional so callers
/// can verify a hand-assembled server/client set without a full `FlConfig`.
pub fn course_ir(server: &Server, clients: &[&Client], config: Option<&FlConfig>) -> CourseIr {
    let groups: Vec<(&Client, Vec<ParticipantId>)> =
        clients.iter().map(|c| (*c, vec![c.state.id])).collect();
    course_ir_grouped(server, &groups, config)
}

/// Lowers a course given as representative clients plus the id sets they
/// stand for. A lazy runner that materializes clients on demand verifies a
/// million-client course through one representative without building the
/// other 999,999; the result is identical to [`course_ir`] over fully
/// materialized clients with the same handler tables.
pub fn course_ir_grouped(
    server: &Server,
    reps: &[(&Client, Vec<ParticipantId>)],
    config: Option<&FlConfig>,
) -> CourseIr {
    let mut groups: Vec<(Vec<HandlerSpec>, Vec<ParticipantId>)> = Vec::new();
    for (c, ids) in reps {
        let specs = c.specs();
        match groups.iter_mut().find(|(s, _)| *s == specs) {
            Some((_, all)) => all.extend(ids.iter().copied()),
            None => groups.push((specs, ids.clone())),
        }
    }
    let total: usize = groups.iter().map(|(_, ids)| ids.len()).sum();
    let mut registry_warnings: Vec<String> = server.warnings().to_vec();
    for (c, _) in reps {
        registry_warnings.extend(c.warnings().iter().cloned());
    }
    let client_groups = groups
        .into_iter()
        .map(|(handlers, ids)| {
            let label = match (ids.first(), ids.last()) {
                (Some(first), Some(last)) if ids.len() > 1 => {
                    format!("clients {first}–{last} ({} of them)", ids.len())
                }
                (Some(only), _) => format!("client {only}"),
                _ => "clients".to_string(),
            };
            ParticipantSpec { label, handlers }
        })
        .collect();

    CourseIr {
        server: ParticipantSpec {
            label: "server".to_string(),
            handlers: server.specs(),
        },
        client_groups,
        registry_warnings,
        config: config.map(|cfg| cfg.facts(Some(total))),
    }
}

/// Runs the full static analysis over an assembled course.
pub fn verify_assembled(
    server: &Server,
    clients: &[&Client],
    config: Option<&FlConfig>,
) -> VerifyReport {
    fs_verify::verify_course(&course_ir(server, clients, config))
}

/// [`verify_assembled`] over representative clients (see
/// [`course_ir_grouped`]).
pub fn verify_assembled_grouped(
    server: &Server,
    reps: &[(&Client, Vec<ParticipantId>)],
    config: Option<&FlConfig>,
) -> VerifyReport {
    fs_verify::verify_course(&course_ir_grouped(server, reps, config))
}

/// The effective-handler log the paper prints: one line per participant
/// group, `<event> -> <handler>` pairs in registration-table order.
pub fn effective_handler_log(server: &Server, clients: &[&Client]) -> Vec<String> {
    let groups: Vec<(&Client, Vec<ParticipantId>)> =
        clients.iter().map(|c| (*c, vec![c.state.id])).collect();
    effective_handler_log_grouped(server, &groups)
}

/// [`effective_handler_log`] over representative clients (see
/// [`course_ir_grouped`]).
pub fn effective_handler_log_grouped(
    server: &Server,
    reps: &[(&Client, Vec<ParticipantId>)],
) -> Vec<String> {
    let ir = course_ir_grouped(server, reps, None);
    let mut lines = Vec::new();
    for spec in std::iter::once(&ir.server).chain(ir.client_groups.iter()) {
        for h in &spec.handlers {
            lines.push(format!("{}: {} -> {}", spec.label, h.event, h.name));
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlConfig;
    use crate::course::CourseBuilder;
    use fs_data::synth::{twitter_like, TwitterConfig};
    use fs_tensor::model::logistic_regression;

    fn tiny_course() -> crate::runner::StandaloneRunner {
        let data = twitter_like(&TwitterConfig {
            num_clients: 6,
            seed: 3,
            ..Default::default()
        });
        let dim = data.input_dim();
        let cfg = FlConfig {
            total_rounds: 2,
            concurrency: 3,
            ..Default::default()
        };
        CourseBuilder::new(
            data,
            Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
            cfg,
        )
        .build()
    }

    #[test]
    fn default_course_verifies_clean() {
        let runner = tiny_course();
        let clients: Vec<&Client> = runner.clients.values().collect();
        let report = verify_assembled(&runner.server, &clients, None);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn identical_clients_collapse_to_one_group() {
        let runner = tiny_course();
        let clients: Vec<&Client> = runner.clients.values().collect();
        let ir = course_ir(&runner.server, &clients, None);
        assert_eq!(ir.client_groups.len(), 1);
        assert!(ir.client_groups[0].label.contains("6 of them"));
    }

    #[test]
    fn handler_log_covers_both_sides() {
        let runner = tiny_course();
        let clients: Vec<&Client> = runner.clients.values().collect();
        let log = effective_handler_log(&runner.server, &clients);
        assert!(log.iter().any(|l| l.starts_with("server:")));
        assert!(log.iter().any(|l| l.contains("local_training")));
    }
}
