//! The lazy-materialization standalone runner.
//!
//! Bit-identical to `fs_core::StandaloneRunner` (serial mode) on overlapping
//! scales, but built for cohorts the legacy runner cannot hold: idle clients
//! are O(1) slots, only the currently dispatched client exists as a full
//! [`Client`], model tensors are recycled through a pool, in-flight messages
//! live in a slab, and a server broadcast occupies a single indexed-heap
//! entry re-armed member by member instead of one owned message per target.
//!
//! # Determinism contract
//!
//! The legacy runner's global event order is the `(VirtualTime, seq)` order
//! of its queue, where `seq` counts pushes. This runner reproduces exactly
//! that order: every point where the legacy runner would push one event
//! consumes one sequence number here too (batches reserve a contiguous range
//! up front, one per member, in legacy push order), so pops interleave
//! identically — which makes the crash-RNG draw order, the sampler RNG
//! stream, every virtual timestamp, and every monitor counter match the
//! legacy runner bit for bit.

use crate::slab::Slab;
use crate::NullTrainer;
use fs_core::client::Client;
use fs_core::config::CompressionConfig;
use fs_core::ctx::{BatchedBroadcast, Ctx, Outgoing};
use fs_core::event::Condition;
use fs_core::server::Server;
use fs_core::trainer::{LocalTrainer, ShareFilter, TrainConfig, TrainerParts};
use fs_core::CourseReport;
use fs_monitor::{counters, MonitorHandle};
use fs_net::{Message, MessageKind, ParticipantId, Payload, SERVER_ID};
use fs_sim::{Fleet, IndexedEventQueue, VirtualTime};
use fs_tensor::model::{Metrics, Model};
use fs_tensor::optim::Sgd;
use fs_tensor::ParamMap;
use fs_verify::{VerifyMode, VerifyReport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::mem;
use std::sync::Arc;

/// Recreates the full state of any client on demand.
///
/// Everything a dormant client needs that is *common* across clients lives
/// here once, instead of once per client: the template model (initial
/// parameters), the training configuration, the share filter, and a
/// deterministic data source mapping a 0-based client index to its split.
pub struct ClientFactory {
    /// The template model — initial parameters for every client.
    pub template: Box<dyn Model>,
    /// Template parameters failing the share filter. Empty when everything
    /// is shared (then every key is overwritten by `incorporate` before any
    /// observation, so no restore is needed on materialization).
    pub template_private: ParamMap,
    /// Deterministic data source: client index → its split. Called on every
    /// materialization; must return identical data for identical indices.
    pub data: Arc<dyn Fn(usize) -> ClientSplit + Send + Sync>,
    /// Local training-loop configuration.
    pub train_cfg: TrainConfig,
    /// Parameter-sharing filter.
    pub share: ShareFilter,
    /// Compression config (builds one upload codec per client).
    pub compression: CompressionConfig,
    /// Whether clients detect validation-performance drops.
    pub detect_perf_drop: bool,
    /// Course seed (per-client trainer seeds derive from it exactly as the
    /// legacy course builder does).
    pub seed: u64,
}

use fs_data::ClientSplit;

/// The resumable state of a client between dispatches, small enough to keep
/// a million of: optimizer state, RNG stream, bookkeeping, codec state, and
/// (only under a partial share filter) the private parameter subset.
struct Dormant {
    opt: Sgd,
    rng: StdRng,
    rounds_trained: u64,
    last_val: Option<Metrics>,
    perf_drop_count: u64,
    done: bool,
    final_test: Option<Metrics>,
    compressor: Option<Box<dyn fs_compress::Compressor>>,
    private: ParamMap,
}

/// Per-client lifecycle slot.
enum SlotState {
    /// Never materialized: the factory's template state *is* this client.
    Untouched,
    /// Currently materialized (mid-dispatch).
    Active,
    /// Materialized at least once; resumable state retained.
    Dormant(Box<Dormant>),
    /// Done and unreachable: no further delivery can need its state.
    Finished,
}

/// Which way a batched message fan travels.
#[derive(Clone, Copy, PartialEq, Eq)]
enum BatchDir {
    /// Many clients → server (the t=0 join wave); `sender` varies.
    ToServer,
    /// Server → many clients (a broadcast); `receiver` varies.
    ToClients,
}

/// One member of a batch: its delivery key and the client it involves.
#[derive(Clone, Copy)]
struct BatchMember {
    at: VirtualTime,
    seq: u64,
    client: ParticipantId,
}

/// A message fan scheduled as a single heap entry, re-armed member by
/// member in global `(at, seq)` order.
struct BatchRecord {
    /// The shared message; `sender`/`receiver`/`timestamp` are stamped per
    /// member at delivery.
    template: Message,
    /// Members sorted by `(at, seq)`.
    members: Vec<BatchMember>,
    /// Index of the next member to deliver.
    next: usize,
    dir: BatchDir,
}

/// An entry in the scale runner's indexed event heap.
enum ScaleEvent {
    /// Deliver the slab-held message.
    Deliver(u32),
    /// Deliver the next member of the slab-held batch.
    Batch(u32),
    /// Deliver a message whose handler is known to be a no-op
    /// (`IdAssignment` → `confirm_id`): burns the event and the dispatch
    /// span without materializing the client.
    Noop {
        receiver: ParticipantId,
        kind: MessageKind,
    },
    /// Fire a timer-armed condition on a participant.
    Timer {
        to: ParticipantId,
        condition: Condition,
        round: u64,
    },
}

/// Runs an FL course under virtual time with lazy client state.
pub struct ScaleRunner {
    /// The server participant (fully materialized — there is one).
    pub server: Server,
    /// Device profiles.
    pub fleet: Fleet,
    /// Current virtual time.
    pub now: VirtualTime,
    /// Broadcast deliveries dropped by simulated device crashes.
    pub crashed_deliveries: u64,
    /// Payload bytes sent toward the server so far.
    pub uploaded_bytes: u64,
    /// Payload bytes sent toward clients so far.
    pub downloaded_bytes: u64,
    queue: IndexedEventQueue<ScaleEvent>,
    crash_rng: StdRng,
    max_events: u64,
    events_processed: u64,
    monitor: MonitorHandle,
    factory: ClientFactory,
    slots: Vec<SlotState>,
    /// Recycled model allocations (stays ~1 deep: dispatches are serial).
    pool: Vec<Box<dyn Model>>,
    messages: Slab<Message>,
    batches: Slab<BatchRecord>,
    /// A representative client for verification and handler logs; never
    /// dispatched. All scale clients share the default handler table.
    rep_client: Client,
    /// Registry warnings per client id, harvested at hibernation.
    client_warnings: BTreeMap<ParticipantId, Vec<String>>,
    /// Conformance violations per client id, harvested at hibernation.
    client_violations: BTreeMap<ParticipantId, Vec<String>>,
}

impl ScaleRunner {
    /// Assembles a runner over `num_clients` lazily materialized clients.
    pub fn new(
        server: Server,
        factory: ClientFactory,
        num_clients: usize,
        fleet: Fleet,
        seed: u64,
    ) -> Self {
        assert_eq!(
            fleet.len(),
            num_clients,
            "fleet size must match client count"
        );
        let rep_client = Client::new(1, Box::new(NullTrainer));
        Self {
            server,
            fleet,
            now: VirtualTime::ZERO,
            crashed_deliveries: 0,
            uploaded_bytes: 0,
            downloaded_bytes: 0,
            queue: IndexedEventQueue::new(),
            crash_rng: StdRng::seed_from_u64(seed ^ 0xc4a5),
            max_events: 50_000_000,
            events_processed: 0,
            monitor: MonitorHandle::null(),
            factory,
            slots: (0..num_clients).map(|_| SlotState::Untouched).collect(),
            pool: Vec::new(),
            messages: Slab::new(),
            batches: Slab::new(),
            rep_client,
            client_warnings: BTreeMap::new(),
            client_violations: BTreeMap::new(),
        }
    }

    /// Caps the number of processed events (safety valve for tests).
    pub fn with_max_events(mut self, max: u64) -> Self {
        self.max_events = max;
        self
    }

    /// Attaches an observability sink (same contract as the legacy runner).
    pub fn with_monitor(mut self, monitor: MonitorHandle) -> Self {
        self.monitor = monitor;
        self
    }

    /// Number of simulation events processed by the last `run`.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of clients in the course.
    pub fn num_clients(&self) -> usize {
        self.slots.len()
    }

    fn rep_groups(&self) -> Vec<(&Client, Vec<ParticipantId>)> {
        let ids: Vec<ParticipantId> = (1..=self.slots.len()).map(|i| i as u32).collect();
        vec![(&self.rep_client, ids)]
    }

    /// Verifies the assembled course per the configured [`VerifyMode`],
    /// through the one representative client.
    fn preflight(&self) -> Result<(), Box<VerifyReport>> {
        let mode = self.server.state.cfg.verify;
        if mode == VerifyMode::Skip {
            return Ok(());
        }
        let groups = self.rep_groups();
        let report =
            fs_core::verify_assembled_grouped(&self.server, &groups, Some(&self.server.state.cfg));
        let verbose = std::env::var_os("FS_VERIFY_LOG").is_some();
        if verbose {
            for line in fs_core::effective_handler_log_grouped(&self.server, &groups) {
                eprintln!("fs-verify: {line}");
            }
        }
        if verbose || !report.is_clean() {
            eprint!("{}", report.render_table());
        }
        if mode == VerifyMode::Enforce && report.has_errors() {
            return Err(Box::new(report));
        }
        Ok(())
    }

    /// Runs the course to completion and returns the report, or the
    /// verification report when the course fails static analysis under
    /// [`VerifyMode::Enforce`].
    pub fn try_run(&mut self) -> Result<CourseReport, Box<VerifyReport>> {
        self.preflight()?;
        Ok(self.run_unchecked())
    }

    /// Runs the course to completion (queue drained or event cap reached)
    /// and returns the report.
    ///
    /// # Panics
    /// Panics with the rendered diagnostic table when the course fails
    /// static verification under [`VerifyMode::Enforce`].
    pub fn run(&mut self) -> CourseReport {
        match self.try_run() {
            Ok(report) => report,
            // fsa::allow(FSA022, documented contract of run(); try_run is the fallible form)
            Err(verify) => panic!("course rejected by static verification:\n{verify}"),
        }
    }

    fn run_unchecked(&mut self) -> CourseReport {
        self.kickoff();
        let mut events = 0u64;
        while let Some((at, _seq, ev)) = self.queue.pop() {
            events += 1;
            if events > self.max_events {
                self.server.state.finish_reason =
                    Some(format!("event cap {} reached", self.max_events));
                break;
            }
            self.now = at;
            match ev {
                ScaleEvent::Deliver(key) => {
                    let msg = self.messages.remove(key);
                    self.monitor.add(counters::MESSAGES_DELIVERED, 1);
                    if msg.receiver == SERVER_ID {
                        self.dispatch_server(at, &msg);
                    } else {
                        self.deliver_to_client(at, &msg);
                    }
                }
                ScaleEvent::Batch(key) => self.handle_batch(at, key),
                ScaleEvent::Noop { receiver, kind } => {
                    // the legacy runner would materialize the client and run
                    // its (side-effect-free) handler; only the counters and
                    // the dispatch span are observable
                    self.monitor.add(counters::MESSAGES_DELIVERED, 1);
                    self.monitor.enter(receiver, kind.name(), "dispatch", at);
                    self.monitor.exit(receiver, at);
                }
                ScaleEvent::Timer {
                    to,
                    condition,
                    round,
                } => {
                    if to == SERVER_ID {
                        let mut ctx = Ctx::with_monitor(at, self.monitor.clone());
                        ctx.batch_broadcasts = true;
                        self.monitor.enter(SERVER_ID, "timer", "dispatch", at);
                        self.server.handle_timer(condition, round, &mut ctx);
                        self.monitor.exit(SERVER_ID, at);
                        self.enqueue_server_intents(ctx);
                    }
                }
            }
        }
        self.events_processed = events;
        self.report()
    }

    /// Kick off: every client asks to join at t = 0, scheduled as a single
    /// batch. The per-client monitor records and byte counters match the
    /// legacy kickoff loop exactly.
    fn kickoff(&mut self) {
        let n = self.slots.len();
        if n == 0 {
            return;
        }
        let template = Message::new(1, SERVER_ID, MessageKind::JoinIn, 0, Payload::Empty);
        let payload_bytes = template.payload_bytes();
        let pb64 = payload_bytes as u64;
        let seq0 = self.queue.reserve_seqs(n as u64);
        let mut members = Vec::with_capacity(n);
        for i in 0..n {
            let id = (i + 1) as u32;
            self.monitor
                .enter(id, "start", "dispatch", VirtualTime::ZERO);
            self.monitor.exit(id, VirtualTime::ZERO);
            self.monitor.add(counters::MESSAGES_SENT, 1);
            self.uploaded_bytes += pb64;
            self.monitor.add(counters::UPLOADED_BYTES, pb64);
            let p = self.fleet.profile(id);
            let compute = p.compute_secs(0);
            let comm = p.comm_secs(payload_bytes);
            if self.monitor.is_live() {
                if compute > 0.0 {
                    self.monitor
                        .span(id, "local_train", "compute", VirtualTime::ZERO, compute);
                }
                if comm > 0.0 {
                    self.monitor
                        .span(id, "upload", "comm", VirtualTime::ZERO + compute, comm);
                }
            }
            members.push(BatchMember {
                at: VirtualTime::ZERO + (compute + comm),
                seq: seq0 + i as u64,
                client: id,
            });
        }
        self.schedule_batch(BatchRecord {
            template,
            members,
            next: 0,
            dir: BatchDir::ToServer,
        });
    }

    /// Sorts a batch's members into `(at, seq)` order and schedules its
    /// first member.
    fn schedule_batch(&mut self, mut rec: BatchRecord) {
        rec.members.sort_by_key(|m| (m.at, m.seq));
        let first = rec.members[0];
        let key = self.batches.insert(rec);
        self.queue
            .push_at_seq(first.at, first.seq, ScaleEvent::Batch(key));
    }

    /// Delivers the next member of a batch, then re-arms the batch at its
    /// next member's reserved `(at, seq)` key.
    fn handle_batch(&mut self, at: VirtualTime, key: u32) {
        let mut rec = self.batches.remove(key);
        let m = rec.members[rec.next];
        rec.next += 1;
        self.monitor.add(counters::MESSAGES_DELIVERED, 1);
        rec.template.timestamp = m.at.as_secs();
        match rec.dir {
            BatchDir::ToServer => {
                rec.template.sender = m.client;
                self.dispatch_server(at, &rec.template);
            }
            BatchDir::ToClients => {
                rec.template.receiver = m.client;
                self.deliver_to_client(at, &rec.template);
            }
        }
        if rec.next < rec.members.len() {
            let nm = rec.members[rec.next];
            let k2 = self.batches.insert(rec);
            self.queue.push_at_seq(nm.at, nm.seq, ScaleEvent::Batch(k2));
        }
    }

    /// Runs a server handler and realizes its intents.
    fn dispatch_server(&mut self, at: VirtualTime, msg: &Message) {
        let mut ctx = Ctx::with_monitor(at, self.monitor.clone());
        ctx.batch_broadcasts = true;
        self.monitor
            .enter(SERVER_ID, msg.kind.name(), "dispatch", at);
        self.server.handle(msg, &mut ctx);
        self.monitor.exit(SERVER_ID, at);
        self.enqueue_server_intents(ctx);
    }

    /// The client-delivery path: crash draw, participation counter,
    /// materialize, dispatch, hibernate.
    fn deliver_to_client(&mut self, at: VirtualTime, msg: &Message) {
        if msg.kind == MessageKind::ModelParams
            && self.fleet.crashes(msg.receiver, &mut self.crash_rng)
        {
            // device crash: the broadcast never reaches the client
            self.crashed_deliveries += 1;
            self.monitor.add(counters::CRASHED_DELIVERIES, 1);
            return;
        }
        if msg.kind == MessageKind::ModelParams {
            self.monitor.add(counters::PARTICIPATION, 1);
        }
        let id = msg.receiver;
        let mut client = self.materialize(id);
        let mut ctx = Ctx::with_monitor(at, self.monitor.clone());
        self.monitor.enter(id, msg.kind.name(), "dispatch", at);
        client.handle(msg, &mut ctx);
        self.monitor.exit(id, at);
        self.enqueue_client_intents(id, ctx);
        self.hibernate(client);
    }

    /// Builds the full [`Client`] for `id` from its slot: a pooled (or
    /// fresh) model allocation, the deterministic data split, and either the
    /// template state (first activation) or the retained dormant state.
    fn materialize(&mut self, id: ParticipantId) -> Client {
        let idx = (id - 1) as usize;
        let slot = mem::replace(&mut self.slots[idx], SlotState::Active);
        let mut model = self
            .pool
            .pop()
            .unwrap_or_else(|| self.factory.template.clone_model());
        let data = (self.factory.data)(idx);
        match slot {
            SlotState::Dormant(d) => {
                let d = *d;
                if !d.private.is_empty() {
                    let mut params = model.get_params();
                    params.merge_from(&d.private);
                    model.set_params(&params);
                }
                let trainer = LocalTrainer::from_parts(TrainerParts {
                    model,
                    data,
                    cfg: self.factory.train_cfg.clone(),
                    share: self.factory.share.clone(),
                    opt: d.opt,
                    rng: d.rng,
                });
                let mut client = Client::new(id, Box::new(trainer));
                client.state.rounds_trained = d.rounds_trained;
                client.state.last_val = d.last_val;
                client.state.perf_drop_count = d.perf_drop_count;
                client.state.done = d.done;
                client.state.final_test = d.final_test;
                client.state.detect_perf_drop = self.factory.detect_perf_drop;
                client.state.compressor = d.compressor;
                client
            }
            _ => {
                // Untouched (Finished slots hold no state either; a Finished
                // client is only ever rematerialized by a delivery the
                // server can no longer produce)
                if !self.factory.template_private.is_empty() {
                    let mut params = model.get_params();
                    params.merge_from(&self.factory.template_private);
                    model.set_params(&params);
                }
                let trainer = LocalTrainer::new(
                    model,
                    data,
                    self.factory.train_cfg.clone(),
                    self.factory.share.clone(),
                    self.factory.seed ^ (idx as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15),
                );
                let mut client = Client::new(id, Box::new(trainer));
                client.state.detect_perf_drop = self.factory.detect_perf_drop;
                client.state.compressor = self.factory.compression.build_upload();
                client
            }
        }
    }

    /// Dismantles a client after its dispatch: harvests registry output,
    /// recycles the model allocation into the pool, and retains only the
    /// resumable state (or nothing, when the client is provably done).
    fn hibernate(&mut self, mut client: Client) {
        let id = client.state.id;
        let idx = (id - 1) as usize;
        {
            let ws = client.warnings();
            if !ws.is_empty() {
                let entry = self.client_warnings.entry(id).or_default();
                for w in ws {
                    if !entry.contains(w) {
                        entry.push(w.clone());
                    }
                }
            }
            let vs = client.violations();
            if !vs.is_empty() {
                let entry = self.client_violations.entry(id).or_default();
                for v in vs {
                    if !entry.contains(v) {
                        entry.push(v.clone());
                    }
                }
            }
        }
        let trainer = mem::replace(&mut client.state.trainer, Box::new(NullTrainer));
        let parts = trainer
            .into_local()
            // fsa::allow(FSA021, ClientFactory only builds LocalTrainer clients; enforced at course construction)
            .expect("execution: scale requires LocalTrainer-backed clients")
            .into_parts();
        let private = if self.factory.template_private.is_empty() {
            ParamMap::new()
        } else {
            let share = self.factory.share.clone();
            parts.model.get_params().filter(|k| !share(k))
        };
        self.pool.push(parts.model);
        // a done client still in the server's busy set may yet receive an
        // in-flight ModelParams (post-Finish training is legal and must be
        // bit-identical), so it keeps its dormant state
        let finished = client.state.done && !self.server.state.busy.contains(&id);
        self.slots[idx] = if finished {
            SlotState::Finished
        } else {
            SlotState::Dormant(Box::new(Dormant {
                opt: parts.opt,
                rng: parts.rng,
                rounds_trained: client.state.rounds_trained,
                last_val: client.state.last_val,
                perf_drop_count: client.state.perf_drop_count,
                done: client.state.done,
                final_test: client.state.final_test,
                compressor: mem::take(&mut client.state.compressor),
                private,
            }))
        };
    }

    /// Realizes a client dispatch's intents: byte counters, device delays,
    /// spans, and delivery events — statement for statement the legacy
    /// `enqueue_intents` with `from != SERVER_ID`.
    fn enqueue_client_intents(&mut self, from: ParticipantId, ctx: Ctx) {
        debug_assert_ne!(from, SERVER_ID);
        debug_assert!(ctx.broadcasts.is_empty(), "clients never batch");
        let now = ctx.now;
        for out in ctx.outbox {
            let mut msg = out.msg;
            let payload_bytes = msg.payload_bytes() as u64;
            self.monitor.add(counters::MESSAGES_SENT, 1);
            if msg.receiver == SERVER_ID {
                self.uploaded_bytes += payload_bytes;
                self.monitor.add(counters::UPLOADED_BYTES, payload_bytes);
            } else {
                self.downloaded_bytes += payload_bytes;
                self.monitor.add(counters::DOWNLOADED_BYTES, payload_bytes);
            }
            let p = self.fleet.profile(from);
            let compute = p.compute_secs(out.compute_work.round() as usize);
            let comm = p.comm_secs(msg.payload_bytes());
            if self.monitor.is_live() {
                if compute > 0.0 {
                    self.monitor
                        .span(from, "local_train", "compute", now, compute);
                }
                if comm > 0.0 {
                    self.monitor
                        .span(from, "upload", "comm", now + compute, comm);
                }
            }
            let delay = compute + comm;
            msg.timestamp = (now + delay).as_secs();
            let key = self.messages.insert(msg);
            self.queue.push(now + delay, ScaleEvent::Deliver(key));
        }
        for t in ctx.timers {
            self.queue.push(
                now + t.delay_secs,
                ScaleEvent::Timer {
                    to: from,
                    condition: t.condition,
                    round: t.round,
                },
            );
        }
    }

    /// Realizes a server dispatch's intents, interleaving recorded batched
    /// broadcasts with individual sends at their anchors so sequence numbers
    /// are assigned in exactly the legacy order.
    fn enqueue_server_intents(&mut self, ctx: Ctx) {
        let now = ctx.now;
        let mut broadcasts = ctx.broadcasts.into_iter().peekable();
        for (i, out) in ctx.outbox.into_iter().enumerate() {
            while broadcasts.peek().is_some_and(|b| b.anchor <= i) {
                // fsa::allow(FSA021, peek just returned Some on this same iterator)
                let b = broadcasts.next().expect("peeked");
                self.enqueue_batch(now, b);
            }
            self.enqueue_server_single(now, out);
        }
        for b in broadcasts {
            self.enqueue_batch(now, b);
        }
        for t in ctx.timers {
            self.queue.push(
                now + t.delay_secs,
                ScaleEvent::Timer {
                    to: SERVER_ID,
                    condition: t.condition,
                    round: t.round,
                },
            );
        }
    }

    /// One individual server send: counters, download span, and either a
    /// real delivery or — for `IdAssignment`, whose client handler is a pure
    /// debug assertion — a [`ScaleEvent::Noop`] that burns the event without
    /// materializing the receiver.
    fn enqueue_server_single(&mut self, now: VirtualTime, out: Outgoing) {
        let mut msg = out.msg;
        let payload_bytes = msg.payload_bytes() as u64;
        self.monitor.add(counters::MESSAGES_SENT, 1);
        if msg.receiver == SERVER_ID {
            self.uploaded_bytes += payload_bytes;
            self.monitor.add(counters::UPLOADED_BYTES, payload_bytes);
        } else {
            self.downloaded_bytes += payload_bytes;
            self.monitor.add(counters::DOWNLOADED_BYTES, payload_bytes);
        }
        let p = self.fleet.profile(msg.receiver);
        let comm = p.comm_secs(msg.payload_bytes());
        if self.monitor.is_live() && comm > 0.0 {
            self.monitor
                .span(msg.receiver, "download", "comm", now, comm);
        }
        msg.timestamp = (now + comm).as_secs();
        let deliver_at = now + comm;
        if msg.kind == MessageKind::IdAssignment {
            self.queue.push(
                deliver_at,
                ScaleEvent::Noop {
                    receiver: msg.receiver,
                    kind: msg.kind,
                },
            );
        } else {
            let key = self.messages.insert(msg);
            self.queue.push(deliver_at, ScaleEvent::Deliver(key));
        }
    }

    /// One batched broadcast: per-target counters, spans, and delivery keys
    /// exactly as if each copy had been sent individually, but stored as a
    /// single [`BatchRecord`] occupying one heap entry.
    fn enqueue_batch(&mut self, now: VirtualTime, b: BatchedBroadcast) {
        let template = Message::new(SERVER_ID, SERVER_ID, b.kind, b.round, b.payload);
        let payload_bytes = template.payload_bytes();
        let pb64 = payload_bytes as u64;
        let seq0 = self.queue.reserve_seqs(b.targets.len() as u64);
        let mut members = Vec::with_capacity(b.targets.len());
        for (j, &c) in b.targets.iter().enumerate() {
            self.monitor.add(counters::MESSAGES_SENT, 1);
            self.downloaded_bytes += pb64;
            self.monitor.add(counters::DOWNLOADED_BYTES, pb64);
            let comm = self.fleet.profile(c).comm_secs(payload_bytes);
            if self.monitor.is_live() && comm > 0.0 {
                self.monitor.span(c, "download", "comm", now, comm);
            }
            members.push(BatchMember {
                at: now + comm,
                seq: seq0 + j as u64,
                client: c,
            });
        }
        self.schedule_batch(BatchRecord {
            template,
            members,
            next: 0,
            dir: BatchDir::ToClients,
        });
    }

    /// Builds the course report from the current state — field for field the
    /// legacy report, with client registry output harvested at hibernation
    /// instead of from live clients.
    pub fn report(&self) -> CourseReport {
        let effective_handlers =
            fs_core::effective_handler_log_grouped(&self.server, &self.rep_groups());
        let mut registry_warnings: Vec<String> = self.server.warnings().to_vec();
        let mut conformance_violations: Vec<String> = self.server.violations().to_vec();
        for ws in self.client_warnings.values() {
            for w in ws {
                if !registry_warnings.contains(w) {
                    registry_warnings.push(w.clone());
                }
            }
        }
        for vs in self.client_violations.values() {
            for v in vs {
                if !conformance_violations.contains(v) {
                    conformance_violations.push(v.clone());
                }
            }
        }
        let s = &self.server.state;
        CourseReport {
            final_time_secs: self.now.as_secs(),
            rounds: s.round,
            history: s.history.clone(),
            finish_reason: s
                .finish_reason
                .clone()
                .unwrap_or_else(|| "queue drained".to_string()),
            dropped_updates: s.dropped_updates,
            total_updates: s.total_updates,
            crashed_deliveries: self.crashed_deliveries,
            remedial_count: s.remedial_count,
            uploaded_bytes: self.uploaded_bytes,
            downloaded_bytes: self.downloaded_bytes,
            effective_handlers,
            registry_warnings,
            conformance_violations,
            dropouts: s.dropouts.clone(),
            reconnects: s.reconnects,
        }
    }

    /// First virtual time (seconds) at which global test accuracy reached
    /// `target`, if it ever did.
    pub fn time_to_accuracy(&self, target: f32) -> Option<f64> {
        self.server
            .state
            .history
            .iter()
            .find(|r| r.metrics.accuracy >= target)
            .map(|r| r.time_secs)
    }
}
