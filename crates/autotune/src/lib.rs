//! `fs-autotune` — the auto-tuning manager plug-in (§4.3).
//!
//! Hyperparameters drive FL performance, so FederatedScope ships an HPO
//! component with a unified, granularity-spanning interface:
//!
//! * [`space`] — search spaces (log/linear floats, ints, choices);
//! * [`objective`] — the budget-aware, checkpointable black-box objective
//!   wrapping an FL course;
//! * [`rs`] — random search (treats a *complete* course as the black box);
//! * [`sha`] — successive halving and Hyperband (*a few rounds* per
//!   evaluation, resuming survivors from checkpoints);
//! * [`pbt`] — population-based training on the same checkpoint mechanism;
//! * [`fedex`] — FedEx, the Federated-HPO method exploring *client-wise*
//!   configurations concurrently within single rounds, composable under an
//!   RS or SHA wrapper (the Figure 14 protocol).

pub mod fedex;
pub mod objective;
pub mod pbt;
pub mod rs;
pub mod sha;
pub mod space;

pub use fedex::{FedExHook, FedExPolicy};
pub use objective::{Checkpoint, FlObjective, Objective, TrialResult};
pub use rs::{random_search, SearchOutcome};
pub use sha::{hyperband, successive_halving};
pub use space::{Config, Param, SearchSpace};
