//! **Fault-tolerance harness** — runs the backend × strategy × fault-profile
//! grid over the distributed runtime and checks every cell's survivor
//! arithmetic:
//!
//! * `none` — no faults; every client must report;
//! * `dropout_k` — k clients lose their link mid-course (`dies_after`); the
//!   course must finish with exactly the survivors reporting and the k
//!   casualties named in the dropout record;
//! * `flaky_rejoin` (TCP only) — one client bounces under a reconnect policy;
//!   the course must finish and the server must count at least one rejoin.
//!
//! Each cell also cross-checks the monitor's `clients.dropouts` /
//! `clients.reconnects` counters against the server's own record.
//!
//! Emits `results/faults_grid.csv`
//! (`backend,strategy,profile,rounds,survivors,dropouts,reconnects,wall_ms`).
//!
//! ```text
//! cargo run -p fs-bench --release --bin exp_faults             # full grid
//! cargo run -p fs-bench --release --bin exp_faults -- --quick  # CI grid
//! ```

use fs_bench::args::ExpArgs;
use fs_bench::output::render_table;
use fs_core::config::{BroadcastManner, FlConfig, SamplerKind};
use fs_core::course::CourseBuilder;
use fs_core::distributed::{
    run_distributed_tcp_with, run_distributed_with, BusRunOptions, TcpRunOptions,
};
use fs_core::Server;
use fs_data::synth::{twitter_like, TwitterConfig};
use fs_monitor::{counters, MonitorHandle, RecordingMonitor};
use fs_net::tcp::ReconnectPolicy;
use fs_net::{FaultPlan, FaultSpec, ParticipantId};
use fs_tensor::model::logistic_regression;
use std::fs;
use std::io::Write;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

#[derive(Clone, Copy)]
enum Backend {
    Bus,
    Tcp,
}

impl Backend {
    fn label(self) -> &'static str {
        match self {
            Backend::Bus => "bus",
            Backend::Tcp => "tcp",
        }
    }
}

#[derive(Clone, Copy)]
enum Profile {
    None,
    DropoutK(usize),
    FlakyRejoin,
}

impl Profile {
    fn label(self) -> String {
        match self {
            Profile::None => "none".to_string(),
            Profile::DropoutK(k) => format!("dropout_{k}"),
            Profile::FlakyRejoin => "flaky_rejoin".to_string(),
        }
    }
}

#[derive(Clone, Copy)]
enum Strat {
    Sync,
    Goal,
}

impl Strat {
    fn label(self) -> &'static str {
        match self {
            Strat::Sync => "sync_vanilla",
            Strat::Goal => "goal_aggr_unif",
        }
    }

    fn configure(self, base: FlConfig, goal: usize) -> FlConfig {
        match self {
            Strat::Sync => base.sync_vanilla(),
            Strat::Goal => base.async_goal(
                goal,
                BroadcastManner::AfterAggregating,
                SamplerKind::Uniform,
            ),
        }
    }
}

/// Builds one course: `n` clients, all sampled every round.
fn build_course(n: usize, rounds: u64, seed: u64, strat: Strat) -> (Server, Vec<fs_core::Client>) {
    let data = twitter_like(&TwitterConfig {
        num_clients: n,
        per_client: 12,
        ..Default::default()
    });
    let dim = data.input_dim();
    let cfg = strat.configure(
        FlConfig {
            total_rounds: rounds,
            concurrency: n,
            seed,
            ..Default::default()
        },
        (n / 2).max(1),
    );
    let runner = CourseBuilder::new(
        data,
        Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
        cfg,
    )
    .build();
    (runner.server, runner.clients.into_values().collect())
}

/// The first `k` client ids, which the profile condemns to a mid-course
/// disconnect.
fn condemned(k: usize) -> Vec<ParticipantId> {
    (1..=k as ParticipantId).collect()
}

fn main() {
    let args = ExpArgs::parse();
    let seed = args.seed_or(11);
    let quick = args.quick;
    let n = if quick { 6 } else { 12 };
    let rounds = args.rounds_or(if quick { 3 } else { 5 });
    let k = if quick { 2 } else { 3 };
    let budget = Duration::from_secs(120);

    fs::create_dir_all("results").expect("create results/");
    let mut csv = fs::File::create("results/faults_grid.csv").expect("create csv");
    writeln!(
        csv,
        "backend,strategy,profile,rounds,survivors,dropouts,reconnects,wall_ms"
    )
    .expect("write csv header");

    let mut table: Vec<Vec<String>> = Vec::new();
    for backend in [Backend::Bus, Backend::Tcp] {
        for strat in [Strat::Sync, Strat::Goal] {
            let mut profiles = vec![Profile::None, Profile::DropoutK(k)];
            if matches!(backend, Backend::Tcp) {
                profiles.push(Profile::FlakyRejoin);
            }
            for profile in profiles {
                let cell = format!("{}/{}/{}", backend.label(), strat.label(), profile.label());
                let (server, clients) = build_course(n, rounds, seed, strat);
                let faults = match profile {
                    Profile::None => None,
                    Profile::DropoutK(k) => {
                        let mut plan = FaultPlan::new(seed);
                        for id in condemned(k) {
                            plan = plan.with(id, FaultSpec::dies_after(2));
                        }
                        Some(plan)
                    }
                    Profile::FlakyRejoin => {
                        Some(FaultPlan::new(seed).with(1, FaultSpec::dies_after(2)))
                    }
                };
                let monitor = Arc::new(Mutex::new(RecordingMonitor::new()));
                let handle = MonitorHandle::from_shared(monitor.clone());
                let start = Instant::now();
                let result = match backend {
                    Backend::Bus => run_distributed_with(
                        server,
                        clients,
                        budget,
                        BusRunOptions {
                            faults,
                            monitor: handle,
                        },
                    ),
                    Backend::Tcp => run_distributed_tcp_with(
                        server,
                        clients,
                        budget,
                        TcpRunOptions {
                            addr: None,
                            faults,
                            reconnect: matches!(profile, Profile::FlakyRejoin)
                                .then(ReconnectPolicy::default),
                            monitor: handle,
                        },
                    ),
                };
                let wall_ms = start.elapsed().as_millis();
                let server = result.unwrap_or_else(|e| panic!("{cell}: course failed: {e}"));
                let state = &server.state;
                assert_eq!(state.round, rounds, "{cell}: wrong round count");

                // survivor arithmetic per profile
                match profile {
                    Profile::None => {
                        assert_eq!(state.client_reports.len(), n, "{cell}: missing reports");
                        assert!(state.dropouts.is_empty(), "{cell}: phantom dropouts");
                    }
                    Profile::DropoutK(k) => {
                        // threads race, so the record's order is not fixed
                        let mut recorded = state.dropouts.clone();
                        recorded.sort_unstable();
                        recorded.dedup();
                        assert_eq!(recorded, condemned(k), "{cell}: wrong dropout record");
                        assert_eq!(
                            state.client_reports.len(),
                            n - k,
                            "{cell}: survivor count wrong"
                        );
                        for id in condemned(k) {
                            assert!(
                                !state.client_reports.contains_key(&id),
                                "{cell}: dead client {id} reported"
                            );
                        }
                    }
                    Profile::FlakyRejoin => {
                        assert!(state.reconnects >= 1, "{cell}: no rejoin counted");
                        assert!(
                            state.client_reports.len() >= n - 1,
                            "{cell}: healthy clients must all report"
                        );
                    }
                }

                // the monitor counters must agree with the server's record
                let mon = monitor.lock().unwrap_or_else(PoisonError::into_inner);
                assert_eq!(
                    mon.counter(counters::DROPOUTS),
                    state.dropouts.len() as u64,
                    "{cell}: dropout counter disagrees"
                );
                assert_eq!(
                    mon.counter(counters::RECONNECTS),
                    state.reconnects,
                    "{cell}: reconnect counter disagrees"
                );

                writeln!(
                    csv,
                    "{},{},{},{},{},{},{},{wall_ms}",
                    backend.label(),
                    strat.label(),
                    profile.label(),
                    state.round,
                    state.client_reports.len(),
                    state.dropouts.len(),
                    state.reconnects
                )
                .expect("write csv row");
                table.push(vec![
                    backend.label().to_string(),
                    strat.label().to_string(),
                    profile.label(),
                    state.round.to_string(),
                    state.client_reports.len().to_string(),
                    state.dropouts.len().to_string(),
                    state.reconnects.to_string(),
                    format!("{wall_ms}ms"),
                ]);
                eprintln!(
                    "  {cell:<36} rounds {} survivors {} dropouts {} reconnects {} ({wall_ms}ms)",
                    state.round,
                    state.client_reports.len(),
                    state.dropouts.len(),
                    state.reconnects
                );
            }
        }
    }

    println!("\nexp_faults grid (seed {seed}, {n} clients, {rounds} rounds)\n");
    println!(
        "{}",
        render_table(
            &[
                "backend",
                "strategy",
                "profile",
                "rounds",
                "survivors",
                "dropouts",
                "reconnects",
                "wall",
            ],
            &table,
        )
    );
    println!("wrote results/faults_grid.csv");
}
