//! The client-side `Trainer` abstraction (§3.1, §3.6).
//!
//! The trainer encapsulates all training detail — loss, optimizer, steps,
//! personalization — entirely decoupled from the client's message behaviour.
//! "A Trainer can be implemented as if a machine learning model is trained on
//! the local data owned by a client."

use fs_data::ClientSplit;
use fs_tensor::loss::Target;
use fs_tensor::model::{Metrics, Model};
use fs_tensor::optim::{Sgd, SgdConfig};
use fs_tensor::{ParamMap, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Predicate over parameter names deciding what a client shares.
///
/// Vanilla FedAvg shares everything; FedBN shares everything but `bn*` keys;
/// multi-goal courses share only the consensus set.
pub type ShareFilter = Arc<dyn Fn(&str) -> bool + Send + Sync>;

/// A share filter that shares every parameter.
pub fn share_all() -> ShareFilter {
    Arc::new(|_| true)
}

/// A share filter excluding names whose first path segment starts with the
/// given prefix (e.g. `"bn"` implements FedBN).
pub fn share_except_prefix(prefix: &'static str) -> ShareFilter {
    Arc::new(move |name| !name.starts_with(prefix))
}

/// The result of one local training pass.
#[derive(Clone, Debug)]
pub struct LocalUpdate {
    /// The (shared part of the) updated parameters.
    pub params: ParamMap,
    /// Training-set size (FedAvg weight).
    pub n_samples: u64,
    /// Local SGD steps actually taken.
    pub n_steps: u64,
    /// Training examples processed (`steps * batch`), which drives the device
    /// compute-time model.
    pub examples_processed: usize,
}

/// Local training behaviour of a client.
pub trait Trainer: Send {
    /// Incorporates the (shared part of the) global model into the local
    /// model without training — the *decoding + loading* step.
    fn incorporate(&mut self, global: &ParamMap);

    /// Incorporates `global`, trains locally, and returns the update to send.
    fn local_train(&mut self, global: &ParamMap, round: u64) -> LocalUpdate;

    /// Evaluates the local (possibly personalized) model on the local
    /// validation split.
    fn evaluate_val(&mut self) -> Metrics;

    /// Evaluates the local (possibly personalized) model on the local test
    /// split.
    fn evaluate_test(&mut self) -> Metrics;

    /// Local training-set size.
    fn num_train_samples(&self) -> usize;

    /// Re-specifies the local optimizer configuration (used by FedEx, §4.3).
    fn set_sgd_config(&mut self, cfg: SgdConfig) {
        let _ = cfg;
    }

    /// Attempts to duplicate this trainer — model, data, optimizer state, and
    /// RNG stream included — so the parallel runner can snapshot a client
    /// before speculatively executing its handler on a worker thread.
    ///
    /// The default returns `None`, which marks the trainer non-speculatable:
    /// its client always runs serially at the delivery point (correct, just
    /// not parallel). Trainers holding state shared with other participants
    /// (e.g. FedEx's policy behind an `Arc<Mutex<_>>`) must keep the default,
    /// because restoring a clone cannot undo effects on shared state.
    fn try_clone(&self) -> Option<Box<dyn Trainer>> {
        None
    }

    /// Downcasts this trainer into a [`LocalTrainer`] by value, consuming the
    /// box. The lazy-materialization runner uses this to dismantle a client
    /// when it goes dormant — recycling the model tensors through a pool and
    /// keeping only the tiny resumable state (optimizer, RNG) — so only
    /// `LocalTrainer`-backed clients can run under `execution: scale`.
    ///
    /// The default returns `None` (not a `LocalTrainer`).
    fn into_local(self: Box<Self>) -> Option<LocalTrainer> {
        None
    }
}

/// Configuration of the standard local training loop.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Local SGD steps per round (the paper's `Q`).
    pub local_steps: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Optimizer settings (lr, momentum, weight decay, proximal mu, clip).
    pub sgd: SgdConfig,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            local_steps: 4,
            batch_size: 20,
            sgd: SgdConfig::with_lr(0.1),
        }
    }
}

/// The standard trainer: plain local SGD on the client's model, sharing the
/// keys selected by the [`ShareFilter`]. When `sgd.prox_mu > 0` the received
/// global model is used as the proximal anchor (FedProx).
pub struct LocalTrainer {
    model: Box<dyn Model>,
    data: ClientSplit,
    cfg: TrainConfig,
    share: ShareFilter,
    opt: Sgd,
    rng: StdRng,
}

impl Clone for LocalTrainer {
    fn clone(&self) -> Self {
        Self {
            model: self.model.clone_model(),
            data: self.data.clone(),
            cfg: self.cfg.clone(),
            share: self.share.clone(),
            opt: self.opt.clone(),
            rng: self.rng.clone(),
        }
    }
}

impl LocalTrainer {
    /// Creates a trainer owning `model` and `data`.
    pub fn new(
        model: Box<dyn Model>,
        data: ClientSplit,
        cfg: TrainConfig,
        share: ShareFilter,
        seed: u64,
    ) -> Self {
        let opt = Sgd::new(cfg.sgd);
        Self {
            model,
            data,
            cfg,
            share,
            opt,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Read access to the local model (for inspection in tests/attacks).
    pub fn model(&self) -> &dyn Model {
        self.model.as_ref()
    }

    /// Mutable access to the local model.
    pub fn model_mut(&mut self) -> &mut dyn Model {
        self.model.as_mut()
    }

    /// The local dataset.
    pub fn data(&self) -> &ClientSplit {
        &self.data
    }

    /// Mutable access to the local dataset (attack simulation poisons
    /// training data in place).
    pub fn data_mut(&mut self) -> &mut ClientSplit {
        &mut self.data
    }

    /// Runs `steps` of SGD on the local training split with an optional
    /// proximal anchor, returning the mean loss over steps.
    pub fn run_sgd(&mut self, steps: usize, anchor: Option<&ParamMap>) -> f32 {
        let mut total = 0.0f32;
        for _ in 0..steps {
            let batch = self
                .data
                .train
                .sample_batch(self.cfg.batch_size, &mut self.rng);
            if batch.is_empty() {
                break;
            }
            let (loss, grads) = self.model.loss_grad(&batch.x, &batch.y);
            let mut params = self.model.get_params();
            self.opt.step(&mut params, &grads, anchor);
            self.model.set_params(&params);
            total += loss;
        }
        total / steps.max(1) as f32
    }

    fn eval_split(&mut self, which: Split) -> Metrics {
        let data = match which {
            Split::Val => &self.data.val,
            Split::Test => &self.data.test,
        };
        if data.is_empty() {
            return Metrics::default();
        }
        self.model.evaluate(&data.x, &data.y)
    }
}

enum Split {
    Val,
    Test,
}

impl Trainer for LocalTrainer {
    fn incorporate(&mut self, global: &ParamMap) {
        let mut params = self.model.get_params();
        params.merge_from(global);
        self.model.set_params(&params);
    }

    fn local_train(&mut self, global: &ParamMap, _round: u64) -> LocalUpdate {
        self.incorporate(global);
        let anchor = if self.cfg.sgd.prox_mu > 0.0 {
            Some(global.clone())
        } else {
            None
        };
        let steps = self.cfg.local_steps;
        self.run_sgd(steps, anchor.as_ref());
        let share = self.share.clone();
        let params = self.model.get_params().filter(|k| share(k));
        LocalUpdate {
            params,
            n_samples: self.data.train.len() as u64,
            n_steps: steps as u64,
            examples_processed: steps * self.cfg.batch_size.min(self.data.train.len().max(1)),
        }
    }

    fn evaluate_val(&mut self) -> Metrics {
        self.eval_split(Split::Val)
    }

    fn evaluate_test(&mut self) -> Metrics {
        self.eval_split(Split::Test)
    }

    fn num_train_samples(&self) -> usize {
        self.data.train.len()
    }

    fn set_sgd_config(&mut self, cfg: SgdConfig) {
        self.cfg.sgd = cfg;
        self.opt.set_config(cfg);
    }

    fn try_clone(&self) -> Option<Box<dyn Trainer>> {
        Some(Box::new(self.clone()))
    }

    fn into_local(self: Box<Self>) -> Option<LocalTrainer> {
        Some(*self)
    }
}

/// The constituent parts of a [`LocalTrainer`], exposed so a lazy runner can
/// dismantle a trainer on deactivation (recycling the model allocation) and
/// reassemble it bit-identically on the next activation.
pub struct TrainerParts {
    /// The local model.
    pub model: Box<dyn Model>,
    /// The local dataset.
    pub data: ClientSplit,
    /// Training-loop configuration.
    pub cfg: TrainConfig,
    /// The share filter.
    pub share: ShareFilter,
    /// Optimizer state (momentum buffers survive hibernation).
    pub opt: Sgd,
    /// The minibatch RNG, mid-stream.
    pub rng: StdRng,
}

impl LocalTrainer {
    /// Dismantles the trainer into its parts.
    pub fn into_parts(self) -> TrainerParts {
        TrainerParts {
            model: self.model,
            data: self.data,
            cfg: self.cfg,
            share: self.share,
            opt: self.opt,
            rng: self.rng,
        }
    }

    /// Reassembles a trainer from parts produced by [`Self::into_parts`].
    pub fn from_parts(parts: TrainerParts) -> Self {
        Self {
            model: parts.model,
            data: parts.data,
            cfg: parts.cfg,
            share: parts.share,
            opt: parts.opt,
            rng: parts.rng,
        }
    }
}

/// Flattens image-shaped features for dense models when needed: returns a
/// `[N, D]` view of `[N, C, H, W]` data (identity for already-flat data).
pub fn flatten_features(x: &Tensor) -> Tensor {
    if x.shape().len() == 2 {
        x.clone()
    } else {
        let n = x.shape()[0];
        let d: usize = x.shape()[1..].iter().product();
        x.reshape(&[n, d])
    }
}

/// Builds a pooled evaluation set from every client's split (used by the
/// central global-model evaluator).
pub fn pooled_test_set(dataset: &fs_data::FedDataset, max_per_client: usize) -> (Tensor, Target) {
    let mut xs: Vec<f32> = Vec::new();
    let mut classes: Vec<usize> = Vec::new();
    let mut values: Vec<f32> = Vec::new();
    let mut is_classes = true;
    let mut n = 0usize;
    for c in &dataset.clients {
        let take = c.test.len().min(max_per_client);
        if take == 0 {
            continue;
        }
        let idx: Vec<usize> = (0..take).collect();
        let b = c.test.batch(&idx);
        xs.extend_from_slice(b.x.data());
        match b.y {
            Target::Classes(cl) => classes.extend(cl),
            Target::Values(v) => {
                is_classes = false;
                values.extend(v);
            }
        }
        n += take;
    }
    let mut shape = vec![n];
    shape.extend_from_slice(&dataset.feature_shape);
    let x = Tensor::from_vec(shape, xs);
    let y = if is_classes {
        Target::Classes(classes)
    } else {
        Target::Values(values)
    };
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_data::synth::{twitter_like, TwitterConfig};
    use fs_tensor::model::logistic_regression;

    fn make_trainer() -> LocalTrainer {
        let d = twitter_like(&TwitterConfig {
            num_clients: 3,
            per_client: 20,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(0);
        let model = logistic_regression(d.input_dim(), 2, &mut rng);
        LocalTrainer::new(
            Box::new(model),
            d.clients[0].clone(),
            TrainConfig {
                local_steps: 8,
                batch_size: 4,
                sgd: SgdConfig::with_lr(0.5),
            },
            share_all(),
            1,
        )
    }

    #[test]
    fn local_train_reduces_loss() {
        let mut t = make_trainer();
        let global = t.model().get_params();
        let before = t.evaluate_val();
        for r in 0..10 {
            let up = t.local_train(&global, r);
            assert_eq!(up.n_steps, 8);
            assert!(!up.params.is_empty());
        }
        // note: we trained from `global` each time but kept drifting back;
        // loss on train data should still drop vs the random init
        let after = t.evaluate_val();
        assert!(after.loss <= before.loss + 0.5);
    }

    #[test]
    fn share_filter_restricts_update_keys() {
        let d = twitter_like(&TwitterConfig {
            num_clients: 1,
            per_client: 20,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(0);
        let model = logistic_regression(d.input_dim(), 2, &mut rng);
        let mut t = LocalTrainer::new(
            Box::new(model),
            d.clients[0].clone(),
            TrainConfig::default(),
            Arc::new(|k: &str| k.ends_with("weight")),
            1,
        );
        let global = t.model().get_params();
        let up = t.local_train(&global, 0);
        assert!(up.params.contains("fc.weight"));
        assert!(!up.params.contains("fc.bias"));
    }

    #[test]
    fn incorporate_overwrites_shared_keys_only() {
        let mut t = make_trainer();
        let mut global = ParamMap::new();
        global.insert(
            "fc.weight",
            t.model()
                .get_params()
                .get("fc.weight")
                .unwrap()
                .zeros_like(),
        );
        t.incorporate(&global);
        let p = t.model().get_params();
        assert_eq!(p.get("fc.weight").unwrap().sum(), 0.0);
        // bias untouched (still whatever init gave — likely zeros too, so
        // check instead that the key still exists)
        assert!(p.contains("fc.bias"));
    }

    #[test]
    fn share_except_prefix_excludes_bn() {
        let f = share_except_prefix("bn");
        assert!(f("fc1.weight"));
        assert!(!f("bn1.gamma"));
    }

    #[test]
    fn pooled_test_set_concatenates() {
        let d = twitter_like(&TwitterConfig {
            num_clients: 4,
            per_client: 10,
            ..Default::default()
        });
        let (x, y) = pooled_test_set(&d, 2);
        assert_eq!(x.shape()[0], y.len());
        assert!(x.shape()[0] <= 8);
        assert!(x.shape()[0] > 0);
    }

    #[test]
    fn flatten_features_reshapes_images() {
        let x = Tensor::zeros(&[3, 1, 4, 4]);
        let f = flatten_features(&x);
        assert_eq!(f.shape(), &[3, 16]);
        let flat = Tensor::zeros(&[3, 16]);
        assert_eq!(flatten_features(&flat).shape(), &[3, 16]);
    }
}
