//! The compressed-parameter container and its byte codec.
//!
//! A [`CompressedBlock`] is what a [`Compressor`](crate::Compressor) emits and
//! what travels inside compressed wire payloads: a list of named tensors,
//! each in one of three encodings ([`Encoding`]), plus a delta flag tying the
//! block to a reference model version. The byte layout extends the neutral
//! wire format's name/shape/value discipline (§3.5 of the paper): it carries
//! no architecture information, only names, shapes, and (encoded) values.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! block   := u8 flags (bit0 = delta), u64 ref_version, u32 count, ctensor*
//! ctensor := u16 name_len, name (UTF-8), u8 ndim, u32 dim*, u8 enc_tag, body
//! body    := dense: f32 * numel
//!          | quant: u8 bits, f32 min, f32 max, packed (numel values)
//!          | sparse: u32 k, u32 index[k], f32 value[k]
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// How one tensor's values are encoded.
#[derive(Clone, Debug, PartialEq)]
pub enum Encoding {
    /// Raw f32 values (no compression).
    Dense {
        /// Row-major values, `numel` of them.
        values: Vec<f32>,
    },
    /// Uniform linear quantization with per-tensor min/max.
    Quantized {
        /// Bits per value: 4 or 8.
        bits: u8,
        /// Smallest original value (maps to level 0).
        min: f32,
        /// Largest original value (maps to level `2^bits - 1`).
        max: f32,
        /// Quantization levels; 8-bit: one per byte, 4-bit: two per byte
        /// (low nibble first, odd tail padded with a zero nibble).
        packed: Vec<u8>,
    },
    /// Top-k sparsification: only `k` (index, value) pairs, rest are zero.
    Sparse {
        /// Flat row-major indices of the kept values, strictly increasing.
        indices: Vec<u32>,
        /// Kept values, parallel to `indices`.
        values: Vec<f32>,
    },
}

impl Encoding {
    /// Wire tag of this encoding.
    fn tag(&self) -> u8 {
        match self {
            Encoding::Dense { .. } => 0,
            Encoding::Quantized { .. } => 1,
            Encoding::Sparse { .. } => 2,
        }
    }

    /// Exact encoded body size in bytes for a tensor with `numel` elements.
    fn body_len(&self, numel: usize) -> usize {
        match self {
            Encoding::Dense { .. } => 4 * numel,
            Encoding::Quantized { bits, .. } => 1 + 4 + 4 + packed_len(*bits, numel),
            Encoding::Sparse { indices, .. } => 4 + 8 * indices.len(),
        }
    }
}

/// Packed byte count for `numel` values at `bits` per value.
pub fn packed_len(bits: u8, numel: usize) -> usize {
    match bits {
        8 => numel,
        4 => numel.div_ceil(2),
        _ => unreachable!("unsupported quantization width {bits}"),
    }
}

/// One compressed tensor: name, shape, and encoded values.
#[derive(Clone, Debug, PartialEq)]
pub struct CompressedTensor {
    /// Parameter name (same namespace as `ParamMap` keys).
    pub name: String,
    /// Tensor shape.
    pub shape: Vec<usize>,
    /// Encoded values.
    pub encoding: Encoding,
}

impl CompressedTensor {
    /// Number of elements the shape declares.
    pub fn numel(&self) -> usize {
        self.shape.iter().product()
    }
}

/// A compressor's output: compressed tensors plus delta bookkeeping.
#[derive(Clone, Debug, PartialEq)]
pub struct CompressedBlock {
    /// When set, tensors encode `current - reference` and the receiver must
    /// add the reference model identified by [`CompressedBlock::ref_version`].
    pub delta: bool,
    /// Version of the reference model deltas are taken against (0 and
    /// meaningless when `delta` is unset).
    pub ref_version: u64,
    /// The compressed tensors.
    pub tensors: Vec<CompressedTensor>,
}

impl CompressedBlock {
    /// A full (non-delta) block.
    pub fn full(tensors: Vec<CompressedTensor>) -> Self {
        Self {
            delta: false,
            ref_version: 0,
            tensors,
        }
    }

    /// Exact size of [`encode_block`]'s output, without allocating it.
    pub fn encoded_len(&self) -> usize {
        let mut n = 1 + 8 + 4;
        for t in &self.tensors {
            n += 2 + t.name.len() + 1 + 4 * t.shape.len() + 1 + t.encoding.body_len(t.numel());
        }
        n
    }
}

/// Errors raised while decoding compressed-block bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockCodecError {
    /// The buffer ended before the structure was complete.
    Truncated,
    /// A tensor name was not valid UTF-8.
    BadName,
    /// An unknown encoding tag or quantization width.
    BadTag(u8),
    /// Shape product overflow, sparse index out of range, or non-increasing
    /// sparse indices.
    BadShape,
}

impl fmt::Display for BlockCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockCodecError::Truncated => write!(f, "compressed block truncated"),
            BlockCodecError::BadName => write!(f, "tensor name is not valid UTF-8"),
            BlockCodecError::BadTag(t) => write!(f, "unknown compressed-encoding tag {t}"),
            BlockCodecError::BadShape => write!(f, "compressed block shape/index mismatch"),
        }
    }
}

impl std::error::Error for BlockCodecError {}

fn need(buf: &&[u8], n: usize) -> Result<(), BlockCodecError> {
    if buf.remaining() < n {
        Err(BlockCodecError::Truncated)
    } else {
        Ok(())
    }
}

/// Appends a block's wire bytes to `buf`.
pub fn put_block(buf: &mut BytesMut, block: &CompressedBlock) {
    buf.put_u8(u8::from(block.delta));
    buf.put_u64_le(block.ref_version);
    buf.put_u32_le(block.tensors.len() as u32);
    for t in &block.tensors {
        buf.put_u16_le(t.name.len() as u16);
        buf.put_slice(t.name.as_bytes());
        buf.put_u8(t.shape.len() as u8);
        for &d in &t.shape {
            buf.put_u32_le(d as u32);
        }
        buf.put_u8(t.encoding.tag());
        match &t.encoding {
            Encoding::Dense { values } => {
                for &v in values {
                    buf.put_f32_le(v);
                }
            }
            Encoding::Quantized {
                bits,
                min,
                max,
                packed,
            } => {
                buf.put_u8(*bits);
                buf.put_f32_le(*min);
                buf.put_f32_le(*max);
                buf.put_slice(packed);
            }
            Encoding::Sparse { indices, values } => {
                buf.put_u32_le(indices.len() as u32);
                for &i in indices {
                    buf.put_u32_le(i);
                }
                for &v in values {
                    buf.put_f32_le(v);
                }
            }
        }
    }
}

/// Encodes a block standalone (header + tensors).
pub fn encode_block(block: &CompressedBlock) -> Bytes {
    let mut buf = BytesMut::with_capacity(block.encoded_len());
    put_block(&mut buf, block);
    buf.freeze()
}

/// Reads one block from the cursor, advancing it; strict about every field.
pub fn take_block(buf: &mut &[u8]) -> Result<CompressedBlock, BlockCodecError> {
    need(buf, 1 + 8 + 4)?;
    let flags = buf.get_u8();
    if flags > 1 {
        return Err(BlockCodecError::BadTag(flags));
    }
    let delta = flags == 1;
    let ref_version = buf.get_u64_le();
    let count = buf.get_u32_le() as usize;
    let mut tensors = Vec::new();
    for _ in 0..count {
        need(buf, 2)?;
        let name_len = buf.get_u16_le() as usize;
        need(buf, name_len)?;
        let name = std::str::from_utf8(&buf[..name_len])
            .map_err(|_| BlockCodecError::BadName)?
            .to_string();
        buf.advance(name_len);
        need(buf, 1)?;
        let ndim = buf.get_u8() as usize;
        need(buf, 4 * ndim)?;
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(buf.get_u32_le() as usize);
        }
        let numel = shape
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or(BlockCodecError::BadShape)?;
        need(buf, 1)?;
        let encoding = match buf.get_u8() {
            0 => {
                let bytes = numel.checked_mul(4).ok_or(BlockCodecError::BadShape)?;
                need(buf, bytes)?;
                let values = (0..numel).map(|_| buf.get_f32_le()).collect();
                Encoding::Dense { values }
            }
            1 => {
                need(buf, 1 + 4 + 4)?;
                let bits = buf.get_u8();
                if bits != 4 && bits != 8 {
                    return Err(BlockCodecError::BadTag(bits));
                }
                let min = buf.get_f32_le();
                let max = buf.get_f32_le();
                let plen = packed_len(bits, numel);
                need(buf, plen)?;
                let packed = buf[..plen].to_vec();
                buf.advance(plen);
                Encoding::Quantized {
                    bits,
                    min,
                    max,
                    packed,
                }
            }
            2 => {
                need(buf, 4)?;
                let k = buf.get_u32_le() as usize;
                if k > numel {
                    return Err(BlockCodecError::BadShape);
                }
                let bytes = k.checked_mul(8).ok_or(BlockCodecError::BadShape)?;
                need(buf, bytes)?;
                let indices: Vec<u32> = (0..k).map(|_| buf.get_u32_le()).collect();
                // strictly increasing ⇒ unique and in range by the last check
                if indices.windows(2).any(|w| w[0] >= w[1])
                    || indices.last().is_some_and(|&i| i as usize >= numel)
                {
                    return Err(BlockCodecError::BadShape);
                }
                let values = (0..k).map(|_| buf.get_f32_le()).collect();
                Encoding::Sparse { indices, values }
            }
            t => return Err(BlockCodecError::BadTag(t)),
        };
        tensors.push(CompressedTensor {
            name,
            shape,
            encoding,
        });
    }
    Ok(CompressedBlock {
        delta,
        ref_version,
        tensors,
    })
}

/// Decodes a standalone block, requiring the buffer to be fully consumed.
pub fn decode_block(mut buf: &[u8]) -> Result<CompressedBlock, BlockCodecError> {
    let block = take_block(&mut buf)?;
    if !buf.is_empty() {
        return Err(BlockCodecError::BadShape);
    }
    Ok(block)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> CompressedBlock {
        CompressedBlock {
            delta: true,
            ref_version: 42,
            tensors: vec![
                CompressedTensor {
                    name: "fc.weight".into(),
                    shape: vec![2, 3],
                    encoding: Encoding::Dense {
                        values: vec![1.0, -2.0, 3.5, 0.0, 4.25, -1.5],
                    },
                },
                CompressedTensor {
                    name: "fc.bias".into(),
                    shape: vec![5],
                    encoding: Encoding::Quantized {
                        bits: 4,
                        min: -1.0,
                        max: 1.0,
                        packed: vec![0x21, 0x0f, 0x07],
                    },
                },
                CompressedTensor {
                    name: "emb".into(),
                    shape: vec![10],
                    encoding: Encoding::Sparse {
                        indices: vec![1, 7],
                        values: vec![0.5, -0.25],
                    },
                },
            ],
        }
    }

    #[test]
    fn block_roundtrips() {
        let b = sample_block();
        let bytes = encode_block(&b);
        assert_eq!(bytes.len(), b.encoded_len());
        assert_eq!(decode_block(&bytes).unwrap(), b);
    }

    #[test]
    fn empty_block_roundtrips() {
        let b = CompressedBlock::full(vec![]);
        let bytes = encode_block(&b);
        assert_eq!(bytes.len(), b.encoded_len());
        assert_eq!(decode_block(&bytes).unwrap(), b);
    }

    #[test]
    fn truncation_rejected_at_every_cut() {
        let bytes = encode_block(&sample_block());
        for cut in 0..bytes.len() {
            assert_eq!(
                decode_block(&bytes[..cut]),
                Err(BlockCodecError::Truncated),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut raw = encode_block(&sample_block()).to_vec();
        raw.push(0);
        assert_eq!(decode_block(&raw), Err(BlockCodecError::BadShape));
    }

    #[test]
    fn bad_encoding_tag_rejected() {
        let mut b = sample_block();
        b.tensors.truncate(1);
        let mut raw = encode_block(&b).to_vec();
        // the encoding tag sits right after name and shape of tensor 0
        let tag_pos = 1 + 8 + 4 + 2 + "fc.weight".len() + 1 + 4 * 2;
        raw[tag_pos] = 9;
        assert_eq!(decode_block(&raw), Err(BlockCodecError::BadTag(9)));
    }

    #[test]
    fn sparse_index_out_of_range_rejected() {
        let b = CompressedBlock::full(vec![CompressedTensor {
            name: "t".into(),
            shape: vec![4],
            encoding: Encoding::Sparse {
                indices: vec![1, 4],
                values: vec![1.0, 2.0],
            },
        }]);
        let raw = encode_block(&b);
        assert_eq!(decode_block(&raw), Err(BlockCodecError::BadShape));
    }

    #[test]
    fn sparse_unsorted_indices_rejected() {
        let b = CompressedBlock::full(vec![CompressedTensor {
            name: "t".into(),
            shape: vec![4],
            encoding: Encoding::Sparse {
                indices: vec![2, 1],
                values: vec![1.0, 2.0],
            },
        }]);
        let raw = encode_block(&b);
        assert_eq!(decode_block(&raw), Err(BlockCodecError::BadShape));
    }

    #[test]
    fn bad_quant_width_rejected() {
        let b = CompressedBlock::full(vec![CompressedTensor {
            name: "t".into(),
            shape: vec![2],
            encoding: Encoding::Quantized {
                bits: 8,
                min: 0.0,
                max: 1.0,
                packed: vec![0, 255],
            },
        }]);
        let mut raw = encode_block(&b).to_vec();
        let bits_pos = 1 + 8 + 4 + 2 + 1 + 1 + 4 + 1;
        assert_eq!(raw[bits_pos], 8);
        raw[bits_pos] = 3;
        assert_eq!(decode_block(&raw), Err(BlockCodecError::BadTag(3)));
    }

    #[test]
    fn garbage_never_panics() {
        // cheap deterministic fuzz: decode must only ever return Err
        let mut state = 0x1234_5678_u64;
        for len in 0..200 {
            let mut raw = Vec::with_capacity(len);
            for _ in 0..len {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                raw.push((state >> 33) as u8);
            }
            let _ = decode_block(&raw);
        }
    }

    #[test]
    fn encoded_len_matches_for_all_encodings() {
        for numel in [0usize, 1, 2, 3, 7, 8] {
            let dense = CompressedTensor {
                name: "d".into(),
                shape: vec![numel],
                encoding: Encoding::Dense {
                    values: vec![0.5; numel],
                },
            };
            let q4 = CompressedTensor {
                name: "q4".into(),
                shape: vec![numel],
                encoding: Encoding::Quantized {
                    bits: 4,
                    min: 0.0,
                    max: 1.0,
                    packed: vec![0u8; packed_len(4, numel)],
                },
            };
            let sparse = CompressedTensor {
                name: "s".into(),
                shape: vec![numel],
                encoding: Encoding::Sparse {
                    indices: (0..numel as u32).collect(),
                    values: vec![1.0; numel],
                },
            };
            let b = CompressedBlock::full(vec![dense, q4, sparse]);
            assert_eq!(encode_block(&b).len(), b.encoded_len(), "numel={numel}");
        }
    }
}
