//! Systematic gradient checking: every layer's analytic backward pass is
//! verified against central finite differences of a scalar objective, for
//! both input gradients and parameter gradients.

use fs_tensor::layer::{
    AvgPool2d, BatchNorm1d, Conv2d, Flatten, Layer, Linear, MaxPool2d, Relu, Sequential, Sigmoid,
    Tanh,
};
use fs_tensor::{ParamMap, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scalar objective: weighted sum of outputs, so dL/dy is a fixed random
/// tensor and backward() gives dL/dx analytically.
struct Probe {
    weights: Tensor,
}

impl Probe {
    fn new(shape: &[usize], rng: &mut StdRng) -> Self {
        let numel: usize = shape.iter().product();
        let data = (0..numel).map(|_| rng.gen::<f32>() - 0.5).collect();
        Self {
            weights: Tensor::from_vec(shape.to_vec(), data),
        }
    }

    fn loss(&self, y: &Tensor) -> f32 {
        y.dot(&self.weights)
    }
}

/// Checks dL/dx of `layer` at `x` against finite differences.
fn check_input_grad(layer: &mut dyn Layer, x: &Tensor, tol: f32, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let y = layer.forward(x, true);
    let probe = Probe::new(y.shape(), &mut rng);
    let analytic = layer.backward(&probe.weights);
    let eps = 1e-2f32;
    // probe a deterministic subset of coordinates
    let stride = (x.numel() / 24).max(1);
    for i in (0..x.numel()).step_by(stride) {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let fp = probe.loss(&layer.forward(&xp, true));
        let fm = probe.loss(&layer.forward(&xm, true));
        let fd = (fp - fm) / (2.0 * eps);
        let a = analytic.data()[i];
        assert!(
            (fd - a).abs() <= tol * (1.0 + fd.abs().max(a.abs())),
            "input grad [{i}]: finite-diff {fd} vs analytic {a}"
        );
    }
}

/// Checks dL/dtheta of `layer` at `x` against finite differences.
fn check_param_grads(layer: &mut dyn Layer, x: &Tensor, tol: f32, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    layer.zero_grad();
    let y = layer.forward(x, true);
    let probe = Probe::new(y.shape(), &mut rng);
    let _ = layer.backward(&probe.weights);
    let mut grads = ParamMap::new();
    layer.collect_grads("l", &mut grads);
    let mut params = ParamMap::new();
    layer.collect_params("l", &mut params);
    let eps = 1e-2f32;
    for (name, g) in grads.iter() {
        let stride = (g.numel() / 12).max(1);
        for i in (0..g.numel()).step_by(stride) {
            let mut pp = params.clone();
            pp.get_mut(name).unwrap().data_mut()[i] += eps;
            layer.load_params("l", &pp);
            let fp = probe.loss(&layer.forward(x, true));
            let mut pm = params.clone();
            pm.get_mut(name).unwrap().data_mut()[i] -= eps;
            layer.load_params("l", &pm);
            let fm = probe.loss(&layer.forward(x, true));
            let fd = (fp - fm) / (2.0 * eps);
            let a = g.data()[i];
            assert!(
                (fd - a).abs() <= tol * (1.0 + fd.abs().max(a.abs())),
                "{name}[{i}]: finite-diff {fd} vs analytic {a}"
            );
            layer.load_params("l", &params);
        }
    }
}

fn rand_input(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let numel: usize = shape.iter().product();
    let data = (0..numel).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect();
    Tensor::from_vec(shape.to_vec(), data)
}

#[test]
fn linear_gradcheck() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut l = Linear::new(6, 4, &mut rng);
    let x = rand_input(&[3, 6], 2);
    check_input_grad(&mut l, &x, 2e-2, 3);
    check_param_grads(&mut l, &x, 2e-2, 3);
}

#[test]
fn relu_gradcheck() {
    // offset inputs away from the kink at 0
    let mut x = rand_input(&[4, 5], 4);
    for v in x.data_mut() {
        if v.abs() < 0.1 {
            *v += 0.2;
        }
    }
    check_input_grad(&mut Relu::new(), &x, 2e-2, 5);
}

#[test]
fn tanh_gradcheck() {
    let x = rand_input(&[4, 5], 6);
    check_input_grad(&mut Tanh::new(), &x, 2e-2, 7);
}

#[test]
fn sigmoid_gradcheck() {
    let x = rand_input(&[4, 5], 8);
    check_input_grad(&mut Sigmoid::new(), &x, 2e-2, 9);
}

#[test]
fn conv2d_gradcheck() {
    let mut rng = StdRng::seed_from_u64(10);
    let mut l = Conv2d::new(2, 3, 3, 1, &mut rng);
    let x = rand_input(&[2, 2, 5, 5], 11);
    check_input_grad(&mut l, &x, 3e-2, 12);
    check_param_grads(&mut l, &x, 3e-2, 12);
}

#[test]
fn avgpool_gradcheck() {
    let x = rand_input(&[2, 2, 6, 6], 13);
    check_input_grad(&mut AvgPool2d::new(), &x, 2e-2, 14);
}

#[test]
fn maxpool_gradcheck() {
    // spread values so the argmax is stable under the probe epsilon
    let mut x = rand_input(&[1, 1, 6, 6], 16);
    for (i, v) in x.data_mut().iter_mut().enumerate() {
        *v += i as f32 * 0.3;
    }
    check_input_grad(&mut MaxPool2d::new(), &x, 2e-2, 16);
}

#[test]
fn batchnorm_gradcheck() {
    let mut l = BatchNorm1d::new(4);
    let x = rand_input(&[6, 4], 17);
    // batch-norm's forward is batch-coupled: finite differences on one input
    // coordinate move the batch statistics too, and the analytic backward
    // accounts for that — this check verifies exactly that coupling
    check_input_grad(&mut l, &x, 4e-2, 18);
    check_param_grads(&mut l, &x, 4e-2, 18);
}

#[test]
fn sequential_chain_gradcheck() {
    let mut rng = StdRng::seed_from_u64(19);
    let mut net = Sequential::new();
    net.push("conv", Box::new(Conv2d::new(1, 2, 3, 1, &mut rng)));
    net.push("act", Box::new(Tanh::new()));
    net.push("pool", Box::new(AvgPool2d::new()));
    net.push("flat", Box::new(Flatten::new()));
    net.push("fc", Box::new(Linear::new(2 * 3 * 3, 3, &mut rng)));
    let x = rand_input(&[2, 1, 6, 6], 20);
    check_input_grad(&mut net, &x, 4e-2, 21);
    check_param_grads(&mut net, &x, 4e-2, 21);
}
