//! Loss-threshold membership inference.
//!
//! The attacker holds a model (e.g. the published global model) and asks, for
//! each candidate example, "was this in the training set?". Overfit models
//! assign systematically lower loss to members; thresholding the per-example
//! loss is the classical yardstick attack.

use fs_tensor::loss::softmax;
use fs_tensor::model::Model;
use fs_tensor::Tensor;

/// Per-example cross-entropy losses of `model` on `(x, y)`.
pub fn per_example_losses(model: &mut dyn Model, x: &Tensor, y: &[usize]) -> Vec<f32> {
    let logits = model.predict(x);
    let probs = softmax(&logits);
    y.iter()
        .enumerate()
        .map(|(i, &label)| -(probs.at(i, label).max(1e-12)).ln())
        .collect()
}

/// Outcome of a membership-inference evaluation.
#[derive(Clone, Copy, Debug)]
pub struct MembershipReport {
    /// Attack accuracy at the best threshold (0.5 = no leakage).
    pub accuracy: f32,
    /// Area under the ROC curve of the loss score (0.5 = no leakage).
    pub auc: f32,
    /// The best-performing loss threshold.
    pub threshold: f32,
}

/// Evaluates the attack given known member and non-member examples.
pub fn evaluate_membership_attack(
    model: &mut dyn Model,
    members_x: &Tensor,
    members_y: &[usize],
    nonmembers_x: &Tensor,
    nonmembers_y: &[usize],
) -> MembershipReport {
    let member_losses = per_example_losses(model, members_x, members_y);
    let nonmember_losses = per_example_losses(model, nonmembers_x, nonmembers_y);
    // AUC: probability a random member has lower loss than a random non-member
    let mut wins = 0.0f64;
    for &m in &member_losses {
        for &n in &nonmember_losses {
            if m < n {
                wins += 1.0;
            } else if m == n {
                wins += 0.5;
            }
        }
    }
    let auc = (wins / (member_losses.len() as f64 * nonmember_losses.len() as f64)) as f32;
    // best threshold over the pooled values
    let mut candidates: Vec<f32> = member_losses
        .iter()
        .chain(&nonmember_losses)
        .copied()
        .collect();
    candidates.sort_by(|a, b| a.partial_cmp(b).expect("finite losses"));
    let total = (member_losses.len() + nonmember_losses.len()) as f32;
    let mut best_acc = 0.0f32;
    let mut best_thr = 0.0f32;
    for &thr in &candidates {
        let tp = member_losses.iter().filter(|&&l| l <= thr).count();
        let tn = nonmember_losses.iter().filter(|&&l| l > thr).count();
        let acc = (tp + tn) as f32 / total;
        if acc > best_acc {
            best_acc = acc;
            best_thr = thr;
        }
    }
    MembershipReport {
        accuracy: best_acc,
        auc,
        threshold: best_thr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_data::synth::{twitter_like, TwitterConfig};
    use fs_tensor::loss::Target;
    use fs_tensor::model::logistic_regression;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn overfit_model_leaks_membership() {
        let d = twitter_like(&TwitterConfig {
            num_clients: 2,
            per_client: 40,
            ..Default::default()
        });
        let train = &d.clients[0].train;
        let holdout = &d.clients[1].train;
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = logistic_regression(d.input_dim(), 2, &mut rng);
        // overfit hard on client 0's data
        for _ in 0..300 {
            let (_, g) = m.loss_grad(&train.x, &train.y);
            let mut p = m.get_params();
            p.add_scaled(-1.0, &g);
            m.set_params(&p);
        }
        let ty = match &train.y {
            Target::Classes(c) => c.clone(),
            _ => unreachable!(),
        };
        let hy = match &holdout.y {
            Target::Classes(c) => c.clone(),
            _ => unreachable!(),
        };
        let report = evaluate_membership_attack(&mut m, &train.x, &ty, &holdout.x, &hy);
        assert!(
            report.auc > 0.7,
            "overfit model should leak, auc {}",
            report.auc
        );
        assert!(report.accuracy > 0.6);
    }

    #[test]
    fn random_model_does_not_leak() {
        let d = twitter_like(&TwitterConfig {
            num_clients: 2,
            per_client: 40,
            seed: 5,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = logistic_regression(d.input_dim(), 2, &mut rng);
        let a = &d.clients[0].train;
        let b = &d.clients[1].train;
        let ay = match &a.y {
            Target::Classes(c) => c.clone(),
            _ => unreachable!(),
        };
        let by = match &b.y {
            Target::Classes(c) => c.clone(),
            _ => unreachable!(),
        };
        let report = evaluate_membership_attack(&mut m, &a.x, &ay, &b.x, &by);
        assert!(
            (report.auc - 0.5).abs() < 0.2,
            "untrained model should not leak, auc {}",
            report.auc
        );
    }

    #[test]
    fn per_example_losses_match_mean() {
        let d = twitter_like(&TwitterConfig {
            num_clients: 1,
            per_client: 20,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = logistic_regression(d.input_dim(), 2, &mut rng);
        let t = &d.clients[0].train;
        let y = match &t.y {
            Target::Classes(c) => c.clone(),
            _ => unreachable!(),
        };
        let per = per_example_losses(&mut m, &t.x, &y);
        let mean: f32 = per.iter().sum::<f32>() / per.len() as f32;
        let metrics = m.evaluate(&t.x, &t.y);
        assert!((mean - metrics.loss).abs() < 1e-4);
    }
}
