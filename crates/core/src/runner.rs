//! The standalone runner: a deterministic virtual-time simulation.
//!
//! Implements the paper's evaluation protocol (§5.3.1) exactly: the server
//! broadcasts at timestamp 0; a client's reply is stamped
//! `received + compute + communication` (compute from its device profile);
//! the server handles messages in timestamp order and its own time is
//! negligible, so everything it emits inherits the triggering timestamp.
//! Crashed deliveries (device failures) silently drop the round's broadcast,
//! which is what the `time_up` remedial machinery exists to absorb.

use crate::client::Client;
use crate::ctx::Ctx;
use crate::eval::EvalRecord;
use crate::event::Condition;
use crate::server::Server;
use fs_monitor::{counters, MonitorHandle};
use fs_net::{Message, MessageKind, ParticipantId, SERVER_ID};
use fs_sim::{EventQueue, Fleet, VirtualTime};
use fs_verify::{VerifyMode, VerifyReport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// An entry in the simulation's event queue.
enum SimEvent {
    /// Deliver a message to its receiver.
    Deliver(Message),
    /// Fire a timer-armed condition on a participant.
    Timer {
        /// The participant the timer belongs to (currently always the server).
        to: ParticipantId,
        /// The condition to raise.
        condition: Condition,
        /// The round the timer was armed in.
        round: u64,
    },
}

/// Outcome summary of a finished course.
#[derive(Clone, Debug)]
pub struct CourseReport {
    /// Final virtual time.
    pub final_time_secs: f64,
    /// Aggregation rounds completed.
    pub rounds: u64,
    /// The global learning curve.
    pub history: Vec<EvalRecord>,
    /// Why the course ended.
    pub finish_reason: String,
    /// Updates dropped for staleness.
    pub dropped_updates: u64,
    /// Total updates received.
    pub total_updates: u64,
    /// Broadcast deliveries lost to device crashes.
    pub crashed_deliveries: u64,
    /// Remedial-measure activations.
    pub remedial_count: u64,
    /// Total payload bytes sent client → server (exact wire sizes, so
    /// compressed uploads show their real savings).
    pub uploaded_bytes: u64,
    /// Total payload bytes sent server → clients.
    pub downloaded_bytes: u64,
    /// The effective `<event, handler>` pairs that took effect, per
    /// participant group — "printed out and recorded in the experimental
    /// logs" (§3.2).
    pub effective_handlers: Vec<String>,
    /// Registry overwrite warnings collected while assembling the course.
    pub registry_warnings: Vec<String>,
    /// Emit-conformance violations observed during dispatch (`FSV040`):
    /// handlers that emitted events absent from their declared `emits` list.
    pub conformance_violations: Vec<String>,
}

impl CourseReport {
    /// Total payload bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.uploaded_bytes + self.downloaded_bytes
    }

    /// The learning-curve point with the highest accuracy, if any.
    pub fn best(&self) -> Option<&EvalRecord> {
        self.history
            .iter()
            .max_by(|a, b| a.metrics.accuracy.total_cmp(&b.metrics.accuracy))
    }

    /// Best global accuracy observed over the course (0 when never evaluated).
    pub fn best_accuracy(&self) -> f32 {
        self.best().map_or(0.0, |r| r.metrics.accuracy)
    }

    /// First virtual time (seconds) at which global accuracy reached
    /// `target`, if it ever did.
    pub fn time_to_accuracy(&self, target: f32) -> Option<f64> {
        self.history
            .iter()
            .find(|r| r.metrics.accuracy >= target)
            .map(|r| r.time_secs)
    }
}

/// Runs an FL course under virtual time.
pub struct StandaloneRunner {
    /// The server participant.
    pub server: Server,
    /// The client participants, keyed by id.
    pub clients: BTreeMap<ParticipantId, Client>,
    /// Device profiles.
    pub fleet: Fleet,
    /// Current virtual time.
    pub now: VirtualTime,
    /// Broadcast deliveries dropped by simulated device crashes.
    pub crashed_deliveries: u64,
    /// Payload bytes sent toward the server so far.
    pub uploaded_bytes: u64,
    /// Payload bytes sent toward clients so far.
    pub downloaded_bytes: u64,
    queue: EventQueue<SimEvent>,
    crash_rng: StdRng,
    max_events: u64,
    monitor: MonitorHandle,
}

impl StandaloneRunner {
    /// Assembles a runner; the course starts when [`StandaloneRunner::run`]
    /// is called.
    pub fn new(server: Server, clients: Vec<Client>, fleet: Fleet, seed: u64) -> Self {
        let clients: BTreeMap<ParticipantId, Client> =
            clients.into_iter().map(|c| (c.state.id, c)).collect();
        assert_eq!(
            fleet.len(),
            clients.len(),
            "fleet size must match client count"
        );
        Self {
            server,
            clients,
            fleet,
            now: VirtualTime::ZERO,
            crashed_deliveries: 0,
            uploaded_bytes: 0,
            downloaded_bytes: 0,
            queue: EventQueue::new(),
            crash_rng: StdRng::seed_from_u64(seed ^ 0xc4a5),
            max_events: 50_000_000,
            monitor: MonitorHandle::null(),
        }
    }

    /// Caps the number of processed events (safety valve for tests).
    pub fn with_max_events(mut self, max: u64) -> Self {
        self.max_events = max;
        self
    }

    /// Attaches an observability sink. Dispatch spans, charged virtual-time
    /// intervals, byte/message counters, and per-round metrics flow into it;
    /// the default null handle keeps all of that free.
    pub fn with_monitor(mut self, monitor: MonitorHandle) -> Self {
        self.monitor = monitor;
        self
    }

    fn enqueue_intents(&mut self, from: ParticipantId, ctx: Ctx) {
        let now = ctx.now;
        for out in ctx.outbox {
            let mut msg = out.msg;
            let payload_bytes = msg.payload_bytes() as u64;
            self.monitor.add(counters::MESSAGES_SENT, 1);
            // the monitor's byte counters are bumped at the same statements
            // that charge the report's totals, so they reconcile exactly
            if msg.receiver == SERVER_ID {
                self.uploaded_bytes += payload_bytes;
                self.monitor.add(counters::UPLOADED_BYTES, payload_bytes);
            } else {
                self.downloaded_bytes += payload_bytes;
                self.monitor.add(counters::DOWNLOADED_BYTES, payload_bytes);
            }
            let delay = if from == SERVER_ID {
                // server time is negligible; the receiver pays the download
                let p = self.fleet.profile(msg.receiver);
                let comm = p.comm_secs(msg.payload_bytes());
                if self.monitor.is_live() && comm > 0.0 {
                    self.monitor
                        .span(msg.receiver, "download", "comm", now, comm);
                }
                comm
            } else {
                let p = self.fleet.profile(from);
                let compute = p.compute_secs(out.compute_work.round() as usize);
                let comm = p.comm_secs(msg.payload_bytes());
                if self.monitor.is_live() {
                    if compute > 0.0 {
                        self.monitor
                            .span(from, "local_train", "compute", now, compute);
                    }
                    if comm > 0.0 {
                        self.monitor
                            .span(from, "upload", "comm", now + compute, comm);
                    }
                }
                compute + comm
            };
            msg.timestamp = (now + delay).as_secs();
            self.queue.push(now + delay, SimEvent::Deliver(msg));
        }
        for t in ctx.timers {
            self.queue.push(
                now + t.delay_secs,
                SimEvent::Timer {
                    to: from,
                    condition: t.condition,
                    round: t.round,
                },
            );
        }
    }

    /// Verifies the assembled course per the configured [`VerifyMode`].
    /// Returns the report as an error under `Enforce` when it has Errors.
    fn preflight(&self) -> Result<(), Box<VerifyReport>> {
        let mode = self.server.state.cfg.verify;
        if mode == VerifyMode::Skip {
            return Ok(());
        }
        let clients: Vec<&Client> = self.clients.values().collect();
        let report =
            crate::verify::verify_assembled(&self.server, &clients, Some(&self.server.state.cfg));
        let verbose = std::env::var_os("FS_VERIFY_LOG").is_some();
        if verbose {
            for line in crate::verify::effective_handler_log(&self.server, &clients) {
                eprintln!("fs-verify: {line}");
            }
        }
        if verbose || !report.is_clean() {
            eprint!("{}", report.render_table());
        }
        if mode == VerifyMode::Enforce && report.has_errors() {
            return Err(Box::new(report));
        }
        Ok(())
    }

    /// Runs the course to completion and returns the report, or the
    /// verification report when the course fails static analysis under
    /// [`VerifyMode::Enforce`].
    pub fn try_run(&mut self) -> Result<CourseReport, Box<VerifyReport>> {
        self.preflight()?;
        Ok(self.run_unchecked())
    }

    /// Runs the course to completion (queue drained or event cap reached) and
    /// returns the report.
    ///
    /// # Panics
    /// Panics with the rendered diagnostic table when the course fails static
    /// verification under [`VerifyMode::Enforce`]; use
    /// [`StandaloneRunner::try_run`] to handle that case programmatically.
    pub fn run(&mut self) -> CourseReport {
        match self.try_run() {
            Ok(report) => report,
            Err(verify) => panic!("course rejected by static verification:\n{verify}"),
        }
    }

    fn run_unchecked(&mut self) -> CourseReport {
        // kick off: every client asks to join at t = 0
        let ids: Vec<ParticipantId> = self.clients.keys().copied().collect();
        for id in ids {
            let mut ctx = Ctx::with_monitor(VirtualTime::ZERO, self.monitor.clone());
            self.monitor
                .enter(id, "start", "dispatch", VirtualTime::ZERO);
            self.clients
                .get_mut(&id)
                .expect("client exists")
                .start(&mut ctx);
            self.monitor.exit(id, VirtualTime::ZERO);
            self.enqueue_intents(id, ctx);
        }
        let mut events = 0u64;
        while let Some((at, ev)) = self.queue.pop() {
            events += 1;
            if events > self.max_events {
                self.server.state.finish_reason =
                    Some(format!("event cap {} reached", self.max_events));
                break;
            }
            self.now = at;
            match ev {
                SimEvent::Deliver(msg) => {
                    self.monitor.add(counters::MESSAGES_DELIVERED, 1);
                    if msg.receiver == SERVER_ID {
                        let mut ctx = Ctx::with_monitor(at, self.monitor.clone());
                        self.monitor
                            .enter(SERVER_ID, msg.kind.name(), "dispatch", at);
                        self.server.handle(&msg, &mut ctx);
                        self.monitor.exit(SERVER_ID, at);
                        self.enqueue_intents(SERVER_ID, ctx);
                    } else {
                        // device crash: the broadcast never reaches the client
                        if msg.kind == MessageKind::ModelParams
                            && self.fleet.crashes(msg.receiver, &mut self.crash_rng)
                        {
                            self.crashed_deliveries += 1;
                            self.monitor.add(counters::CRASHED_DELIVERIES, 1);
                            continue;
                        }
                        let id = msg.receiver;
                        if msg.kind == MessageKind::ModelParams {
                            self.monitor.add(counters::PARTICIPATION, 1);
                        }
                        if let Some(client) = self.clients.get_mut(&id) {
                            let mut ctx = Ctx::with_monitor(at, self.monitor.clone());
                            self.monitor.enter(id, msg.kind.name(), "dispatch", at);
                            client.handle(&msg, &mut ctx);
                            self.monitor.exit(id, at);
                            self.enqueue_intents(id, ctx);
                        }
                    }
                }
                SimEvent::Timer {
                    to,
                    condition,
                    round,
                } => {
                    if to == SERVER_ID {
                        let mut ctx = Ctx::with_monitor(at, self.monitor.clone());
                        self.monitor.enter(SERVER_ID, "timer", "dispatch", at);
                        self.server.handle_timer(condition, round, &mut ctx);
                        self.monitor.exit(SERVER_ID, at);
                        self.enqueue_intents(SERVER_ID, ctx);
                    }
                }
            }
        }
        self.report()
    }

    /// Builds the course report from the current state.
    pub fn report(&self) -> CourseReport {
        let clients: Vec<&Client> = self.clients.values().collect();
        let effective_handlers = crate::verify::effective_handler_log(&self.server, &clients);
        let mut registry_warnings: Vec<String> = self.server.warnings().to_vec();
        let mut conformance_violations: Vec<String> = self.server.violations().to_vec();
        for c in &clients {
            for w in c.warnings() {
                if !registry_warnings.contains(w) {
                    registry_warnings.push(w.clone());
                }
            }
            for v in c.violations() {
                if !conformance_violations.contains(v) {
                    conformance_violations.push(v.clone());
                }
            }
        }
        let s = &self.server.state;
        CourseReport {
            final_time_secs: self.now.as_secs(),
            rounds: s.round,
            history: s.history.clone(),
            finish_reason: s
                .finish_reason
                .clone()
                .unwrap_or_else(|| "queue drained".to_string()),
            dropped_updates: s.dropped_updates,
            total_updates: s.total_updates,
            crashed_deliveries: self.crashed_deliveries,
            remedial_count: s.remedial_count,
            uploaded_bytes: self.uploaded_bytes,
            downloaded_bytes: self.downloaded_bytes,
            effective_handlers,
            registry_warnings,
            conformance_violations,
        }
    }

    /// First virtual time (seconds) at which global test accuracy reached
    /// `target`, if it ever did.
    pub fn time_to_accuracy(&self, target: f32) -> Option<f64> {
        self.server
            .state
            .history
            .iter()
            .find(|r| r.metrics.accuracy >= target)
            .map(|r| r.time_secs)
    }
}
