//! A dense, row-major `f32` tensor.
//!
//! The tensor is deliberately minimal: it supports exactly the operations the
//! layers in [`crate::layer`] need, with shapes checked at call time (a shape
//! mismatch in an FL course is always a programming error, so the methods
//! panic rather than return `Result`).

use std::fmt;

/// Dense row-major tensor of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(
                f,
                ", data=[{:.4}, {:.4}, .. {} values])",
                self.data[0],
                self.data[1],
                self.data.len()
            )
        }
    }
}

impl Tensor {
    /// Creates a tensor from a shape and backing data.
    ///
    /// # Panics
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            data.len(),
            "shape {:?} implies {} elements, got {}",
            shape,
            numel,
            data.len()
        );
        Self { shape, data }
    }

    /// All-zeros tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; numel],
        }
    }

    /// All-`v` tensor of the given shape.
    pub fn full(shape: &[usize], v: f32) -> Self {
        let numel = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![v; numel],
        }
    }

    /// All-ones tensor of the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A zero tensor with the same shape as `self`.
    pub fn zeros_like(&self) -> Self {
        Self::zeros(&self.shape)
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the backing data (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Number of rows of a 2-D tensor.
    #[inline]
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "rows() requires a 2-D tensor");
        self.shape[0]
    }

    /// Number of columns of a 2-D tensor.
    #[inline]
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "cols() requires a 2-D tensor");
        self.shape[1]
    }

    /// Element of a 2-D tensor at `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Mutable element of a 2-D tensor at `(r, c)`.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 2);
        let cols = self.shape[1];
        &mut self.data[r * cols + c]
    }

    /// Returns a tensor with the same data but a new shape.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            self.data.len(),
            "reshape {:?} -> {:?}",
            self.shape,
            shape
        );
        Self {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// Matrix product of two 2-D tensors: `[m,k] x [k,n] -> [m,n]`.
    ///
    /// Uses the cache-friendly i-k-j loop ordering.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(
            k, k2,
            "matmul inner dims: {:?} x {:?}",
            self.shape, rhs.shape
        );
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o_row = &mut out[i * n..(i + 1) * n];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[kk * n..(kk + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// Transpose of a 2-D tensor.
    pub fn t(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "t() requires a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            shape: vec![n, m],
            data: out,
        }
    }

    /// Elementwise sum; shapes must match exactly.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Elementwise difference; shapes must match exactly.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Elementwise (Hadamard) product; shapes must match exactly.
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "mul shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a * b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// `self += alpha * rhs` in place; shapes must match exactly.
    pub fn add_scaled(&mut self, alpha: f32, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape, "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Inner product of the flattened tensors; shapes must match exactly.
    pub fn dot(&self, rhs: &Tensor) -> f32 {
        assert_eq!(self.shape, rhs.shape, "dot shape mismatch");
        self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).sum()
    }

    /// Euclidean (Frobenius) norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Squared Euclidean distance to `rhs`.
    pub fn sq_dist(&self, rhs: &Tensor) -> f32 {
        assert_eq!(self.shape, rhs.shape, "sq_dist shape mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Row `r` of a 2-D tensor as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.shape.len(), 2);
        let n = self.shape[1];
        &self.data[r * n..(r + 1) * n]
    }

    /// Stacks 1-D row slices into a 2-D tensor `[rows.len(), width]`.
    ///
    /// # Panics
    /// Panics if any row's length differs from `width`.
    pub fn stack_rows(rows: &[&[f32]], width: usize) -> Tensor {
        let mut data = Vec::with_capacity(rows.len() * width);
        for r in rows {
            assert_eq!(r.len(), width, "stack_rows width mismatch");
            data.extend_from_slice(r);
        }
        Tensor {
            shape: vec![rows.len(), width],
            data,
        }
    }

    /// Argmax index of each row of a 2-D tensor.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.len(), 2);
        let n = self.shape[1];
        self.data
            .chunks_exact(n)
            .map(|row| {
                let mut best = 0usize;
                for (i, &v) in row.iter().enumerate().skip(1) {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// `true` when every element is finite (no NaN / infinity).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.at(1, 2), 6.0);
        assert_eq!(t.numel(), 6);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_shape_mismatch_panics() {
        let _ = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(vec![3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![2, 2], vec![3.0, -1.0, 2.0, 5.0]);
        let eye = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&eye).data(), a.data());
        assert_eq!(eye.matmul(&a).data(), a.data());
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.t().t(), a);
        assert_eq!(a.t().shape(), &[3, 2]);
        assert_eq!(a.t().at(2, 1), 6.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(vec![3], vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.dot(&b), 32.0);
    }

    #[test]
    fn add_scaled_and_scale() {
        let mut a = Tensor::from_vec(vec![2], vec![1.0, 2.0]);
        let b = Tensor::from_vec(vec![2], vec![10.0, 20.0]);
        a.add_scaled(0.5, &b);
        assert_eq!(a.data(), &[6.0, 12.0]);
        a.scale(2.0);
        assert_eq!(a.data(), &[12.0, 24.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert!((a.norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let a = Tensor::from_vec(vec![2, 3], vec![0.1, 0.9, 0.5, 2.0, 2.0, 1.0]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn stack_rows_builds_matrix() {
        let r0 = [1.0f32, 2.0];
        let r1 = [3.0f32, 4.0];
        let t = Tensor::stack_rows(&[&r0, &r1], 2);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn finite_check() {
        let t = Tensor::from_vec(vec![2], vec![1.0, 2.0]);
        assert!(t.is_finite());
        let t = Tensor::from_vec(vec![2], vec![1.0, f32::NAN]);
        assert!(!t.is_finite());
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = a.reshape(&[3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data(), a.data());
    }
}
