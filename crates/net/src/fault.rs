//! Deterministic fault injection for the distributed transports.
//!
//! Real cross-device FL runs over unreliable clients: frames get lost,
//! links stall, devices die mid-round (§3.3.1, §5.3.1). This module is the
//! seeded fault model the distributed runners and the `exp_faults` grid
//! inject through: a [`FaultPlan`] assigns each participant a [`FaultSpec`]
//! (drop probability, per-frame delay, disconnect-after-N-frames), and each
//! participant draws its [`FaultState`] from the plan — an independent RNG
//! stream keyed by `(plan seed, participant id)`, so the same plan replays
//! the same fault schedule regardless of thread interleaving.
//!
//! The model is transport-agnostic: [`FaultyBus`] applies it to in-process
//! bus sends, and `fs_net::tcp::ResilientPeer` applies it to socket frames
//! (where a `Disconnect` verdict really closes the connection, so the hub's
//! liveness machinery is exercised end to end).

use crate::bus::{Bus, BusError};
use crate::message::{Message, ParticipantId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::time::Duration;

/// Per-participant fault behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultSpec {
    /// Probability that any given outgoing frame is silently lost.
    pub drop_prob: f64,
    /// Fixed extra latency applied to every delivered frame, milliseconds.
    pub delay_ms: u64,
    /// Number of frames the participant sends successfully before its
    /// connection dies (the N+1th send attempt disconnects instead).
    pub disconnect_after: Option<u64>,
}

impl FaultSpec {
    /// A perfectly healthy participant (the default).
    pub fn healthy() -> Self {
        Self::default()
    }

    /// Loses each frame with probability `p`, independently.
    pub fn lossy(p: f64) -> Self {
        Self {
            drop_prob: p,
            ..Self::default()
        }
    }

    /// Sends `n` frames, then the connection dies.
    pub fn dies_after(n: u64) -> Self {
        Self {
            disconnect_after: Some(n),
            ..Self::default()
        }
    }
}

/// The verdict for one frame-send attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver the frame (after the spec's delay, if any).
    Deliver,
    /// Silently lose the frame; the connection stays up.
    Drop,
    /// The connection dies; the frame is lost and no further frames flow
    /// until (and unless) the participant reconnects.
    Disconnect,
}

/// A seeded, per-participant fault schedule for one course.
///
/// Overrides live in a `BTreeMap` so every walk over them (roster listings,
/// fault-draw setup) is in participant-id order by construction (FSA003).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    default: FaultSpec,
    overrides: BTreeMap<ParticipantId, FaultSpec>,
}

impl FaultPlan {
    /// A plan where every participant is healthy unless overridden.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            default: FaultSpec::healthy(),
            overrides: BTreeMap::new(),
        }
    }

    /// Sets the spec applied to participants without an override.
    pub fn with_default(mut self, spec: FaultSpec) -> Self {
        self.default = spec;
        self
    }

    /// Sets one participant's spec.
    pub fn with(mut self, id: ParticipantId, spec: FaultSpec) -> Self {
        self.overrides.insert(id, spec);
        self
    }

    /// The spec governing `id`.
    pub fn spec_for(&self, id: ParticipantId) -> FaultSpec {
        self.overrides.get(&id).copied().unwrap_or(self.default)
    }

    /// Ids with an explicit override (the "interesting" participants), in
    /// id order — the `BTreeMap` guarantees it without an explicit sort.
    pub fn overridden(&self) -> Vec<ParticipantId> {
        self.overrides.keys().copied().collect()
    }

    /// Builds `id`'s fault state: an independent RNG stream keyed by
    /// `(seed, id)`, so schedules are reproducible per participant no matter
    /// how threads interleave.
    pub fn state_for(&self, id: ParticipantId) -> FaultState {
        FaultState {
            spec: self.spec_for(id),
            rng: StdRng::seed_from_u64(
                self.seed ^ (u64::from(id)).wrapping_mul(0x9e3779b97f4a7c15),
            ),
            frames: 0,
        }
    }
}

/// One participant's live fault schedule.
#[derive(Clone, Debug)]
pub struct FaultState {
    spec: FaultSpec,
    rng: StdRng,
    frames: u64,
}

impl FaultState {
    /// Judges the next frame-send attempt. Counts the attempt.
    pub fn next_action(&mut self) -> FaultAction {
        self.frames += 1;
        if let Some(n) = self.spec.disconnect_after {
            if self.frames > n {
                return FaultAction::Disconnect;
            }
        }
        if self.spec.drop_prob > 0.0 && self.rng.gen::<f64>() < self.spec.drop_prob {
            return FaultAction::Drop;
        }
        FaultAction::Deliver
    }

    /// The extra per-frame latency, if any.
    pub fn delay(&self) -> Option<Duration> {
        (self.spec.delay_ms > 0).then(|| Duration::from_millis(self.spec.delay_ms))
    }

    /// Frame-send attempts judged so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }
}

/// What happened to a frame pushed through a faulty link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendOutcome {
    /// The frame reached the transport.
    Sent,
    /// The frame was lost; the link stays up.
    Dropped,
    /// The link died; the frame was lost.
    Disconnected,
}

/// A client's view of the in-process bus with fault injection on its sends.
///
/// Once a `Disconnect` verdict fires, every later send reports
/// [`SendOutcome::Disconnected`] without touching the bus — the participant
/// is gone, exactly like a dead socket.
pub struct FaultyBus {
    bus: Bus,
    state: FaultState,
    dead: bool,
}

impl FaultyBus {
    /// Wraps a bus clone with `state`'s fault schedule.
    pub fn new(bus: Bus, state: FaultState) -> Self {
        Self {
            bus,
            state,
            dead: false,
        }
    }

    /// Sends `msg` through the fault model.
    pub fn send(&mut self, msg: &Message) -> Result<SendOutcome, BusError> {
        if self.dead {
            return Ok(SendOutcome::Disconnected);
        }
        match self.state.next_action() {
            FaultAction::Deliver => {
                if let Some(d) = self.state.delay() {
                    std::thread::sleep(d);
                }
                self.bus.send(msg)?;
                Ok(SendOutcome::Sent)
            }
            FaultAction::Drop => Ok(SendOutcome::Dropped),
            FaultAction::Disconnect => {
                self.dead = true;
                Ok(SendOutcome::Disconnected)
            }
        }
    }

    /// Whether a `Disconnect` verdict has fired.
    pub fn is_dead(&self) -> bool {
        self.dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_participant() {
        let plan = FaultPlan::new(7).with_default(FaultSpec::lossy(0.5));
        let mut a1 = plan.state_for(3);
        let mut a2 = plan.state_for(3);
        let seq1: Vec<FaultAction> = (0..64).map(|_| a1.next_action()).collect();
        let seq2: Vec<FaultAction> = (0..64).map(|_| a2.next_action()).collect();
        assert_eq!(seq1, seq2, "same (seed, id) must replay the same schedule");
        let mut b = plan.state_for(4);
        let seq3: Vec<FaultAction> = (0..64).map(|_| b.next_action()).collect();
        assert_ne!(seq1, seq3, "different ids draw independent streams");
    }

    #[test]
    fn disconnect_fires_after_n_frames() {
        let plan = FaultPlan::new(1).with(2, FaultSpec::dies_after(3));
        let mut s = plan.state_for(2);
        for _ in 0..3 {
            assert_eq!(s.next_action(), FaultAction::Deliver);
        }
        assert_eq!(s.next_action(), FaultAction::Disconnect);
        assert_eq!(s.next_action(), FaultAction::Disconnect);
    }

    #[test]
    fn healthy_default_always_delivers() {
        let plan = FaultPlan::new(9);
        let mut s = plan.state_for(1);
        for _ in 0..100 {
            assert_eq!(s.next_action(), FaultAction::Deliver);
        }
    }

    #[test]
    fn faulty_bus_goes_silent_after_disconnect() {
        use crate::message::{MessageKind, Payload, SERVER_ID};
        let mut bus = Bus::new();
        let server_mb = bus.register(SERVER_ID);
        bus.register(1);
        let plan = FaultPlan::new(5).with(1, FaultSpec::dies_after(1));
        let mut link = FaultyBus::new(bus, plan.state_for(1));
        let msg = Message::new(1, SERVER_ID, MessageKind::JoinIn, 0, Payload::Empty);
        assert_eq!(link.send(&msg).unwrap(), SendOutcome::Sent);
        assert_eq!(link.send(&msg).unwrap(), SendOutcome::Disconnected);
        assert!(link.is_dead());
        assert_eq!(link.send(&msg).unwrap(), SendOutcome::Disconnected);
        // exactly one frame crossed the bus
        assert!(server_mb.try_recv().unwrap().is_some());
        assert!(server_mb.try_recv().unwrap().is_none());
    }
}
