//! Integration tests: attack simulation inside real FL courses (§4.2).

use fedscope::attack::backdoor::{attack_success_rate, dba_fragments, Trigger};
use fedscope::attack::malicious::{AttackMode, MaliciousTrainer};
use fedscope::attack::membership::evaluate_membership_attack;
use fedscope::core::aggregator::Krum;
use fedscope::core::config::FlConfig;
use fedscope::core::course::CourseBuilder;
use fedscope::core::trainer::{share_all, LocalTrainer, TrainConfig};
use fedscope::data::synth::{cifar_like, twitter_like, ImageConfig, TwitterConfig};
use fedscope::tensor::loss::Target;
use fedscope::tensor::model::{convnet2, logistic_regression, Model};
use fedscope::tensor::optim::SgdConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn image_cfg() -> ImageConfig {
    ImageConfig {
        num_clients: 8,
        per_client: 40,
        img: 8,
        num_classes: 4,
        seed: 77,
        ..Default::default()
    }
}

/// Runs a course where the first `n_mal` clients stamp DBA trigger fragments.
fn dba_course(n_mal: usize) -> (f32, f32) {
    let data = cifar_like(&image_cfg(), None);
    let clean_test = data.clients[7].test.clone();
    let full = Trigger {
        row: 0,
        col: 0,
        h: 2,
        w: 4,
        value: 3.0,
    };
    let frags = dba_fragments(&full, 2);
    let cfg = FlConfig {
        total_rounds: 12,
        concurrency: 8,
        local_steps: 8,
        batch_size: 8,
        sgd: SgdConfig::with_lr(0.2),
        seed: 77,
        ..Default::default()
    };
    let mut runner = CourseBuilder::new(
        data,
        Box::new(|rng| Box::new(convnet2(1, 8, 16, 4, 0.0, rng))),
        cfg,
    )
    .trainer_factory(Box::new(move |i, model, split, cfg| {
        let inner = LocalTrainer::new(
            model,
            split,
            TrainConfig {
                local_steps: cfg.local_steps,
                batch_size: cfg.batch_size,
                sgd: cfg.sgd,
            },
            share_all(),
            cfg.seed ^ (i as u64 + 1),
        );
        if i < n_mal {
            Box::new(MaliciousTrainer::new(
                inner,
                AttackMode::DataPoison {
                    trigger: frags[i % frags.len()].clone(),
                    target_class: 0,
                    fraction: 0.5,
                },
                cfg.seed ^ (0xabc + i as u64),
            ))
        } else {
            Box::new(inner)
        }
    }))
    .build();
    runner.run();
    let mut rng = StdRng::seed_from_u64(1);
    let mut model = convnet2(1, 8, 16, 4, 0.0, &mut rng);
    let mut p = model.get_params();
    p.merge_from(&runner.server.state.global);
    model.set_params(&p);
    let clean = model.evaluate(&clean_test.x, &clean_test.y).accuracy;
    // the *full* trigger activates the backdoor even though no single client
    // ever stamped it whole — the hallmark of DBA
    let asr = attack_success_rate(&mut model, &clean_test, &full, 0);
    (clean, asr)
}

#[test]
fn dba_fragments_assemble_into_a_backdoor() {
    let (_, asr_benign) = dba_course(0);
    let (clean, asr) = dba_course(4);
    assert!(
        asr > asr_benign + 0.2,
        "DBA failed: benign asr {asr_benign}, attacked {asr}"
    );
    assert!(clean > 0.4, "attack destroyed clean accuracy: {clean}");
}

#[test]
fn krum_blunts_model_replacement() {
    let run = |use_krum: bool| -> f32 {
        let data = twitter_like(&TwitterConfig {
            num_clients: 10,
            per_client: 30,
            ..Default::default()
        });
        let dim = data.input_dim();
        let cfg = FlConfig {
            total_rounds: 12,
            concurrency: 10,
            local_steps: 6,
            batch_size: 4,
            sgd: SgdConfig::with_lr(0.3),
            seed: 5,
            ..Default::default()
        };
        let mut builder = CourseBuilder::new(
            data,
            Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
            cfg,
        )
        .trainer_factory(Box::new(|i, model, mut split, cfg| {
            if i == 0 {
                // swap classes 0 and 1 through a temp index
                fedscope::attack::backdoor::label_flip(&mut split.train, 1, 2);
                fedscope::attack::backdoor::label_flip(&mut split.train, 0, 1);
                fedscope::attack::backdoor::label_flip(&mut split.train, 2, 0);
            }
            let inner = LocalTrainer::new(
                model,
                split,
                TrainConfig {
                    local_steps: cfg.local_steps,
                    batch_size: cfg.batch_size,
                    sgd: cfg.sgd,
                },
                share_all(),
                cfg.seed ^ (i as u64 + 1),
            );
            if i == 0 {
                Box::new(MaliciousTrainer::new(
                    inner,
                    AttackMode::ModelReplacement { n_participants: 10 },
                    9,
                ))
            } else {
                Box::new(inner)
            }
        }));
        if use_krum {
            builder = builder.aggregator(Box::new(Krum::multi(1, 5)));
        }
        let mut runner = builder.build();
        let report = runner.run();
        report.history.last().unwrap().metrics.accuracy
    };
    let fedavg = run(false);
    let krum = run(true);
    assert!(
        krum > fedavg,
        "Krum ({krum}) must beat FedAvg ({fedavg}) under replacement"
    );
}

#[test]
fn membership_attack_weakens_on_federated_model() {
    // FL's averaging regularizes: the global model should leak less about any
    // single client's training data than a locally overfit model does
    let data = twitter_like(&TwitterConfig {
        num_clients: 12,
        per_client: 30,
        ..Default::default()
    });
    let dim = data.input_dim();
    // locally overfit model on client 0
    let mut rng = StdRng::seed_from_u64(2);
    let mut local = logistic_regression(dim, 2, &mut rng);
    let t0 = &data.clients[0].train;
    for _ in 0..300 {
        let (_, g) = local.loss_grad(&t0.x, &t0.y);
        let mut p = local.get_params();
        p.add_scaled(-1.0, &g);
        local.set_params(&p);
    }
    // federated model over all clients
    let cfg = FlConfig {
        total_rounds: 15,
        concurrency: 12,
        local_steps: 4,
        batch_size: 4,
        sgd: SgdConfig::with_lr(0.3),
        seed: 3,
        ..Default::default()
    };
    let mut runner = CourseBuilder::new(
        data.clone(),
        Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
        cfg,
    )
    .build();
    runner.run();
    let mut fed = logistic_regression(dim, 2, &mut rng);
    let mut p = fed.get_params();
    p.merge_from(&runner.server.state.global);
    fed.set_params(&p);

    let labels = |t: &Target| match t {
        Target::Classes(c) => c.clone(),
        _ => unreachable!(),
    };
    let (mx, my) = (&data.clients[0].train.x, labels(&data.clients[0].train.y));
    let (nx, ny) = (&data.clients[1].train.x, labels(&data.clients[1].train.y));
    let local_leak = evaluate_membership_attack(&mut local, mx, &my, nx, &ny);
    let fed_leak = evaluate_membership_attack(&mut fed, mx, &my, nx, &ny);
    assert!(
        fed_leak.auc < local_leak.auc,
        "federation should reduce leakage: local {} vs fed {}",
        local_leak.auc,
        fed_leak.auc
    );
}
