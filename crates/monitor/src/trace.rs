//! Chrome trace-event JSON export.
//!
//! Emits the [trace-event format] consumed by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): complete events (`"ph": "X"`) with
//! microsecond timestamps, one named `tid` track per participant. Virtual
//! seconds map to trace microseconds, so the timeline reads in course time.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::api::SERVER_TRACK;
use crate::recording::RecordingMonitor;
use serde::Value;

fn event(name: &str, cat: &str, track: u32, ts_us: f64, dur_us: f64) -> Value {
    Value::Object(vec![
        ("name".to_string(), Value::String(name.to_string())),
        ("cat".to_string(), Value::String(cat.to_string())),
        ("ph".to_string(), Value::String("X".to_string())),
        ("ts".to_string(), Value::F64(ts_us)),
        ("dur".to_string(), Value::F64(dur_us)),
        ("pid".to_string(), Value::UInt(0)),
        ("tid".to_string(), Value::UInt(u64::from(track))),
    ])
}

fn thread_name(track: u32) -> Value {
    let label = if track == SERVER_TRACK {
        "server".to_string()
    } else {
        format!("client {track}")
    };
    Value::Object(vec![
        ("name".to_string(), Value::String("thread_name".to_string())),
        ("ph".to_string(), Value::String("M".to_string())),
        ("pid".to_string(), Value::UInt(0)),
        ("tid".to_string(), Value::UInt(u64::from(track))),
        (
            "args".to_string(),
            Value::Object(vec![("name".to_string(), Value::String(label))]),
        ),
    ])
}

/// Renders the monitor's spans as a trace-event JSON document
/// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`).
pub fn chrome_trace(monitor: &RecordingMonitor) -> Value {
    let mut events = Vec::new();
    // name every track that carries at least one span
    let mut tracks: Vec<u32> = monitor.spans().iter().map(|s| s.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    for track in tracks {
        events.push(thread_name(track));
    }
    for s in monitor.spans() {
        events.push(event(
            &s.name,
            &s.cat,
            s.track,
            s.start_secs * 1e6,
            s.dur_secs * 1e6,
        ));
    }
    Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(events)),
        (
            "displayTimeUnit".to_string(),
            Value::String("ms".to_string()),
        ),
    ])
}

/// [`chrome_trace`] serialized to a JSON string.
pub fn chrome_trace_json(monitor: &RecordingMonitor) -> String {
    serde_json::to_string(&chrome_trace(monitor)).unwrap_or_else(|_| "{}".to_string())
}

/// Structural check that `json` is a loadable trace document: parses as an
/// object whose `traceEvents` is a non-empty array where every entry has
/// `name`/`ph`/`pid`/`tid`, and every `"X"` event also has numeric
/// `ts`/`dur`.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let doc: Value = serde_json::from_str(json).map_err(|e| format!("not JSON: {e:?}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("missing traceEvents array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".to_string());
    }
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        for key in ["name", "pid", "tid"] {
            if ev.get(key).is_none() {
                return Err(format!("event {i}: missing {key}"));
            }
        }
        if ph == "X" {
            for key in ["ts", "dur"] {
                let val = ev
                    .get(key)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: missing numeric {key}"))?;
                if !val.is_finite() || val < 0.0 {
                    return Err(format!("event {i}: invalid {key} {val}"));
                }
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Monitor;
    use fs_sim::VirtualTime;

    fn t(secs: f64) -> VirtualTime {
        VirtualTime::from_secs(secs)
    }

    #[test]
    fn trace_has_named_tracks_and_complete_events() {
        let mut m = RecordingMonitor::new();
        m.enter(0, "broadcast", "dispatch", t(0.0));
        m.exit(0, t(0.5));
        m.span(2, "compute", "compute", t(1.0), 3.0);
        let json = chrome_trace_json(&m);
        let n = validate_chrome_trace(&json).unwrap();
        // 2 metadata + 2 complete events
        assert_eq!(n, 4);
        let doc: Value = serde_json::from_str(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // metadata first; server track named "server", client named "client 2"
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert_eq!(names, vec!["server", "client 2"]);
        // virtual seconds become microseconds
        let compute = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("compute"))
            .unwrap();
        assert_eq!(compute.get("ts").unwrap().as_f64().unwrap(), 1e6);
        assert_eq!(compute.get("dur").unwrap().as_f64().unwrap(), 3e6);
    }

    #[test]
    fn validation_rejects_malformed_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents": []}"#).is_err());
        assert!(
            validate_chrome_trace(r#"{"traceEvents": [{"ph": "X", "name": "a"}]}"#).is_err(),
            "X event without ts/dur must fail"
        );
    }
}
