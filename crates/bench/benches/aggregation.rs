//! Criterion: federated aggregation scaling in client count and model size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fs_core::aggregator::{Aggregator, CoordinateMedian, FedAvg, Krum, ReceivedUpdate};
use fs_tensor::{ParamMap, Tensor};

fn updates(n_clients: usize, numel: usize) -> (ParamMap, Vec<ReceivedUpdate>) {
    let mut global = ParamMap::new();
    global.insert("w", Tensor::zeros(&[numel]));
    let ups = (0..n_clients)
        .map(|i| {
            let mut p = ParamMap::new();
            p.insert("w", Tensor::full(&[numel], i as f32 * 0.01));
            ReceivedUpdate {
                client: i as u32 + 1,
                params: p,
                staleness: (i % 5) as u64,
                n_samples: 10 + i as u64,
                n_steps: 4,
            }
        })
        .collect();
    (global, ups)
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation");
    for n in [10usize, 50, 200] {
        let (global, ups) = updates(n, 10_000);
        group.bench_with_input(BenchmarkId::new("fedavg", n), &ups, |b, ups| {
            let mut agg = FedAvg::new(0.5);
            b.iter(|| agg.aggregate(std::hint::black_box(&global), std::hint::black_box(ups)))
        });
    }
    // Krum is O(n^2) in clients: bench on smaller n
    for n in [10usize, 30] {
        let (global, ups) = updates(n, 2_000);
        group.bench_with_input(BenchmarkId::new("krum", n), &ups, |b, ups| {
            let mut agg = Krum::new(2);
            b.iter(|| agg.aggregate(std::hint::black_box(&global), std::hint::black_box(ups)))
        });
        group.bench_with_input(BenchmarkId::new("median", n), &ups, |b, ups| {
            let mut agg = CoordinateMedian;
            b.iter(|| agg.aggregate(std::hint::black_box(&global), std::hint::black_box(ups)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
