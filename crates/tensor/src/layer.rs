//! Neural-network layers with manual analytic gradients.
//!
//! Each layer caches whatever it needs during `forward` and consumes the cache
//! in `backward`, accumulating parameter gradients internally. The layers here
//! are exactly those needed by the paper's ModelZoo subset used in the
//! evaluation: `Linear`, `Conv2d` (the "ConvNet2" building block), `Relu`,
//! `MaxPool2d`, `Flatten`, `Dropout`, and `BatchNorm1d` (FedBN personalizes
//! batch-norm parameters, §3.4.1).
//!
//! All gradients are checked against central finite differences in the crate's
//! integration tests.

use crate::{init, ParamMap, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A differentiable network layer.
///
/// Parameters and their gradients are exposed through [`ParamMap`] collection
/// so FL code can address them by name (`"<layer>.<param>"`).
pub trait Layer: Send {
    /// Computes the layer output, caching intermediates for `backward`.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Back-propagates `grad_out`, accumulating parameter gradients and
    /// returning the gradient with respect to the layer input.
    ///
    /// Must be called after a matching `forward` with `train = true`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Copies this layer's parameters into `out` under `prefix`.
    fn collect_params(&self, prefix: &str, out: &mut ParamMap) {
        let _ = (prefix, out);
    }

    /// Copies this layer's accumulated gradients into `out` under `prefix`.
    fn collect_grads(&self, prefix: &str, out: &mut ParamMap) {
        let _ = (prefix, out);
    }

    /// Loads this layer's parameters from `src` under `prefix`.
    ///
    /// Missing keys are left unchanged (this is what lets FedBN clients keep
    /// local batch-norm parameters while loading the shared global rest).
    fn load_params(&mut self, prefix: &str, src: &ParamMap) {
        let _ = (prefix, src);
    }

    /// Resets accumulated gradients to zero.
    fn zero_grad(&mut self) {}

    /// Names (relative to the layer) of non-trained buffers such as
    /// batch-norm running statistics.
    fn buffer_names(&self) -> Vec<&'static str> {
        Vec::new()
    }

    /// Deep copy as a boxed trait object.
    fn clone_layer(&self) -> Box<dyn Layer>;
}

/// Fully connected layer: `y = x W^T + b` with `x: [B, in]`, `W: [out, in]`.
pub struct Linear {
    w: Tensor,
    b: Tensor,
    gw: Tensor,
    gb: Tensor,
    x_cache: Option<Tensor>,
    /// Reusable staging buffer for `W^T` (see [`Tensor::matmul_nt_into`]);
    /// grows once, then every forward runs allocation-free inside the gemm.
    wt_scratch: Vec<f32>,
}

impl Linear {
    /// Creates a Kaiming-initialized linear layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            w: init::kaiming_normal(&[out_dim, in_dim], in_dim, rng),
            b: Tensor::zeros(&[out_dim]),
            gw: Tensor::zeros(&[out_dim, in_dim]),
            gb: Tensor::zeros(&[out_dim]),
            x_cache: None,
            wt_scratch: Vec::new(),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.shape()[1]
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.shape()[0]
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 2, "Linear expects [B, in]");
        assert_eq!(x.cols(), self.in_dim(), "Linear input dim");
        let mut y = Tensor::zeros(&[0]);
        x.matmul_nt_into(&self.w, &mut y, &mut self.wt_scratch);
        let out = self.b.data().len();
        for row in y.data_mut().chunks_exact_mut(out) {
            for (v, &bv) in row.iter_mut().zip(self.b.data()) {
                *v += bv;
            }
        }
        if train {
            self.x_cache = Some(x.clone());
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .x_cache
            .take()
            .expect("Linear::backward without forward(train)");
        // gw += grad_out^T x ; gb += column sums ; grad_in = grad_out W
        grad_out.matmul_tn_acc(&x, &mut self.gw);
        let out = grad_out.cols();
        for row in grad_out.data().chunks_exact(out) {
            for (g, &v) in self.gb.data_mut().iter_mut().zip(row) {
                *g += v;
            }
        }
        grad_out.matmul(&self.w)
    }

    fn collect_params(&self, prefix: &str, out: &mut ParamMap) {
        out.insert(format!("{prefix}.weight"), self.w.clone());
        out.insert(format!("{prefix}.bias"), self.b.clone());
    }

    fn collect_grads(&self, prefix: &str, out: &mut ParamMap) {
        out.insert(format!("{prefix}.weight"), self.gw.clone());
        out.insert(format!("{prefix}.bias"), self.gb.clone());
    }

    fn load_params(&mut self, prefix: &str, src: &ParamMap) {
        if let Some(w) = src.get(&format!("{prefix}.weight")) {
            assert_eq!(w.shape(), self.w.shape(), "Linear weight shape");
            self.w = w.clone();
        }
        if let Some(b) = src.get(&format!("{prefix}.bias")) {
            assert_eq!(b.shape(), self.b.shape(), "Linear bias shape");
            self.b = b.clone();
        }
    }

    fn zero_grad(&mut self) {
        self.gw = self.gw.zeros_like();
        self.gb = self.gb.zeros_like();
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Linear {
            w: self.w.clone(),
            b: self.b.clone(),
            gw: self.gw.clone(),
            gb: self.gb.clone(),
            x_cache: None,
            wt_scratch: Vec::new(),
        })
    }
}

/// Rectified linear unit, applied elementwise.
#[derive(Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.mask = Some(x.data().iter().map(|&v| v > 0.0).collect());
        }
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self
            .mask
            .take()
            .expect("Relu::backward without forward(train)");
        let data = grad_out
            .data()
            .iter()
            .zip(mask)
            .map(|(&g, m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(grad_out.shape().to_vec(), data)
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Relu::default())
    }
}

/// Hyperbolic-tangent activation.
#[derive(Default)]
pub struct Tanh {
    out: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = x.map(f32::tanh);
        if train {
            self.out = Some(y.clone());
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self
            .out
            .take()
            .expect("Tanh::backward without forward(train)");
        // d tanh = 1 - tanh^2
        let data = grad_out
            .data()
            .iter()
            .zip(y.data())
            .map(|(&g, &t)| g * (1.0 - t * t))
            .collect();
        Tensor::from_vec(grad_out.shape().to_vec(), data)
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Tanh::default())
    }
}

/// Logistic-sigmoid activation.
#[derive(Default)]
pub struct Sigmoid {
    out: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = x.map(|v| 1.0 / (1.0 + (-v).exp()));
        if train {
            self.out = Some(y.clone());
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self
            .out
            .take()
            .expect("Sigmoid::backward without forward(train)");
        let data = grad_out
            .data()
            .iter()
            .zip(y.data())
            .map(|(&g, &s)| g * s * (1.0 - s))
            .collect();
        Tensor::from_vec(grad_out.shape().to_vec(), data)
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Sigmoid::default())
    }
}

/// 2x2 average pooling with stride 2 over `[B, C, H, W]`.
#[derive(Default)]
pub struct AvgPool2d {
    in_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates a 2x2/stride-2 average-pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 4, "AvgPool2d expects [B, C, H, W]");
        let (b, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oh, ow) = (h / 2, w / 2);
        let xd = x.data();
        let mut out = vec![0.0f32; b * c * oh * ow];
        for bi in 0..b {
            for ci in 0..c {
                let base = (bi * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut s = 0.0f32;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                s += xd[base + (oy * 2 + dy) * w + (ox * 2 + dx)];
                            }
                        }
                        out[((bi * c + ci) * oh + oy) * ow + ox] = s * 0.25;
                    }
                }
            }
        }
        if train {
            self.in_shape = Some(x.shape().to_vec());
        }
        Tensor::from_vec(vec![b, c, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let in_shape = self
            .in_shape
            .take()
            .expect("AvgPool2d::backward without forward(train)");
        let (b, c, h, w) = (in_shape[0], in_shape[1], in_shape[2], in_shape[3]);
        let (oh, ow) = (h / 2, w / 2);
        let gd = grad_out.data();
        let mut grad_in = vec![0.0f32; b * c * h * w];
        for bi in 0..b {
            for ci in 0..c {
                let base = (bi * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = gd[((bi * c + ci) * oh + oy) * ow + ox] * 0.25;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                grad_in[base + (oy * 2 + dy) * w + (ox * 2 + dx)] += g;
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(in_shape, grad_in)
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(AvgPool2d::default())
    }
}

/// Flattens `[B, ...]` to `[B, prod(...)]`.
#[derive(Default)]
pub struct Flatten {
    in_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let b = x.shape()[0];
        let rest: usize = x.shape()[1..].iter().product();
        if train {
            self.in_shape = Some(x.shape().to_vec());
        }
        x.reshape(&[b, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .in_shape
            .take()
            .expect("Flatten::backward without forward(train)");
        grad_out.reshape(&shape)
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Flatten::default())
    }
}

/// Inverted dropout: at train time zeroes activations with probability `p`
/// and scales survivors by `1/(1-p)`; identity at eval time.
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and a private seeded RNG.
    ///
    /// # Panics
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        Self {
            p,
            rng: StdRng::seed_from_u64(seed),
            mask: None,
        }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let mask: Vec<f32> = (0..x.numel())
            .map(|_| {
                if self.rng.gen::<f32>() < self.p {
                    0.0
                } else {
                    1.0 / keep
                }
            })
            .collect();
        let data = x.data().iter().zip(&mask).map(|(&v, &m)| v * m).collect();
        self.mask = Some(mask);
        Tensor::from_vec(x.shape().to_vec(), data)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match self.mask.take() {
            Some(mask) => {
                let data = grad_out
                    .data()
                    .iter()
                    .zip(&mask)
                    .map(|(&g, &m)| g * m)
                    .collect();
                Tensor::from_vec(grad_out.shape().to_vec(), data)
            }
            None => grad_out.clone(),
        }
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Dropout {
            p: self.p,
            rng: self.rng.clone(),
            mask: None,
        })
    }
}

/// Batch normalization over the feature dimension of `[B, D]` inputs.
///
/// Holds learnable `gamma`/`beta` and running statistics (exposed as buffers
/// `running_mean` / `running_var`). FedBN (§3.4.1) keeps all four local.
pub struct BatchNorm1d {
    gamma: Tensor,
    beta: Tensor,
    g_gamma: Tensor,
    g_beta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer over `dim` features.
    pub fn new(dim: usize) -> Self {
        Self {
            gamma: Tensor::ones(&[dim]),
            beta: Tensor::zeros(&[dim]),
            g_gamma: Tensor::zeros(&[dim]),
            g_beta: Tensor::zeros(&[dim]),
            running_mean: Tensor::zeros(&[dim]),
            running_var: Tensor::ones(&[dim]),
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }
}

impl Layer for BatchNorm1d {
    #[allow(clippy::needless_range_loop)] // index loops read clearer in kernels
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 2, "BatchNorm1d expects [B, D]");
        let (b, d) = (x.rows(), x.cols());
        assert_eq!(d, self.gamma.numel(), "BatchNorm1d dim");
        let mut out = Tensor::zeros(&[b, d]);
        if train {
            let mut mean = vec![0.0f32; d];
            let mut var = vec![0.0f32; d];
            for r in 0..b {
                for c in 0..d {
                    mean[c] += x.at(r, c);
                }
            }
            for m in &mut mean {
                *m /= b as f32;
            }
            for r in 0..b {
                for c in 0..d {
                    let diff = x.at(r, c) - mean[c];
                    var[c] += diff * diff;
                }
            }
            for v in &mut var {
                *v /= b as f32;
            }
            let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
            let mut x_hat = Tensor::zeros(&[b, d]);
            for r in 0..b {
                for c in 0..d {
                    let xh = (x.at(r, c) - mean[c]) * inv_std[c];
                    *x_hat.at_mut(r, c) = xh;
                    *out.at_mut(r, c) = self.gamma.data()[c] * xh + self.beta.data()[c];
                }
            }
            let m = self.momentum;
            for c in 0..d {
                self.running_mean.data_mut()[c] =
                    (1.0 - m) * self.running_mean.data()[c] + m * mean[c];
                self.running_var.data_mut()[c] =
                    (1.0 - m) * self.running_var.data()[c] + m * var[c];
            }
            self.cache = Some(BnCache { x_hat, inv_std });
        } else {
            for r in 0..b {
                for c in 0..d {
                    let xh = (x.at(r, c) - self.running_mean.data()[c])
                        / (self.running_var.data()[c] + self.eps).sqrt();
                    *out.at_mut(r, c) = self.gamma.data()[c] * xh + self.beta.data()[c];
                }
            }
        }
        out
    }

    #[allow(clippy::needless_range_loop)]
    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let BnCache { x_hat, inv_std } = self
            .cache
            .take()
            .expect("BatchNorm1d::backward without forward(train)");
        let (b, d) = (grad_out.rows(), grad_out.cols());
        let bf = b as f32;
        let mut grad_in = Tensor::zeros(&[b, d]);
        for c in 0..d {
            let mut sum_g = 0.0f32;
            let mut sum_gx = 0.0f32;
            for r in 0..b {
                let g = grad_out.at(r, c);
                sum_g += g;
                sum_gx += g * x_hat.at(r, c);
            }
            self.g_beta.data_mut()[c] += sum_g;
            self.g_gamma.data_mut()[c] += sum_gx;
            let gamma = self.gamma.data()[c];
            for r in 0..b {
                let g = grad_out.at(r, c);
                // standard batch-norm backward:
                // dx = gamma * inv_std / B * (B*g - sum_g - x_hat * sum_gx)
                *grad_in.at_mut(r, c) =
                    gamma * inv_std[c] / bf * (bf * g - sum_g - x_hat.at(r, c) * sum_gx);
            }
        }
        grad_in
    }

    fn collect_params(&self, prefix: &str, out: &mut ParamMap) {
        out.insert(format!("{prefix}.gamma"), self.gamma.clone());
        out.insert(format!("{prefix}.beta"), self.beta.clone());
        out.insert(format!("{prefix}.running_mean"), self.running_mean.clone());
        out.insert(format!("{prefix}.running_var"), self.running_var.clone());
    }

    fn collect_grads(&self, prefix: &str, out: &mut ParamMap) {
        out.insert(format!("{prefix}.gamma"), self.g_gamma.clone());
        out.insert(format!("{prefix}.beta"), self.g_beta.clone());
    }

    fn load_params(&mut self, prefix: &str, src: &ParamMap) {
        if let Some(t) = src.get(&format!("{prefix}.gamma")) {
            self.gamma = t.clone();
        }
        if let Some(t) = src.get(&format!("{prefix}.beta")) {
            self.beta = t.clone();
        }
        if let Some(t) = src.get(&format!("{prefix}.running_mean")) {
            self.running_mean = t.clone();
        }
        if let Some(t) = src.get(&format!("{prefix}.running_var")) {
            self.running_var = t.clone();
        }
    }

    fn zero_grad(&mut self) {
        self.g_gamma = self.g_gamma.zeros_like();
        self.g_beta = self.g_beta.zeros_like();
    }

    fn buffer_names(&self) -> Vec<&'static str> {
        vec!["running_mean", "running_var"]
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(BatchNorm1d {
            gamma: self.gamma.clone(),
            beta: self.beta.clone(),
            g_gamma: self.g_gamma.clone(),
            g_beta: self.g_beta.clone(),
            running_mean: self.running_mean.clone(),
            running_var: self.running_var.clone(),
            momentum: self.momentum,
            eps: self.eps,
            cache: None,
        })
    }
}

/// 2-D convolution over `[B, C, H, W]` inputs, implemented with im2col.
///
/// Stride is fixed at 1; `pad` zero-pads symmetrically.
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    k: usize,
    pad: usize,
    /// Kernel flattened to `[out_ch, in_ch * k * k]`.
    w: Tensor,
    b: Tensor,
    gw: Tensor,
    gb: Tensor,
    cache: Option<ConvCache>,
    /// Recycled im2col allocation: `backward` returns the cache's `cols`
    /// tensor here so the next `forward` refills it in place instead of
    /// allocating the (large) lowering matrix every step.
    cols_spare: Option<Tensor>,
    /// Reusable staging buffer for `W^T` in the forward gemm.
    wt_scratch: Vec<f32>,
    /// Reusable gemm output `[B*OH*OW, out_ch]` (forward).
    y_scratch: Tensor,
    /// Reusable reordered gradient `[B*OH*OW, out_ch]` (backward).
    gmat_scratch: Tensor,
    /// Reusable column gradient `[B*OH*OW, in_ch*k*k]` (backward).
    gcols_scratch: Tensor,
}

struct ConvCache {
    cols: Tensor,
    in_shape: Vec<usize>,
}

impl Conv2d {
    /// Creates a `k x k` convolution from `in_ch` to `out_ch` channels with
    /// zero padding `pad` and stride 1.
    pub fn new(in_ch: usize, out_ch: usize, k: usize, pad: usize, rng: &mut impl Rng) -> Self {
        let fan_in = in_ch * k * k;
        Self {
            in_ch,
            out_ch,
            k,
            pad,
            w: init::kaiming_normal(&[out_ch, fan_in], fan_in, rng),
            b: Tensor::zeros(&[out_ch]),
            gw: Tensor::zeros(&[out_ch, fan_in]),
            gb: Tensor::zeros(&[out_ch]),
            cache: None,
            cols_spare: None,
            wt_scratch: Vec::new(),
            y_scratch: Tensor::zeros(&[0]),
            gmat_scratch: Tensor::zeros(&[0]),
            gcols_scratch: Tensor::zeros(&[0]),
        }
    }

    /// Output spatial size for an `h x w` input.
    ///
    /// # Panics
    /// Panics with a named error when the kernel exceeds the padded input
    /// (instead of a bare usize underflow).
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h + 2 * self.pad + 1 > self.k && w + 2 * self.pad + 1 > self.k,
            "Conv2d kernel {}x{} does not fit {}x{} input with padding {}",
            self.k,
            self.k,
            h,
            w,
            self.pad
        );
        (h + 2 * self.pad + 1 - self.k, w + 2 * self.pad + 1 - self.k)
    }

    /// Lowers `[B, C, H, W]` into the im2col matrix `[B*OH*OW, C*K*K]`,
    /// refilling `cols` in place (its allocation is reused across steps).
    fn im2col_into(&self, x: &Tensor, cols: &mut Tensor) {
        let (b, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oh, ow) = self.out_hw(h, w);
        let kk = self.k;
        let pad = self.pad as isize;
        let cols_w = c * kk * kk;
        cols.reset_to(&[b * oh * ow, cols_w]);
        let cd = cols.data_mut();
        cd.fill(0.0);
        let xd = x.data();
        for bi in 0..b {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = ((bi * oh + oy) * ow + ox) * cols_w;
                    for ci in 0..c {
                        for ky in 0..kk {
                            let iy = oy as isize + ky as isize - pad;
                            for kx in 0..kk {
                                let ix = ox as isize + kx as isize - pad;
                                let dst = row + (ci * kk + ky) * kk + kx;
                                if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                    cd[dst] =
                                        xd[((bi * c + ci) * h + iy as usize) * w + ix as usize];
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Scatters the im2col-shaped gradient back to `[B, C, H, W]`.
    fn col2im(&self, gcols: &Tensor, in_shape: &[usize]) -> Tensor {
        let (b, c, h, w) = (in_shape[0], in_shape[1], in_shape[2], in_shape[3]);
        let (oh, ow) = self.out_hw(h, w);
        let kk = self.k;
        let pad = self.pad as isize;
        let cols_w = c * kk * kk;
        let mut out = vec![0.0f32; b * c * h * w];
        let gd = gcols.data();
        for bi in 0..b {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = ((bi * oh + oy) * ow + ox) * cols_w;
                    for ci in 0..c {
                        for ky in 0..kk {
                            let iy = oy as isize + ky as isize - pad;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kk {
                                let ix = ox as isize + kx as isize - pad;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let src = row + (ci * kk + ky) * kk + kx;
                                out[((bi * c + ci) * h + iy as usize) * w + ix as usize] += gd[src];
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(in_shape.to_vec(), out)
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 4, "Conv2d expects [B, C, H, W]");
        assert_eq!(x.shape()[1], self.in_ch, "Conv2d input channels");
        let (b, h, w) = (x.shape()[0], x.shape()[2], x.shape()[3]);
        let (oh, ow) = self.out_hw(h, w);
        let mut cols = self
            .cols_spare
            .take()
            .unwrap_or_else(|| Tensor::zeros(&[0]));
        self.im2col_into(x, &mut cols);
        // [B*OH*OW, fan_in] x [fan_in, out_ch] -> [B*OH*OW, out_ch]
        cols.matmul_nt_into(&self.w, &mut self.y_scratch, &mut self.wt_scratch);
        for row in self.y_scratch.data_mut().chunks_exact_mut(self.out_ch) {
            for (v, &bv) in row.iter_mut().zip(self.b.data()) {
                *v += bv;
            }
        }
        if train {
            self.cache = Some(ConvCache {
                cols,
                in_shape: x.shape().to_vec(),
            });
        } else {
            self.cols_spare = Some(cols);
        }
        // reorder [B*OH*OW, OC] -> [B, OC, OH, OW]
        let mut out = vec![0.0f32; b * self.out_ch * oh * ow];
        let yd = self.y_scratch.data();
        for bi in 0..b {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = (bi * oh + oy) * ow + ox;
                    for oc in 0..self.out_ch {
                        out[((bi * self.out_ch + oc) * oh + oy) * ow + ox] =
                            yd[row * self.out_ch + oc];
                    }
                }
            }
        }
        Tensor::from_vec(vec![b, self.out_ch, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let ConvCache { cols, in_shape } = self
            .cache
            .take()
            .expect("Conv2d::backward without forward(train)");
        let (b, oc, oh, ow) = (
            grad_out.shape()[0],
            grad_out.shape()[1],
            grad_out.shape()[2],
            grad_out.shape()[3],
        );
        assert_eq!(oc, self.out_ch);
        // reorder grad [B, OC, OH, OW] -> [B*OH*OW, OC]; every element is
        // written, so the reused scratch needs no zero-fill
        self.gmat_scratch.reset_to(&[b * oh * ow, oc]);
        let g = self.gmat_scratch.data_mut();
        let gd = grad_out.data();
        for bi in 0..b {
            for o in 0..oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        g[((bi * oh + oy) * ow + ox) * oc + o] =
                            gd[((bi * oc + o) * oh + oy) * ow + ox];
                    }
                }
            }
        }
        // gw += gmat^T cols ; gb += column sums ; gcols = gmat W
        self.gmat_scratch.matmul_tn_acc(&cols, &mut self.gw);
        for row in self.gmat_scratch.data().chunks_exact(oc) {
            for (gbv, &v) in self.gb.data_mut().iter_mut().zip(row) {
                *gbv += v;
            }
        }
        self.gmat_scratch
            .matmul_into(&self.w, &mut self.gcols_scratch);
        let grad_in = self.col2im(&self.gcols_scratch, &in_shape);
        // hand the im2col allocation back for the next forward
        self.cols_spare = Some(cols);
        grad_in
    }

    fn collect_params(&self, prefix: &str, out: &mut ParamMap) {
        out.insert(format!("{prefix}.weight"), self.w.clone());
        out.insert(format!("{prefix}.bias"), self.b.clone());
    }

    fn collect_grads(&self, prefix: &str, out: &mut ParamMap) {
        out.insert(format!("{prefix}.weight"), self.gw.clone());
        out.insert(format!("{prefix}.bias"), self.gb.clone());
    }

    fn load_params(&mut self, prefix: &str, src: &ParamMap) {
        if let Some(w) = src.get(&format!("{prefix}.weight")) {
            assert_eq!(w.shape(), self.w.shape(), "Conv2d weight shape");
            self.w = w.clone();
        }
        if let Some(b) = src.get(&format!("{prefix}.bias")) {
            self.b = b.clone();
        }
    }

    fn zero_grad(&mut self) {
        self.gw = self.gw.zeros_like();
        self.gb = self.gb.zeros_like();
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Conv2d {
            in_ch: self.in_ch,
            out_ch: self.out_ch,
            k: self.k,
            pad: self.pad,
            w: self.w.clone(),
            b: self.b.clone(),
            gw: self.gw.clone(),
            gb: self.gb.clone(),
            cache: None,
            cols_spare: None,
            wt_scratch: Vec::new(),
            y_scratch: Tensor::zeros(&[0]),
            gmat_scratch: Tensor::zeros(&[0]),
            gcols_scratch: Tensor::zeros(&[0]),
        })
    }
}

/// 2x2 max pooling with stride 2 over `[B, C, H, W]`.
///
/// Odd trailing rows/columns are dropped (floor semantics, as in PyTorch).
#[derive(Default)]
pub struct MaxPool2d {
    argmax: Option<(Vec<usize>, Vec<usize>)>,
}

impl MaxPool2d {
    /// Creates a 2x2/stride-2 max-pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 4, "MaxPool2d expects [B, C, H, W]");
        let (b, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oh, ow) = (h / 2, w / 2);
        let xd = x.data();
        let mut out = vec![0.0f32; b * c * oh * ow];
        let mut arg = vec![0usize; b * c * oh * ow];
        for bi in 0..b {
            for ci in 0..c {
                let base = (bi * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let idx = base + (oy * 2 + dy) * w + (ox * 2 + dx);
                                if xd[idx] > best {
                                    best = xd[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let o = ((bi * c + ci) * oh + oy) * ow + ox;
                        out[o] = best;
                        arg[o] = best_idx;
                    }
                }
            }
        }
        if train {
            self.argmax = Some((arg, x.shape().to_vec()));
        }
        Tensor::from_vec(vec![b, c, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (arg, in_shape) = self
            .argmax
            .take()
            .expect("MaxPool2d::backward without forward(train)");
        let mut grad_in = vec![0.0f32; in_shape.iter().product()];
        for (g, &idx) in grad_out.data().iter().zip(&arg) {
            grad_in[idx] += g;
        }
        Tensor::from_vec(in_shape, grad_in)
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(MaxPool2d::default())
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        for (_, layer) in &mut self.layers {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut cur = grad_out.clone();
        for (_, layer) in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
        cur
    }

    fn collect_params(&self, prefix: &str, out: &mut ParamMap) {
        for (name, layer) in &self.layers {
            layer.collect_params(&Self::join(prefix, name), out);
        }
    }

    fn collect_grads(&self, prefix: &str, out: &mut ParamMap) {
        for (name, layer) in &self.layers {
            layer.collect_grads(&Self::join(prefix, name), out);
        }
    }

    fn load_params(&mut self, prefix: &str, src: &ParamMap) {
        for (name, layer) in &mut self.layers {
            layer.load_params(&Self::join(prefix, name), src);
        }
    }

    fn zero_grad(&mut self) {
        for (_, layer) in &mut self.layers {
            layer.zero_grad();
        }
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone_net())
    }
}

/// An ordered, named composition of layers.
pub struct Sequential {
    layers: Vec<(String, Box<dyn Layer>)>,
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a named layer; names become parameter-key prefixes.
    pub fn push(&mut self, name: impl Into<String>, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push((name.into(), layer));
        self
    }

    /// Names of the contained layers, in order.
    pub fn layer_names(&self) -> Vec<&str> {
        self.layers.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Buffer keys (fully prefixed) across all layers.
    pub fn buffer_keys(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (name, layer) in &self.layers {
            for b in layer.buffer_names() {
                out.push(format!("{name}.{b}"));
            }
        }
        out
    }

    fn join(prefix: &str, name: &str) -> String {
        if prefix.is_empty() {
            name.to_string()
        } else {
            format!("{prefix}.{name}")
        }
    }

    /// Deep copy.
    pub fn clone_net(&self) -> Sequential {
        Sequential {
            layers: self
                .layers
                .iter()
                .map(|(n, l)| (n.clone(), l.clone_layer()))
                .collect(),
        }
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_forward_known() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(2, 1, &mut rng);
        l.w = Tensor::from_vec(vec![1, 2], vec![2.0, 3.0]);
        l.b = Tensor::from_vec(vec![1], vec![1.0]);
        let x = Tensor::from_vec(vec![1, 2], vec![4.0, 5.0]);
        let y = l.forward(&x, false);
        assert_eq!(y.data(), &[2.0 * 4.0 + 3.0 * 5.0 + 1.0]);
    }

    #[test]
    fn relu_masks_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![1, 4], vec![-1.0, 2.0, -3.0, 4.0]);
        let y = r.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
        let g = r.backward(&Tensor::ones(&[1, 4]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::from_vec(vec![1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn dropout_train_preserves_expectation() {
        let mut d = Dropout::new(0.3, 9);
        let x = Tensor::ones(&[1, 10_000]);
        let y = d.forward(&x, true);
        // E[y] = 1; empirical mean should be close.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
    }

    #[test]
    fn maxpool_forward_and_routing() {
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]);
        let mut p = MaxPool2d::new();
        let y = p.forward(&x, true);
        assert_eq!(y.data(), &[5.0]);
        let g = p.backward(&Tensor::ones(&[1, 1, 1, 1]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn conv_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = Conv2d::new(2, 4, 3, 1, &mut rng);
        let x = Tensor::zeros(&[2, 2, 8, 8]);
        let y = c.forward(&x, false);
        assert_eq!(y.shape(), &[2, 4, 8, 8]);
        let c2 = Conv2d::new(1, 1, 3, 0, &mut rng);
        assert_eq!(c2.out_hw(8, 8), (6, 6));
    }

    #[test]
    fn conv_known_values() {
        // 1x1 input channel, 2x2 kernel of ones, no padding: output = window sums.
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = Conv2d::new(1, 1, 2, 0, &mut rng);
        c.w = Tensor::ones(&[1, 4]);
        c.b = Tensor::zeros(&[1]);
        let x = Tensor::from_vec(vec![1, 1, 3, 3], (1..=9).map(|v| v as f32).collect());
        let y = c.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn batchnorm_normalizes_batch() {
        let mut bn = BatchNorm1d::new(2);
        let x = Tensor::from_vec(vec![4, 2], vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0]);
        let y = bn.forward(&x, true);
        // each column should have ~zero mean, ~unit variance
        for c in 0..2 {
            let col: Vec<f32> = (0..4).map(|r| y.at(r, c)).collect();
            let mean: f32 = col.iter().sum::<f32>() / 4.0;
            let var: f32 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn batchnorm_running_stats_move_toward_batch() {
        let mut bn = BatchNorm1d::new(1);
        let x = Tensor::from_vec(vec![2, 1], vec![10.0, 20.0]);
        for _ in 0..200 {
            let _ = bn.forward(&x, true);
        }
        assert!((bn.running_mean.data()[0] - 15.0).abs() < 0.5);
    }

    #[test]
    fn sequential_collect_and_load_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = Sequential::new();
        net.push("fc1", Box::new(Linear::new(4, 3, &mut rng)));
        net.push("act", Box::new(Relu::new()));
        net.push("fc2", Box::new(Linear::new(3, 2, &mut rng)));
        let mut p = ParamMap::new();
        net.collect_params("", &mut p);
        assert_eq!(p.len(), 4);
        assert!(p.contains("fc1.weight"));
        let zeros = p.zeros_like();
        net.load_params("", &zeros);
        let mut p2 = ParamMap::new();
        net.collect_params("", &mut p2);
        assert_eq!(p2, zeros);
    }

    #[test]
    fn buffer_keys_report_bn_stats() {
        let mut net = Sequential::new();
        net.push("bn1", Box::new(BatchNorm1d::new(3)));
        assert_eq!(
            net.buffer_keys(),
            vec!["bn1.running_mean", "bn1.running_var"]
        );
    }
}
