//! Successive halving (SHA) and Hyperband — multi-fidelity HPO.
//!
//! SHA evaluates many configurations at a small budget, keeps the best
//! `1/eta` fraction, and resumes the survivors *from their checkpoints* at a
//! larger budget (the checkpoint mechanism of §4.3). Hyperband runs several
//! SHA brackets trading off "many configs, small budget" against "few
//! configs, large budget".

use crate::objective::{Checkpoint, Objective, TrialResult};
use crate::rs::{BestSeen, SearchOutcome};
use crate::space::{Config, SearchSpace};
use rand::Rng;

/// Runs successive halving.
///
/// * `n_initial` — configurations sampled at the first rung;
/// * `rung_budget` — rounds added at every rung;
/// * `eta` — the keep fraction denominator (keep `ceil(n/eta)` per rung).
pub fn successive_halving(
    space: &SearchSpace,
    objective: &mut dyn Objective,
    n_initial: usize,
    rung_budget: u64,
    eta: usize,
    rng: &mut impl Rng,
) -> SearchOutcome {
    assert!(n_initial >= 1 && eta >= 2, "need n >= 1 and eta >= 2");
    let mut population: Vec<(Config, Option<Checkpoint>, TrialResult)> = (0..n_initial)
        .map(|_| {
            (
                space.sample(rng),
                None,
                TrialResult {
                    val_loss: f64::INFINITY,
                    test_accuracy: 0.0,
                    cost: 0,
                },
            )
        })
        .collect();
    let mut trace: Vec<BestSeen> = Vec::new();
    let mut spent = 0u64;
    let mut best_seen = f64::INFINITY;
    while !population.is_empty() {
        // evaluate every member at this rung, resuming from its checkpoint
        for (cfg, ck, result) in &mut population {
            let (r, new_ck) = objective.run(cfg, rung_budget, ck.as_ref());
            spent += r.cost;
            best_seen = best_seen.min(r.val_loss);
            *result = r;
            *ck = Some(new_ck);
            trace.push(BestSeen {
                cumulative_cost: spent,
                best_val_loss: best_seen,
            });
        }
        if population.len() == 1 {
            break;
        }
        // keep the best ceil(n/eta)
        population.sort_by(|a, b| a.2.val_loss.partial_cmp(&b.2.val_loss).expect("finite"));
        let keep = population.len().div_ceil(eta);
        population.truncate(keep);
    }
    let (best_config, _, best_result) = population.into_iter().next().expect("non-empty");
    SearchOutcome {
        best_config,
        best_result,
        trace,
    }
}

/// Runs Hyperband: brackets `s = s_max, ..., 0`, where bracket `s` starts
/// `ceil(eta^s)` configurations and SHA reduces them.
pub fn hyperband(
    space: &SearchSpace,
    objective: &mut dyn Objective,
    s_max: usize,
    rung_budget: u64,
    eta: usize,
    rng: &mut impl Rng,
) -> SearchOutcome {
    let mut best: Option<SearchOutcome> = None;
    let mut trace: Vec<BestSeen> = Vec::new();
    let mut spent = 0u64;
    for s in (0..=s_max).rev() {
        let n = (eta as u64).pow(s as u32).max(1) as usize;
        let out = successive_halving(space, objective, n, rung_budget, eta, rng);
        for point in &out.trace {
            trace.push(BestSeen {
                cumulative_cost: spent + point.cumulative_cost,
                best_val_loss: point.best_val_loss.min(
                    best.as_ref()
                        .map_or(f64::INFINITY, |b| b.best_result.val_loss),
                ),
            });
        }
        spent += out.trace.last().map_or(0, |p| p.cumulative_cost);
        let better = best
            .as_ref()
            .is_none_or(|b| out.best_result.val_loss < b.best_result.val_loss);
        if better {
            best = Some(SearchOutcome {
                trace: Vec::new(),
                ..out
            });
        }
    }
    let mut best = best.expect("at least one bracket");
    best.trace = trace;
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::QuadraticObjective;
    use crate::space::Param;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::new().with(
            "lr",
            Param::Float {
                lo: 0.01,
                hi: 1.0,
                log: false,
            },
        )
    }

    #[test]
    fn sha_converges_to_one_survivor() {
        let mut obj = QuadraticObjective;
        let mut rng = StdRng::seed_from_u64(0);
        let out = successive_halving(&space(), &mut obj, 16, 3, 2, &mut rng);
        assert!(
            (out.best_config["lr"] - 0.3).abs() < 0.25,
            "best {}",
            out.best_config["lr"]
        );
        // survivors got more budget than first-rung losers
        assert!(out.best_result.cost > 0);
    }

    #[test]
    fn sha_spends_less_than_full_random_search() {
        // 16 configs, 4 rungs of 3 rounds: SHA spends (16+8+4+2+1)*3 < 16*12
        let mut obj = QuadraticObjective;
        let mut rng = StdRng::seed_from_u64(1);
        let out = successive_halving(&space(), &mut obj, 16, 3, 2, &mut rng);
        let total = out.trace.last().unwrap().cumulative_cost;
        assert!(total < 16 * 12, "sha spent {total}");
    }

    #[test]
    fn hyperband_runs_all_brackets() {
        let mut obj = QuadraticObjective;
        let mut rng = StdRng::seed_from_u64(2);
        let out = hyperband(&space(), &mut obj, 3, 2, 2, &mut rng);
        assert!((out.best_config["lr"] - 0.3).abs() < 0.3);
        assert!(!out.trace.is_empty());
        for w in out.trace.windows(2) {
            assert!(w[1].best_val_loss <= w[0].best_val_loss + 1e-12);
        }
    }
}
