//! Privacy protection + attack simulation (§4.1, §4.2): Paillier
//! aggregation, secret sharing, DP noise, and the DLG gradient-inversion
//! attack that DP defeats.
//!
//! ```text
//! cargo run --release --example privacy_attack
//! ```

use fedscope::attack::dlg::{invert_linear_gradients, reconstruction_mse};
use fedscope::data::synth::{femnist_like, ImageConfig};
use fedscope::privacy::dp::{gaussian_mechanism, DpConfig, PrivacyAccountant};
use fedscope::privacy::paillier::{decode_f32, encode_f32, keygen};
use fedscope::privacy::secret_sharing::secure_aggregate;
use fedscope::tensor::model::{logistic_regression, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);

    // --- Paillier: the server aggregates *ciphertexts* ------------------
    let (pk, sk) = keygen(128, &mut rng);
    let client_values = [0.5f32, -0.25, 1.25];
    let mut acc = pk.encrypt(&encode_f32(0.0, &pk.n), &mut rng);
    for &v in &client_values {
        let ct = pk.encrypt(&encode_f32(v, &pk.n), &mut rng);
        acc = pk.add(&acc, &ct);
    }
    let sum = decode_f32(&sk.decrypt(&acc), &pk.n);
    println!("Paillier: encrypted sum of {client_values:?} = {sum:.3}");
    assert!((sum - 1.5).abs() < 1e-3);

    // --- Secret sharing: server sees only the total ----------------------
    let data = femnist_like(&ImageConfig {
        num_clients: 3,
        per_client: 20,
        img: 8,
        num_classes: 10,
        ..Default::default()
    })
    .flattened();
    let dim = data.input_dim();
    let mut model = logistic_regression(dim, 10, &mut rng);
    let updates: Vec<_> = (0..3)
        .map(|i| {
            let t = &data.clients[i].train;
            let (_, grads) = model.loss_grad(&t.x, &t.y);
            grads
        })
        .collect();
    let total = secure_aggregate(&updates, &mut rng);
    let mut plain = updates[0].zeros_like();
    for u in &updates {
        plain.add_scaled(1.0, u);
    }
    println!(
        "secret sharing: |secure_sum - plain_sum| = {:.6}",
        total.sub(&plain).norm()
    );

    // --- DLG: gradient inversion, defeated by DP noise -------------------
    let example = data.clients[0].train.batch(&[0]);
    let (_, grads) = model.loss_grad(&example.x, &example.y);
    let truth = example.x.reshape(&[dim]);
    let clean = invert_linear_gradients(&grads, "fc").expect("clean gradients invert");
    println!(
        "DLG on clean gradients: reconstruction MSE {:.2e} (label {})",
        reconstruction_mse(&clean, &truth),
        clean.label
    );
    let mut noisy = grads.clone();
    let mut accountant = PrivacyAccountant::new();
    let dp = DpConfig::gaussian(1.0, 1e-5, 1.0);
    gaussian_mechanism(&mut noisy, &dp, &mut rng);
    accountant.spend(1.0, 1e-5);
    match invert_linear_gradients(&noisy, "fc") {
        Some(rec) => println!(
            "DLG on (eps=1)-DP gradients: reconstruction MSE {:.3} — destroyed",
            reconstruction_mse(&rec, &truth)
        ),
        None => println!("DLG on DP gradients: inversion failed entirely"),
    }
    let (eps, delta) = accountant.basic_composition();
    println!("privacy spent so far: ({eps}, {delta})-DP");
}
