//! The [`Compressor`] trait and its four implementations.

use crate::block::{packed_len, CompressedBlock, CompressedTensor, Encoding};
use fs_tensor::{ParamMap, Tensor};
use std::fmt;

/// A pluggable parameter-compression strategy.
///
/// Compressors are stateful: error-feedback schemes accumulate residuals
/// across rounds, and delta encoders track the last reference model — hence
/// `&mut self`. All implementations are deterministic, so a course that seeds
/// everything else reproduces bit-identical compressed traffic.
pub trait Compressor: Send {
    /// Short identifier used in reports and benches.
    fn name(&self) -> &'static str;

    /// Compresses `params` for transmission.
    fn compress(&mut self, params: &ParamMap) -> CompressedBlock;

    /// Records the reference model (the last broadcast the sender received)
    /// for delta encoding. Non-delta compressors ignore it.
    fn set_reference(&mut self, _params: &ParamMap, _version: u64) {}

    /// Duplicates this codec *including its per-sender state* (error-feedback
    /// residuals, delta references). The parallel runner snapshots a client's
    /// codec through this before speculatively executing its handler, so a
    /// recalled speculation can restore the exact pre-dispatch state.
    fn clone_box(&self) -> Box<dyn Compressor>;
}

/// Errors raised while reconstructing parameters from a block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecompressError {
    /// A delta block referenced a model version the receiver no longer holds.
    MissingReference(u64),
    /// A delta tensor has no counterpart in the reference model.
    UnknownName(String),
    /// A delta tensor's shape disagrees with the reference model's.
    ShapeMismatch(String),
}

impl fmt::Display for DecompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompressError::MissingReference(v) => {
                write!(f, "delta block references unavailable model version {v}")
            }
            DecompressError::UnknownName(n) => {
                write!(f, "delta tensor {n} has no reference counterpart")
            }
            DecompressError::ShapeMismatch(n) => {
                write!(f, "delta tensor {n} disagrees with reference shape")
            }
        }
    }
}

impl std::error::Error for DecompressError {}

/// Decodes one tensor's values to a dense row-major vector.
fn expand(t: &CompressedTensor) -> Vec<f32> {
    let numel = t.numel();
    match &t.encoding {
        Encoding::Dense { values } => values.clone(),
        Encoding::Quantized {
            bits,
            min,
            max,
            packed,
        } => {
            let levels = ((1u32 << bits) - 1) as f32;
            let step = if levels > 0.0 {
                (max - min) / levels
            } else {
                0.0
            };
            let level_at = |i: usize| -> u8 {
                match bits {
                    8 => packed[i],
                    4 => (packed[i / 2] >> ((i % 2) * 4)) & 0x0F,
                    _ => unreachable!("codec validated bits"),
                }
            };
            (0..numel)
                .map(|i| min + level_at(i) as f32 * step)
                .collect()
        }
        Encoding::Sparse { indices, values } => {
            let mut out = vec![0.0f32; numel];
            for (&i, &v) in indices.iter().zip(values) {
                out[i as usize] = v;
            }
            out
        }
    }
}

/// Reconstructs a [`ParamMap`] from a block.
///
/// `reference` must be `Some` (the model named by the block's `ref_version`)
/// when the block is a delta; it is ignored otherwise.
pub fn decompress(
    block: &CompressedBlock,
    reference: Option<&ParamMap>,
) -> Result<ParamMap, DecompressError> {
    let reference = if block.delta {
        Some(reference.ok_or(DecompressError::MissingReference(block.ref_version))?)
    } else {
        None
    };
    let mut out = ParamMap::new();
    for t in &block.tensors {
        let mut values = expand(t);
        if let Some(reference) = reference {
            let base = reference
                .get(&t.name)
                .ok_or_else(|| DecompressError::UnknownName(t.name.clone()))?;
            if base.shape() != &t.shape[..] {
                return Err(DecompressError::ShapeMismatch(t.name.clone()));
            }
            for (v, b) in values.iter_mut().zip(base.data()) {
                *v += b;
            }
        }
        out.insert(t.name.clone(), Tensor::from_vec(t.shape.clone(), values));
    }
    Ok(out)
}

/// No compression: dense f32 passthrough (the baseline codec).
#[derive(Clone, Debug, Default)]
pub struct Identity;

impl Compressor for Identity {
    fn name(&self) -> &'static str {
        "identity"
    }

    fn compress(&mut self, params: &ParamMap) -> CompressedBlock {
        CompressedBlock::full(
            params
                .iter()
                .map(|(name, t)| CompressedTensor {
                    name: name.to_string(),
                    shape: t.shape().to_vec(),
                    encoding: Encoding::Dense {
                        values: t.data().to_vec(),
                    },
                })
                .collect(),
        )
    }

    fn clone_box(&self) -> Box<dyn Compressor> {
        Box::new(Identity)
    }
}

/// Uniform linear quantization with per-tensor min/max.
///
/// Each value maps to the nearest of `2^bits` evenly spaced levels spanning
/// `[min, max]`, so the reconstruction error is at most
/// `(max - min) / (2^bits - 1)` per value.
#[derive(Clone, Debug)]
pub struct UniformQuant {
    bits: u8,
}

impl UniformQuant {
    /// Creates an `bits`-wide quantizer; only 4 and 8 are supported.
    pub fn new(bits: u8) -> Self {
        assert!(
            bits == 4 || bits == 8,
            "UniformQuant supports 4 or 8 bits, got {bits}"
        );
        Self { bits }
    }

    fn quantize(&self, t: &Tensor) -> Encoding {
        let data = t.data();
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for &v in data {
            min = min.min(v);
            max = max.max(v);
        }
        if data.is_empty() {
            (min, max) = (0.0, 0.0);
        }
        let levels = ((1u32 << self.bits) - 1) as f32;
        let range = max - min;
        let inv_step = if range > 0.0 { levels / range } else { 0.0 };
        let mut packed = vec![0u8; packed_len(self.bits, data.len())];
        for (i, &v) in data.iter().enumerate() {
            let level = (((v - min) * inv_step).round() as u32).min(levels as u32) as u8;
            match self.bits {
                8 => packed[i] = level,
                4 => packed[i / 2] |= level << ((i % 2) * 4),
                _ => unreachable!("constructor validated bits"),
            }
        }
        Encoding::Quantized {
            bits: self.bits,
            min,
            max,
            packed,
        }
    }
}

impl Compressor for UniformQuant {
    fn name(&self) -> &'static str {
        match self.bits {
            8 => "quant8",
            _ => "quant4",
        }
    }

    fn compress(&mut self, params: &ParamMap) -> CompressedBlock {
        CompressedBlock::full(
            params
                .iter()
                .map(|(name, t)| CompressedTensor {
                    name: name.to_string(),
                    shape: t.shape().to_vec(),
                    encoding: self.quantize(t),
                })
                .collect(),
        )
    }

    fn clone_box(&self) -> Box<dyn Compressor> {
        Box::new(self.clone())
    }
}

/// Top-k sparsification with error-feedback residuals.
///
/// Each round keeps the `ceil(ratio · numel)` largest-magnitude entries per
/// tensor; everything dropped is remembered in a residual and added back
/// before selection next round, so small coordinates eventually get through
/// instead of being silenced forever. Ties break deterministically by
/// (magnitude desc, index asc).
#[derive(Debug)]
pub struct TopK {
    ratio: f32,
    residual: ParamMap,
}

impl TopK {
    /// Keeps a `ratio` fraction (in `(0, 1]`) of each tensor's entries.
    pub fn new(ratio: f32) -> Self {
        assert!(
            ratio > 0.0 && ratio <= 1.0,
            "TopK ratio must be in (0, 1], got {ratio}"
        );
        Self {
            ratio,
            residual: ParamMap::new(),
        }
    }

    /// The residual accumulated for `name` so far (test hook).
    pub fn residual(&self, name: &str) -> Option<&Tensor> {
        self.residual.get(name)
    }
}

impl Compressor for TopK {
    fn name(&self) -> &'static str {
        "topk"
    }

    fn compress(&mut self, params: &ParamMap) -> CompressedBlock {
        let mut tensors = Vec::new();
        for (name, t) in params.iter() {
            // error feedback: compensate with what previous rounds dropped
            let mut compensated = t.data().to_vec();
            match self.residual.get(name) {
                Some(r) if r.shape() == t.shape() => {
                    for (c, &r) in compensated.iter_mut().zip(r.data()) {
                        *c += r;
                    }
                }
                _ => {}
            }
            let numel = compensated.len();
            let k = if numel == 0 {
                0
            } else {
                ((self.ratio * numel as f32).ceil() as usize).clamp(1, numel)
            };
            let mut order: Vec<u32> = (0..numel as u32).collect();
            order.sort_unstable_by(|&a, &b| {
                let (ma, mb) = (compensated[a as usize].abs(), compensated[b as usize].abs());
                mb.total_cmp(&ma).then(a.cmp(&b))
            });
            let mut indices: Vec<u32> = order[..k].to_vec();
            indices.sort_unstable();
            let values: Vec<f32> = indices.iter().map(|&i| compensated[i as usize]).collect();
            // residual = compensated - transmitted
            let mut rest = compensated;
            for &i in &indices {
                rest[i as usize] = 0.0;
            }
            self.residual
                .insert(name, Tensor::from_vec(t.shape().to_vec(), rest));
            tensors.push(CompressedTensor {
                name: name.to_string(),
                shape: t.shape().to_vec(),
                encoding: Encoding::Sparse { indices, values },
            });
        }
        CompressedBlock::full(tensors)
    }

    fn clone_box(&self) -> Box<dyn Compressor> {
        Box::new(TopK {
            ratio: self.ratio,
            residual: self.residual.clone(),
        })
    }
}

/// Delta encoding against the last broadcast model, wrapping any inner
/// compressor (quantizing or sparsifying the *difference* compresses much
/// better than the raw weights, whose magnitudes dominate).
pub struct DeltaEncode {
    inner: Box<dyn Compressor>,
    reference: Option<(ParamMap, u64)>,
}

impl DeltaEncode {
    /// Wraps `inner`, which will see differences instead of raw parameters.
    pub fn new(inner: Box<dyn Compressor>) -> Self {
        Self {
            inner,
            reference: None,
        }
    }
}

impl Compressor for DeltaEncode {
    fn name(&self) -> &'static str {
        "delta"
    }

    fn compress(&mut self, params: &ParamMap) -> CompressedBlock {
        let Some((reference, version)) = &self.reference else {
            // no reference yet (first round): send the full model
            return self.inner.compress(params);
        };
        let mut diff = ParamMap::new();
        for (name, t) in params.iter() {
            let mut values = t.data().to_vec();
            if let Some(base) = reference.get(name) {
                if base.shape() == t.shape() {
                    for (v, &b) in values.iter_mut().zip(base.data()) {
                        *v -= b;
                    }
                }
            }
            diff.insert(name, Tensor::from_vec(t.shape().to_vec(), values));
        }
        let mut block = self.inner.compress(&diff);
        block.delta = true;
        block.ref_version = *version;
        block
    }

    fn set_reference(&mut self, params: &ParamMap, version: u64) {
        self.reference = Some((params.clone(), version));
        self.inner.set_reference(params, version);
    }

    fn clone_box(&self) -> Box<dyn Compressor> {
        Box::new(DeltaEncode {
            inner: self.inner.clone_box(),
            reference: self.reference.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample_params(seed: u64) -> ParamMap {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = ParamMap::new();
        p.insert(
            "fc.weight",
            Tensor::from_vec(
                vec![4, 8],
                (0..32).map(|_| rng.gen_range(-2.0f32..2.0)).collect(),
            ),
        );
        p.insert(
            "fc.bias",
            Tensor::from_vec(
                vec![8],
                (0..8).map(|_| rng.gen_range(-0.5f32..0.5)).collect(),
            ),
        );
        p
    }

    #[test]
    fn identity_is_lossless() {
        let p = sample_params(1);
        let block = Identity.compress(&p);
        assert_eq!(decompress(&block, None).unwrap(), p);
    }

    #[test]
    fn quant_error_within_step_bound() {
        for bits in [4u8, 8] {
            let p = sample_params(2);
            let block = UniformQuant::new(bits).compress(&p);
            let q = decompress(&block, None).unwrap();
            for (name, t) in p.iter() {
                let data = t.data();
                let min = data.iter().copied().fold(f32::INFINITY, f32::min);
                let max = data.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let bound = (max - min) / ((1u32 << bits) - 1) as f32;
                for (a, b) in data.iter().zip(q.get(name).unwrap().data()) {
                    assert!(
                        (a - b).abs() <= bound + 1e-6,
                        "bits={bits} {name}: |{a} - {b}| > {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn quant_handles_constant_and_empty_tensors() {
        let mut p = ParamMap::new();
        p.insert("const", Tensor::from_vec(vec![3], vec![2.5, 2.5, 2.5]));
        p.insert("empty", Tensor::from_vec(vec![0], vec![]));
        let block = UniformQuant::new(8).compress(&p);
        let q = decompress(&block, None).unwrap();
        assert_eq!(q.get("const").unwrap().data(), &[2.5, 2.5, 2.5]);
        assert_eq!(q.get("empty").unwrap().data().len(), 0);
    }

    #[test]
    fn topk_keeps_largest_magnitudes() {
        let mut p = ParamMap::new();
        p.insert(
            "t",
            Tensor::from_vec(vec![6], vec![0.1, -5.0, 0.2, 3.0, -0.3, 0.0]),
        );
        let mut c = TopK::new(0.34); // ceil(0.34 * 6) = 3
        let block = c.compress(&p);
        let q = decompress(&block, None).unwrap();
        assert_eq!(
            q.get("t").unwrap().data(),
            &[0.0, -5.0, 0.0, 3.0, -0.3, 0.0]
        );
    }

    #[test]
    #[allow(clippy::excessive_precision)] // 1.2000001 is the exact f32 sum observed
    fn topk_error_feedback_recovers_dropped_mass() {
        // a small coordinate must eventually be transmitted via the residual
        let mut p = ParamMap::new();
        p.insert("t", Tensor::from_vec(vec![2], vec![1.0, 0.4]));
        let mut c = TopK::new(0.5); // k = 1
        let b1 = c.compress(&p);
        let d1 = decompress(&b1, None).unwrap();
        assert_eq!(d1.get("t").unwrap().data(), &[1.0, 0.0]);
        assert_eq!(c.residual("t").unwrap().data(), &[0.0, 0.4]);
        let b2 = c.compress(&p);
        let d2 = decompress(&b2, None).unwrap();
        // compensated = [1.0, 0.8]: index 0 still wins, residual grows
        assert_eq!(d2.get("t").unwrap().data(), &[1.0, 0.0]);
        let b3 = c.compress(&p);
        let d3 = decompress(&b3, None).unwrap();
        // compensated = [1.0, 1.2]: the starved coordinate finally wins
        assert_eq!(d3.get("t").unwrap().data(), &[0.0, 1.2000001]);
    }

    #[test]
    fn topk_tie_break_is_deterministic() {
        let mut p = ParamMap::new();
        p.insert("t", Tensor::from_vec(vec![4], vec![1.0, -1.0, 1.0, -1.0]));
        let run = || {
            let mut c = TopK::new(0.5);
            let block = c.compress(&p);
            match &block.tensors[0].encoding {
                Encoding::Sparse { indices, .. } => indices.clone(),
                other => panic!("expected sparse, got {other:?}"),
            }
        };
        assert_eq!(run(), vec![0, 1]);
        assert_eq!(run(), run());
    }

    #[test]
    fn delta_identity_is_lossless() {
        let reference = sample_params(3);
        let current = sample_params(4);
        let mut c = DeltaEncode::new(Box::new(Identity));
        c.set_reference(&reference, 7);
        let block = c.compress(&current);
        assert!(block.delta);
        assert_eq!(block.ref_version, 7);
        let q = decompress(&block, Some(&reference)).unwrap();
        for (name, t) in current.iter() {
            for (a, b) in t.data().iter().zip(q.get(name).unwrap().data()) {
                assert!((a - b).abs() < 1e-6, "{name}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn delta_without_reference_sends_full_model() {
        let current = sample_params(5);
        let mut c = DeltaEncode::new(Box::new(Identity));
        let block = c.compress(&current);
        assert!(!block.delta);
        assert_eq!(decompress(&block, None).unwrap(), current);
    }

    #[test]
    fn delta_quant_tracks_current_model_closely() {
        let reference = sample_params(6);
        // current = reference + small update: the delta range is tiny, so
        // 8-bit quantization of the delta is far more precise than
        // quantizing the raw weights
        let mut current = reference.clone();
        let mut rng = StdRng::seed_from_u64(9);
        for (_, t) in current.iter_mut() {
            for v in t.data_mut() {
                *v += rng.gen_range(-0.01f32..0.01);
            }
        }
        let mut c = DeltaEncode::new(Box::new(UniformQuant::new(8)));
        c.set_reference(&reference, 1);
        let q = decompress(&c.compress(&current), Some(&reference)).unwrap();
        for (name, t) in current.iter() {
            for (a, b) in t.data().iter().zip(q.get(name).unwrap().data()) {
                assert!((a - b).abs() <= 0.02 / 255.0 + 1e-6, "{name}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn delta_missing_reference_is_an_error() {
        let mut c = DeltaEncode::new(Box::new(Identity));
        c.set_reference(&sample_params(7), 3);
        let block = c.compress(&sample_params(8));
        assert_eq!(
            decompress(&block, None),
            Err(DecompressError::MissingReference(3))
        );
    }
}
