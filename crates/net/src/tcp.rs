//! TCP transport: the same wire format over real sockets.
//!
//! The paper's distributed mode runs participants as separate processes
//! connected by gRPC; this module provides the equivalent substrate on
//! `std::net`: length-prefixed wire frames, a server-side [`TcpHub`] that
//! accepts one connection per client and funnels decoded traffic into a
//! single event queue, and a client-side [`TcpPeer`] /
//! [`ResilientPeer`]. The framing is trivial by design — `u32` little-endian
//! length followed by the [`crate::wire`]-encoded message — so any process
//! speaking the neutral format can join a course.
//!
//! # Fault tolerance
//!
//! The hub is built for unreliable clients:
//!
//! * **Registration at accept time.** A connection is addressable as soon as
//!   its first frame (the join handshake) has been read; [`PendingHub::
//!   accept`] returns only after every expected participant has completed
//!   that handshake, so a `send` immediately after `accept` can never hit
//!   `UnknownReceiver`.
//! * **Liveness.** Reader threads run with a read deadline
//!   (`set_read_timeout`); a dead connection surfaces as
//!   [`HubEvent::Disconnected`] on the incoming queue instead of a silently
//!   dying thread.
//! * **Rejoin.** The hub keeps accepting connections for its whole lifetime.
//!   A reconnecting client re-identifies itself with a
//!   [`MessageKind::Rejoin`] handshake; the hub swaps in the new write half,
//!   suppresses the stale connection's disconnect report, and surfaces
//!   [`HubEvent::Rejoined`].

use crate::fault::{FaultAction, FaultState, SendOutcome};
use crate::message::{Message, MessageKind, ParticipantId, Payload, SERVER_ID};
use crate::wire::{decode_message, encode_message, CodecError};
use fs_monitor::{counters, MonitorHandle};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks a mutex, recovering the data even if a writer thread panicked while
/// holding it (a poisoned map is still a usable map).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Errors from the TCP transport.
#[derive(Debug)]
pub enum TcpError {
    /// Socket-level failure.
    Io(io::Error),
    /// The peer sent bytes the wire codec rejects.
    Codec(CodecError),
    /// A frame exceeded the sanity limit.
    FrameTooLarge(u32),
    /// No connection is registered for the receiver.
    UnknownReceiver(ParticipantId),
    /// The incoming queue has shut down.
    Closed,
}

impl std::fmt::Display for TcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpError::Io(e) => write!(f, "io error: {e}"),
            TcpError::Codec(e) => write!(f, "codec error: {e}"),
            TcpError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            TcpError::UnknownReceiver(id) => write!(f, "no connection for participant {id}"),
            TcpError::Closed => write!(f, "transport closed"),
        }
    }
}

impl std::error::Error for TcpError {}

impl From<io::Error> for TcpError {
    fn from(e: io::Error) -> Self {
        TcpError::Io(e)
    }
}

impl From<CodecError> for TcpError {
    fn from(e: CodecError) -> Self {
        TcpError::Codec(e)
    }
}

/// Upper bound on a single frame (a model of ~16M f32 parameters).
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Writes one length-prefixed wire frame.
pub fn write_frame(stream: &mut TcpStream, msg: &Message) -> Result<(), TcpError> {
    write_frame_monitored(stream, msg, &MonitorHandle::null())
}

/// [`write_frame`], counting the real bytes put on the socket (4-byte length
/// prefix + encoded frame) into the monitor's `wire.*` counters.
pub fn write_frame_monitored(
    stream: &mut TcpStream,
    msg: &Message,
    monitor: &MonitorHandle,
) -> Result<(), TcpError> {
    let bytes = encode_message(msg);
    let len = bytes.len() as u32;
    if len > MAX_FRAME_BYTES {
        return Err(TcpError::FrameTooLarge(len));
    }
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(&bytes)?;
    stream.flush()?;
    monitor.add(counters::WIRE_FRAMES_OUT, 1);
    monitor.add(counters::WIRE_BYTES_OUT, 4 + u64::from(len));
    Ok(())
}

/// Reads one length-prefixed wire frame (blocking).
pub fn read_frame(stream: &mut TcpStream) -> Result<Message, TcpError> {
    read_frame_monitored(stream, &MonitorHandle::null())
}

/// [`read_frame`], counting the real bytes taken off the socket into the
/// monitor's `wire.*` counters.
pub fn read_frame_monitored(
    stream: &mut TcpStream,
    monitor: &MonitorHandle,
) -> Result<Message, TcpError> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(TcpError::FrameTooLarge(len));
    }
    let mut buf = vec![0u8; len as usize];
    stream.read_exact(&mut buf)?;
    let msg = decode_message(&buf)?;
    monitor.add(counters::WIRE_FRAMES_IN, 1);
    monitor.add(counters::WIRE_BYTES_IN, 4 + u64::from(len));
    Ok(msg)
}

/// An incremental frame reader that survives read deadlines.
///
/// With `set_read_timeout` armed, a blocking `read_exact` could fire its
/// deadline halfway through a frame and desynchronize the stream. This
/// reader accumulates partial header/body bytes across deadline ticks:
/// [`FrameReader::poll`] returns `Ok(None)` on a tick with no complete frame
/// and never loses position.
#[derive(Default)]
struct FrameReader {
    header: [u8; 4],
    header_have: usize,
    body: Vec<u8>,
    body_have: usize,
}

fn is_deadline(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

impl FrameReader {
    fn poll(
        &mut self,
        stream: &mut TcpStream,
        monitor: &MonitorHandle,
    ) -> Result<Option<Message>, TcpError> {
        loop {
            if self.header_have < 4 {
                match stream.read(&mut self.header[self.header_have..]) {
                    Ok(0) => return Err(io::Error::from(io::ErrorKind::UnexpectedEof).into()),
                    Ok(n) => {
                        self.header_have += n;
                        if self.header_have == 4 {
                            let len = u32::from_le_bytes(self.header);
                            if len > MAX_FRAME_BYTES {
                                return Err(TcpError::FrameTooLarge(len));
                            }
                            self.body = vec![0u8; len as usize];
                            self.body_have = 0;
                        }
                    }
                    Err(e) if is_deadline(&e) => return Ok(None),
                    Err(e) => return Err(e.into()),
                }
            } else if self.body_have < self.body.len() {
                match stream.read(&mut self.body[self.body_have..]) {
                    Ok(0) => return Err(io::Error::from(io::ErrorKind::UnexpectedEof).into()),
                    Ok(n) => self.body_have += n,
                    Err(e) if is_deadline(&e) => return Ok(None),
                    Err(e) => return Err(e.into()),
                }
            } else {
                let msg = decode_message(&self.body)?;
                monitor.add(counters::WIRE_FRAMES_IN, 1);
                monitor.add(counters::WIRE_BYTES_IN, 4 + self.body.len() as u64);
                self.header_have = 0;
                self.body = Vec::new();
                self.body_have = 0;
                return Ok(Some(msg));
            }
        }
    }
}

/// What the hub's incoming queue delivers: decoded traffic plus liveness
/// transitions observed by the per-connection reader threads.
#[derive(Debug)]
pub enum HubEvent {
    /// A decoded application message.
    Message(Message),
    /// A registered connection died (EOF, reset, or a fatal read error).
    Disconnected(ParticipantId),
    /// A participant completed a [`MessageKind::Rejoin`] handshake over a
    /// fresh connection; its write half has been swapped in.
    Rejoined(ParticipantId),
    /// A connection sent bytes the wire codec rejects (`None` when it died
    /// before identifying itself).
    Codec(Option<ParticipantId>, String),
}

/// A registered write half, generation-stamped so a stale connection's
/// teardown cannot clobber its own replacement.
struct Conn {
    generation: u64,
    stream: TcpStream,
}

/// State shared between the hub handle, the acceptor, and reader threads.
struct HubShared {
    /// Write halves in participant-id order: [`TcpHub::connected`]'s roster
    /// (which reaches dropout bookkeeping) is deterministic by construction
    /// (FSA003), not by whatever the hash seed produced.
    streams: Mutex<BTreeMap<ParticipantId, Conn>>,
    /// (registered ids ever seen, generation counter).
    registry: Mutex<(Vec<ParticipantId>, u64)>,
    registered: Condvar,
    shutdown: AtomicBool,
}

impl HubShared {
    /// Registers (or re-registers) `id`'s write half, returning the
    /// connection generation assigned to it.
    fn register(&self, id: ParticipantId, stream: TcpStream) -> u64 {
        let generation = {
            let mut reg = lock(&self.registry);
            reg.1 += 1;
            if !reg.0.contains(&id) {
                reg.0.push(id);
            }
            reg.1
        };
        lock(&self.streams).insert(id, Conn { generation, stream });
        self.registered.notify_all();
        generation
    }

    /// Tears down `id`'s connection only if it still is generation `gen`
    /// (a rejoined participant's fresh connection is left alone). Returns
    /// whether the teardown applied.
    fn deregister(&self, id: ParticipantId, generation: u64) -> bool {
        let mut streams = lock(&self.streams);
        match streams.get(&id) {
            Some(conn) if conn.generation == generation => {
                streams.remove(&id);
                true
            }
            _ => false,
        }
    }
}

/// Server side: accepts connections for its whole lifetime, runs one reader
/// thread per connection (feeding a single incoming event queue), and keeps
/// write halves addressable by participant id.
pub struct TcpHub {
    shared: Arc<HubShared>,
    incoming: Receiver<HubEvent>,
    local_addr: SocketAddr,
    monitor: MonitorHandle,
}

/// A bound-but-not-yet-accepting hub: lets callers learn the ephemeral port
/// before clients connect.
pub struct PendingHub {
    listener: TcpListener,
    monitor: MonitorHandle,
    read_timeout: Duration,
}

impl PendingHub {
    /// The bound address.
    pub fn local_addr(&self) -> Result<SocketAddr, TcpError> {
        Ok(self.listener.local_addr()?)
    }

    /// Attaches an observability sink; the hub's reader threads and writes
    /// count real wire bytes and frames into it. Must be called before
    /// [`PendingHub::accept`] so the reader threads carry the handle.
    pub fn with_monitor(mut self, monitor: MonitorHandle) -> Self {
        self.monitor = monitor;
        self
    }

    /// Sets the per-connection read deadline (the liveness tick; default
    /// 50ms). Reader threads wake at this cadence to notice shutdown.
    pub fn with_read_timeout(mut self, t: Duration) -> Self {
        self.read_timeout = t;
        self
    }

    /// Starts the hub and waits (up to 30s) until `expected_clients`
    /// distinct participants have completed their join handshake, so every
    /// write half is registered before this returns.
    pub fn accept(self, expected_clients: usize) -> Result<TcpHub, TcpError> {
        self.accept_within(expected_clients, Duration::from_secs(30))
    }

    /// [`PendingHub::accept`] with an explicit handshake deadline.
    pub fn accept_within(
        self,
        expected_clients: usize,
        wait: Duration,
    ) -> Result<TcpHub, TcpError> {
        let hub = TcpHub::start(self.listener, self.monitor, self.read_timeout)?;
        hub.await_registrations(expected_clients, wait)?;
        Ok(hub)
    }
}

impl TcpHub {
    /// Binds `addr` without accepting yet (use with port 0 to learn the
    /// ephemeral port before clients connect).
    pub fn bind(addr: impl ToSocketAddrs) -> Result<PendingHub, TcpError> {
        Ok(PendingHub {
            listener: TcpListener::bind(addr)?,
            monitor: MonitorHandle::null(),
            read_timeout: Duration::from_millis(50),
        })
    }

    /// Binds `addr` and waits for exactly `expected_clients` join
    /// handshakes. Returns once all write halves are registered.
    pub fn listen(addr: impl ToSocketAddrs, expected_clients: usize) -> Result<TcpHub, TcpError> {
        Self::bind(addr)?.accept(expected_clients)
    }

    /// Spawns the acceptor thread and returns the hub handle.
    fn start(
        listener: TcpListener,
        monitor: MonitorHandle,
        read_timeout: Duration,
    ) -> Result<TcpHub, TcpError> {
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(HubShared {
            streams: Mutex::new(BTreeMap::new()),
            registry: Mutex::new((Vec::new(), 0)),
            registered: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let (tx, incoming): (Sender<HubEvent>, Receiver<HubEvent>) = channel();
        // the acceptor polls so it can notice hub shutdown: accepted sockets
        // get their blocking behaviour back via set_read_timeout below
        listener.set_nonblocking(true)?;
        {
            let shared = shared.clone();
            let monitor = monitor.clone();
            std::thread::spawn(move || loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if stream.set_read_timeout(Some(read_timeout)).is_err() {
                            continue;
                        }
                        let _ = stream.set_nonblocking(false);
                        Self::spawn_reader(stream, shared.clone(), tx.clone(), monitor.clone());
                    }
                    Err(e) if is_deadline(&e) => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => return,
                }
            });
        }
        Ok(TcpHub {
            shared,
            incoming,
            local_addr,
            monitor,
        })
    }

    /// One reader thread per connection: the first frame is the join
    /// handshake (it registers the write half and wakes `accept`);
    /// [`MessageKind::Rejoin`] frames are consumed as transport control;
    /// everything else flows to the incoming queue. Death is reported as
    /// [`HubEvent::Disconnected`] unless a newer connection for the same
    /// participant has already taken over.
    fn spawn_reader(
        stream: TcpStream,
        shared: Arc<HubShared>,
        tx: Sender<HubEvent>,
        monitor: MonitorHandle,
    ) {
        std::thread::spawn(move || {
            let mut reader = match stream.try_clone() {
                Ok(r) => r,
                Err(_) => return,
            };
            let mut frames = FrameReader::default();
            let mut me: Option<(ParticipantId, u64)> = None;
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                match frames.poll(&mut reader, &monitor) {
                    Ok(None) => continue, // deadline tick, frame still partial
                    Ok(Some(msg)) => {
                        let first = me.is_none();
                        if first {
                            let write_half = match stream.try_clone() {
                                Ok(w) => w,
                                Err(_) => return,
                            };
                            let generation = shared.register(msg.sender, write_half);
                            me = Some((msg.sender, generation));
                        }
                        if msg.kind == MessageKind::Rejoin {
                            // transport control: the handshake re-registered
                            // the write half above (or refreshes it here for
                            // a mid-stream rejoin); the workers never see it
                            if tx.send(HubEvent::Rejoined(msg.sender)).is_err() {
                                return;
                            }
                            continue;
                        }
                        if tx.send(HubEvent::Message(msg)).is_err() {
                            return;
                        }
                    }
                    Err(TcpError::Codec(e)) => {
                        let id = me.map(|(id, _)| id);
                        let _ = tx.send(HubEvent::Codec(id, e.to_string()));
                        if let Some((id, generation)) = me {
                            shared.deregister(id, generation);
                        }
                        return;
                    }
                    Err(_) => {
                        // connection dead: report it unless a rejoin already
                        // replaced this connection with a fresh one
                        if let Some((id, generation)) = me {
                            if shared.deregister(id, generation) {
                                let _ = tx.send(HubEvent::Disconnected(id));
                            }
                        }
                        return;
                    }
                }
            }
        });
    }

    /// Blocks until `expected` distinct participants have registered.
    fn await_registrations(&self, expected: usize, wait: Duration) -> Result<(), TcpError> {
        let deadline = Instant::now() + wait;
        let mut reg = lock(&self.shared.registry);
        while reg.0.len() < expected {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("only {}/{expected} clients joined", reg.0.len()),
                )
                .into());
            }
            let (guard, _timeout) = self
                .shared
                .registered
                .wait_timeout(reg, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            reg = guard;
        }
        Ok(())
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Blocks for the next hub event (message or liveness transition).
    pub fn recv_event(&self) -> Result<HubEvent, TcpError> {
        self.incoming.recv().map_err(|_| TcpError::Closed)
    }

    /// Blocks up to `timeout` for the next hub event; `Ok(None)` when the
    /// timeout elapses. The blocking path the distributed server loop uses
    /// instead of busy-polling.
    pub fn recv_event_timeout(&self, timeout: Duration) -> Result<Option<HubEvent>, TcpError> {
        match self.incoming.recv_timeout(timeout) {
            Ok(ev) => Ok(Some(ev)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TcpError::Closed),
        }
    }

    /// Blocks for the next decoded incoming *message*, skipping liveness
    /// events (compatibility path for callers without dropout handling).
    pub fn recv(&self) -> Result<Message, TcpError> {
        loop {
            if let HubEvent::Message(m) = self.recv_event()? {
                return Ok(m);
            }
        }
    }

    /// Non-blocking receive of the next *message*, skipping liveness events;
    /// `Ok(None)` when the queue holds no message.
    pub fn try_recv(&self) -> Result<Option<Message>, TcpError> {
        loop {
            match self.incoming.try_recv() {
                Ok(HubEvent::Message(m)) => return Ok(Some(m)),
                Ok(_) => continue,
                Err(std::sync::mpsc::TryRecvError::Empty) => return Ok(None),
                Err(std::sync::mpsc::TryRecvError::Disconnected) => return Err(TcpError::Closed),
            }
        }
    }

    /// Sends a message to its receiver's connection.
    pub fn send(&self, msg: &Message) -> Result<(), TcpError> {
        let mut streams = lock(&self.shared.streams);
        let conn = streams
            .get_mut(&msg.receiver)
            .ok_or(TcpError::UnknownReceiver(msg.receiver))?;
        write_frame_monitored(&mut conn.stream, msg, &self.monitor)
    }

    /// Ids of currently registered client connections, in id order.
    pub fn connected(&self) -> Vec<ParticipantId> {
        lock(&self.shared.streams).keys().copied().collect()
    }
}

impl Drop for TcpHub {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
    }
}

/// Client side: one plain connection to the hub.
pub struct TcpPeer {
    stream: TcpStream,
    monitor: MonitorHandle,
}

impl TcpPeer {
    /// Connects to a hub.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<TcpPeer, TcpError> {
        Ok(TcpPeer {
            stream: TcpStream::connect(addr)?,
            monitor: MonitorHandle::null(),
        })
    }

    /// Attaches an observability sink counting this peer's wire traffic.
    pub fn set_monitor(&mut self, monitor: MonitorHandle) {
        self.monitor = monitor;
    }

    /// Sends one message.
    pub fn send(&mut self, msg: &Message) -> Result<(), TcpError> {
        write_frame_monitored(&mut self.stream, msg, &self.monitor)
    }

    /// Blocks for the next message from the hub.
    pub fn recv(&mut self) -> Result<Message, TcpError> {
        read_frame_monitored(&mut self.stream, &self.monitor)
    }

    /// Tears the connection down immediately (both directions).
    pub fn shutdown(&self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

/// Capped exponential backoff for client reconnects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Connection attempts per outage before giving up.
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Ceiling on the doubled delay.
    pub max_delay: Duration,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
        }
    }
}

impl ReconnectPolicy {
    /// The backoff before attempt `n` (0-based): `base * 2^n`, capped.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base_delay.saturating_mul(2u32.saturating_pow(attempt));
        exp.min(self.max_delay)
    }
}

/// A client connection with optional fault injection on sends and optional
/// reconnect-with-backoff on outages.
///
/// An injected `Disconnect` verdict really closes the socket (the hub's
/// liveness machinery sees a dead connection). With a [`ReconnectPolicy`]
/// the next operation transparently reconnects — capped exponential backoff,
/// then a [`MessageKind::Rejoin`] handshake so the hub re-registers the
/// write half — and the `reconnects` counter records the recovery. Without
/// one, the link stays dead and operations report it.
pub struct ResilientPeer {
    addr: SocketAddr,
    id: ParticipantId,
    peer: Option<TcpPeer>,
    reconnect: Option<ReconnectPolicy>,
    faults: Option<FaultState>,
    monitor: MonitorHandle,
    reconnects: u64,
}

impl ResilientPeer {
    /// Connects participant `id` to the hub at `addr`.
    pub fn connect(addr: SocketAddr, id: ParticipantId) -> Result<Self, TcpError> {
        Ok(Self {
            addr,
            id,
            peer: Some(TcpPeer::connect(addr)?),
            reconnect: None,
            faults: None,
            monitor: MonitorHandle::null(),
            reconnects: 0,
        })
    }

    /// Enables reconnect-with-backoff on outages.
    pub fn with_reconnect(mut self, policy: ReconnectPolicy) -> Self {
        self.reconnect = Some(policy);
        self
    }

    /// Injects the given fault schedule into this peer's sends.
    pub fn with_faults(mut self, faults: FaultState) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Attaches an observability sink (wire counters + reconnect counter).
    pub fn with_monitor(mut self, monitor: MonitorHandle) -> Self {
        if let Some(p) = self.peer.as_mut() {
            p.set_monitor(monitor.clone());
        }
        self.monitor = monitor;
        self
    }

    /// Successful reconnections performed so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Whether the link is currently down.
    pub fn is_down(&self) -> bool {
        self.peer.is_none()
    }

    /// Closes the current connection (if any).
    fn kill_link(&mut self) {
        if let Some(p) = self.peer.take() {
            p.shutdown();
        }
    }

    /// Re-establishes a dead link per the reconnect policy and performs the
    /// rejoin handshake. Errors when no policy is set or attempts run out.
    fn ensure_connected(&mut self) -> Result<&mut TcpPeer, TcpError> {
        if self.peer.is_some() {
            // (returning from an `if let Some(p)` borrow trips the borrow
            // checker against the reconnect path below)
            return self.peer.as_mut().ok_or(TcpError::Closed);
        }
        let policy = self.reconnect.ok_or(TcpError::Closed)?;
        let mut last_err: Option<TcpError> = None;
        for attempt in 0..policy.max_attempts {
            std::thread::sleep(policy.backoff(attempt));
            match TcpPeer::connect(self.addr) {
                Ok(mut peer) => {
                    peer.set_monitor(self.monitor.clone());
                    let hello =
                        Message::new(self.id, SERVER_ID, MessageKind::Rejoin, 0, Payload::Empty);
                    match peer.send(&hello) {
                        Ok(()) => {
                            self.reconnects += 1;
                            self.monitor.add(counters::RECONNECTS, 1);
                            self.peer = Some(peer);
                            // fsa::allow(FSA021, Some was assigned on the previous line)
                            return Ok(self.peer.as_mut().expect("just set"));
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or(TcpError::Closed))
    }

    /// Sends one message through the fault model, reconnecting first if the
    /// link is down and a policy allows it.
    pub fn send(&mut self, msg: &Message) -> Result<SendOutcome, TcpError> {
        if let Some(f) = self.faults.as_mut() {
            match f.next_action() {
                FaultAction::Deliver => {
                    if let Some(d) = f.delay() {
                        std::thread::sleep(d);
                    }
                }
                FaultAction::Drop => return Ok(SendOutcome::Dropped),
                FaultAction::Disconnect => {
                    self.kill_link();
                    return Ok(SendOutcome::Disconnected);
                }
            }
        }
        if self.peer.is_none() && self.reconnect.is_none() {
            return Ok(SendOutcome::Disconnected);
        }
        match self.ensure_connected()?.send(msg) {
            Ok(()) => Ok(SendOutcome::Sent),
            Err(TcpError::Io(_)) if self.reconnect.is_some() => {
                // the link died underneath us: reconnect once and retry, so a
                // transient outage does not lose the frame
                self.kill_link();
                self.ensure_connected()?.send(msg)?;
                Ok(SendOutcome::Sent)
            }
            Err(e) => {
                self.kill_link();
                Err(e)
            }
        }
    }

    /// Blocks for the next message, reconnecting on outages when a policy
    /// allows it. A frame in flight during an outage is lost — the caller
    /// simply waits for the next server broadcast, exactly like a phone
    /// rejoining after a tunnel.
    pub fn recv(&mut self) -> Result<Message, TcpError> {
        loop {
            if self.peer.is_none() && self.reconnect.is_none() {
                return Err(TcpError::Closed);
            }
            match self.ensure_connected()?.recv() {
                Ok(msg) => return Ok(msg),
                Err(TcpError::Io(_)) if self.reconnect.is_some() => {
                    self.kill_link();
                    // loop: ensure_connected applies the backoff schedule
                }
                Err(e) => {
                    self.kill_link();
                    return Err(e);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultSpec};
    use crate::message::{MessageKind, Payload, SERVER_ID};
    use fs_tensor::{ParamMap, Tensor};

    fn join_msg(id: ParticipantId) -> Message {
        Message::new(id, SERVER_ID, MessageKind::JoinIn, 0, Payload::Empty)
    }

    fn id_msg(id: ParticipantId) -> Message {
        Message::new(SERVER_ID, id, MessageKind::IdAssignment, 0, Payload::Empty)
    }

    #[test]
    fn frame_roundtrip_over_localhost() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            read_frame(&mut s).unwrap()
        });
        let mut client = TcpStream::connect(addr).unwrap();
        let mut p = ParamMap::new();
        p.insert("w", Tensor::from_vec(vec![3], vec![1.0, -2.0, 3.0]));
        let msg = Message::new(
            4,
            SERVER_ID,
            MessageKind::Updates,
            7,
            Payload::Update {
                params: p,
                start_version: 6,
                n_samples: 11,
                n_steps: 2,
            },
        );
        write_frame(&mut client, &msg).unwrap();
        let got = h.join().unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn hub_routes_by_first_sender() {
        let pending = TcpHub::bind("127.0.0.1:0").unwrap();
        let addr = pending.local_addr().unwrap();
        let mut handles = Vec::new();
        for id in [1u32, 2] {
            handles.push(std::thread::spawn(move || {
                let mut peer = TcpPeer::connect(addr).unwrap();
                peer.send(&join_msg(id)).unwrap();
                let reply = peer.recv().unwrap();
                assert_eq!(reply.kind, MessageKind::IdAssignment);
                assert_eq!(reply.receiver, id);
            }));
        }
        let hub = pending.accept(2).unwrap();
        let a = hub.recv().unwrap();
        let b = hub.recv().unwrap();
        let mut ids = vec![a.sender, b.sender];
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
        for id in [1u32, 2] {
            hub.send(&id_msg(id)).unwrap();
        }
        assert_eq!(hub.connected().len(), 2);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn send_immediately_after_accept_succeeds() {
        // regression: registration used to happen on the reader thread after
        // accept returned, so an eager server send hit UnknownReceiver
        let pending = TcpHub::bind("127.0.0.1:0").unwrap();
        let addr = pending.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut peer = TcpPeer::connect(addr).unwrap();
            peer.send(&join_msg(9)).unwrap();
            peer.recv().unwrap()
        });
        let hub = pending.accept(1).unwrap();
        // no recv first: the write half must already be registered
        hub.send(&id_msg(9)).expect("send right after accept");
        let got = client.join().unwrap();
        assert_eq!(got.kind, MessageKind::IdAssignment);
    }

    #[test]
    fn dead_connection_surfaces_as_disconnected_event() {
        let pending = TcpHub::bind("127.0.0.1:0").unwrap();
        let addr = pending.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut peer = TcpPeer::connect(addr).unwrap();
            peer.send(&join_msg(3)).unwrap();
            peer.shutdown(); // dies without a goodbye
        });
        let hub = pending.accept(1).unwrap();
        client.join().unwrap();
        let mut saw_join = false;
        let mut saw_disconnect = false;
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline && !(saw_join && saw_disconnect) {
            match hub.recv_event_timeout(Duration::from_millis(100)).unwrap() {
                Some(HubEvent::Message(m)) if m.kind == MessageKind::JoinIn => saw_join = true,
                Some(HubEvent::Disconnected(3)) => saw_disconnect = true,
                Some(other) => panic!("unexpected event {other:?}"),
                None => {}
            }
        }
        assert!(saw_join && saw_disconnect, "missing join or disconnect");
        assert!(hub.connected().is_empty(), "dead stream must deregister");
    }

    #[test]
    fn garbage_frame_surfaces_as_codec_event() {
        let pending = TcpHub::bind("127.0.0.1:0").unwrap();
        let addr = pending.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut peer = TcpPeer::connect(addr).unwrap();
            peer.send(&join_msg(5)).unwrap();
            // a validly framed payload of garbage bytes
            let garbage = [0xFFu8; 16];
            peer.stream.write_all(&(16u32).to_le_bytes()).unwrap();
            peer.stream.write_all(&garbage).unwrap();
        });
        let hub = pending.accept(1).unwrap();
        client.join().unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut saw_codec = false;
        while Instant::now() < deadline && !saw_codec {
            match hub.recv_event_timeout(Duration::from_millis(100)).unwrap() {
                Some(HubEvent::Codec(Some(5), _)) => saw_codec = true,
                Some(HubEvent::Message(_)) | None => {}
                Some(other) => panic!("unexpected event {other:?}"),
            }
        }
        assert!(saw_codec, "codec error never surfaced");
    }

    #[test]
    fn rejoin_swaps_write_half_and_suppresses_stale_disconnect() {
        let pending = TcpHub::bind("127.0.0.1:0").unwrap();
        let addr = pending.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut peer = ResilientPeer::connect(addr, 4)
                .unwrap()
                .with_reconnect(ReconnectPolicy::default())
                .with_faults(
                    FaultPlan::new(3)
                        .with(4, FaultSpec::dies_after(1))
                        .state_for(4),
                );
            assert_eq!(peer.send(&join_msg(4)).unwrap(), SendOutcome::Sent);
            // fault schedule kills the link on the second send attempt
            assert_eq!(peer.send(&join_msg(4)).unwrap(), SendOutcome::Disconnected);
            // the next op reconnects with the rejoin handshake
            let got = peer.recv().unwrap();
            assert_eq!(peer.reconnects(), 1);
            got
        });
        let hub = pending.accept(1).unwrap();
        let mut rejoined = false;
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline && !rejoined {
            match hub.recv_event_timeout(Duration::from_millis(100)).unwrap() {
                Some(HubEvent::Rejoined(4)) => rejoined = true,
                Some(HubEvent::Message(_)) | Some(HubEvent::Disconnected(_)) | None => {}
                Some(other) => panic!("unexpected event {other:?}"),
            }
        }
        assert!(rejoined, "rejoin handshake never surfaced");
        // the fresh write half must be addressable
        hub.send(&id_msg(4)).expect("send after rejoin");
        let got = client.join().unwrap();
        assert_eq!(got.kind, MessageKind::IdAssignment);
    }

    #[test]
    fn reconnect_backoff_is_capped() {
        let p = ReconnectPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(80),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(40));
        assert_eq!(p.backoff(3), Duration::from_millis(80));
        assert_eq!(p.backoff(9), Duration::from_millis(80), "capped");
    }

    #[test]
    fn wire_counters_match_between_peer_and_hub() {
        use fs_monitor::RecordingMonitor;
        use std::sync::{Arc, Mutex};

        let hub_mon = Arc::new(Mutex::new(RecordingMonitor::new()));
        let peer_mon = Arc::new(Mutex::new(RecordingMonitor::new()));
        let pending = TcpHub::bind("127.0.0.1:0")
            .unwrap()
            .with_monitor(MonitorHandle::from_shared(hub_mon.clone()));
        let addr = pending.local_addr().unwrap();
        let peer_mon2 = peer_mon.clone();
        let client = std::thread::spawn(move || {
            let mut peer = TcpPeer::connect(addr).unwrap();
            peer.set_monitor(MonitorHandle::from_shared(peer_mon2));
            peer.send(&join_msg(1)).unwrap();
            let reply = peer.recv().unwrap();
            assert_eq!(reply.kind, MessageKind::IdAssignment);
        });
        let hub = pending.accept(1).unwrap();
        let joined = hub.recv().unwrap();
        assert_eq!(joined.sender, 1);
        hub.send(&id_msg(1)).unwrap();
        client.join().unwrap();
        let hub_mon = hub_mon.lock().unwrap();
        let peer_mon = peer_mon.lock().unwrap();
        // what the peer put on the wire is what the hub took off, and back
        assert_eq!(
            peer_mon.counter(counters::WIRE_BYTES_OUT),
            hub_mon.counter(counters::WIRE_BYTES_IN)
        );
        assert_eq!(
            hub_mon.counter(counters::WIRE_BYTES_OUT),
            peer_mon.counter(counters::WIRE_BYTES_IN)
        );
        assert_eq!(peer_mon.counter(counters::WIRE_FRAMES_OUT), 1);
        assert_eq!(hub_mon.counter(counters::WIRE_FRAMES_IN), 1);
        // real wire bytes = 4-byte length prefix + encoded frame
        let join = join_msg(1);
        assert_eq!(
            peer_mon.counter(counters::WIRE_BYTES_OUT),
            4 + join.wire_bytes() as u64
        );
    }

    #[test]
    fn oversized_frame_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // write a bogus huge length prefix
            s.write_all(&(u32::MAX).to_le_bytes()).unwrap();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        h.join().unwrap();
        match read_frame(&mut client) {
            Err(TcpError::FrameTooLarge(_)) => {}
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }
}
