//! Workspace integration tests: full FL courses across crates.

use fedscope::core::completeness::FlowGraph;
use fedscope::core::config::{BroadcastManner, FlConfig, SamplerKind};
use fedscope::core::course::CourseBuilder;
use fedscope::core::distributed::run_distributed;
use fedscope::data::synth::{femnist_like, twitter_like, ImageConfig, TwitterConfig};
use fedscope::tensor::model::{convnet2, logistic_regression};
use fedscope::tensor::optim::SgdConfig;
use std::time::Duration;

fn twitter_course(cfg: FlConfig) -> fedscope::core::StandaloneRunner {
    let data = twitter_like(&TwitterConfig {
        num_clients: 16,
        per_client: 16,
        ..Default::default()
    });
    let dim = data.input_dim();
    CourseBuilder::new(
        data,
        Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
        cfg,
    )
    .build()
}

#[test]
fn default_course_is_complete_and_terminates() {
    let cfg = FlConfig {
        total_rounds: 4,
        concurrency: 8,
        seed: 1,
        ..Default::default()
    };
    let mut runner = twitter_course(cfg);
    let clients: Vec<&fedscope::core::Client> = runner.clients.values().collect();
    let check = FlowGraph::from_course(&runner.server, &clients).check();
    assert!(
        check.complete,
        "default course must have a start-to-finish path"
    );
    // the default client carries an EvalRequest handler that nothing triggers
    // in a plain FedAvg course — the checker flags exactly that node as
    // redundant (the paper's Appendix-E warning for unreachable nodes)
    assert_eq!(
        check.redundant,
        vec![fedscope::core::Event::Message(
            fedscope::net::MessageKind::EvalRequest
        )],
        "unexpected redundancy report"
    );
    let report = runner.run();
    assert_eq!(report.rounds, 4);
    assert_eq!(runner.server.state.client_reports.len(), 16);
    assert!(runner.server.warnings().is_empty());
}

#[test]
fn every_strategy_family_terminates_with_same_protocol() {
    let base = FlConfig {
        total_rounds: 4,
        concurrency: 8,
        seed: 2,
        sgd: SgdConfig::with_lr(0.3),
        ..Default::default()
    };
    let variants = vec![
        base.clone().sync_vanilla(),
        base.clone().sync_over_selection(0.25),
        base.clone()
            .async_goal(3, BroadcastManner::AfterAggregating, SamplerKind::Uniform),
        base.clone()
            .async_goal(3, BroadcastManner::AfterReceiving, SamplerKind::Uniform),
        base.clone()
            .async_goal(3, BroadcastManner::AfterAggregating, SamplerKind::Group),
        base.clone().async_goal(
            3,
            BroadcastManner::AfterAggregating,
            SamplerKind::Responsiveness,
        ),
        base.clone().async_time(
            5.0,
            1,
            BroadcastManner::AfterAggregating,
            SamplerKind::Uniform,
        ),
        base.async_time(
            5.0,
            1,
            BroadcastManner::AfterReceiving,
            SamplerKind::Uniform,
        ),
    ];
    for (i, cfg) in variants.into_iter().enumerate() {
        let mut runner = twitter_course(cfg);
        let report = runner.run();
        assert_eq!(report.rounds, 4, "variant {i} stalled");
        // every aggregated update respected the staleness tolerance
        let tol = runner.server.state.cfg.staleness_tolerance;
        assert!(
            runner.server.state.staleness_log.iter().all(|&s| s <= tol),
            "variant {i} aggregated over-stale updates"
        );
    }
}

#[test]
fn virtual_time_is_monotone_and_deterministic() {
    let cfg = FlConfig {
        total_rounds: 6,
        concurrency: 8,
        seed: 3,
        ..Default::default()
    };
    let r1 = twitter_course(cfg.clone()).run();
    let r2 = twitter_course(cfg).run();
    assert_eq!(r1.final_time_secs, r2.final_time_secs);
    for w in r1.history.windows(2) {
        assert!(
            w[1].time_secs >= w[0].time_secs,
            "virtual time went backwards"
        );
    }
    // distinct seeds give distinct courses
    let cfg2 = FlConfig {
        total_rounds: 6,
        concurrency: 8,
        seed: 4,
        ..Default::default()
    };
    let r3 = twitter_course(cfg2).run();
    assert_ne!(r1.final_time_secs, r3.final_time_secs);
}

#[test]
fn crashing_clients_are_absorbed_by_time_up() {
    let data = twitter_like(&TwitterConfig {
        num_clients: 12,
        per_client: 12,
        ..Default::default()
    });
    let dim = data.input_dim();
    let cfg = FlConfig {
        total_rounds: 3,
        concurrency: 8,
        seed: 5,
        ..Default::default()
    }
    .async_time(
        10.0,
        1,
        BroadcastManner::AfterAggregating,
        SamplerKind::Uniform,
    );
    let mut runner = CourseBuilder::new(
        data,
        Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
        cfg,
    )
    .fleet_config(fedscope::sim::FleetConfig {
        num_clients: 12,
        crash_prob: 0.3,
        ..Default::default()
    })
    .build();
    let report = runner.run();
    assert_eq!(report.rounds, 3, "time_up must push through crashes");
    assert!(
        report.crashed_deliveries > 0,
        "crash injection had no effect"
    );
}

#[test]
fn cnn_course_learns_on_images() {
    let data = femnist_like(&ImageConfig {
        num_clients: 10,
        per_client: 24,
        img: 8,
        num_classes: 4,
        ..Default::default()
    });
    let cfg = FlConfig {
        total_rounds: 15,
        concurrency: 10,
        local_steps: 4,
        batch_size: 8,
        sgd: SgdConfig::with_lr(0.25),
        seed: 6,
        ..Default::default()
    };
    let mut runner = CourseBuilder::new(
        data,
        Box::new(|rng| Box::new(convnet2(1, 8, 16, 4, 0.0, rng))),
        cfg,
    )
    .build();
    let report = runner.run();
    let best = report
        .history
        .iter()
        .map(|r| r.metrics.accuracy)
        .fold(0.0f32, f32::max);
    assert!(best > 0.6, "CNN course failed to learn: best {best}");
}

#[test]
fn target_accuracy_stops_early() {
    let cfg = FlConfig {
        total_rounds: 100,
        concurrency: 8,
        target_accuracy: Some(0.5),
        sgd: SgdConfig::with_lr(0.5),
        seed: 7,
        ..Default::default()
    };
    let mut runner = twitter_course(cfg);
    let report = runner.run();
    assert!(
        report.rounds < 100,
        "target accuracy should stop the course early"
    );
    assert!(report.finish_reason.contains("target accuracy"));
}

#[test]
fn distributed_runner_matches_participant_counts() {
    let data = twitter_like(&TwitterConfig {
        num_clients: 6,
        per_client: 12,
        ..Default::default()
    });
    let dim = data.input_dim();
    let cfg = FlConfig {
        total_rounds: 3,
        concurrency: 4,
        seed: 8,
        ..Default::default()
    };
    let runner = CourseBuilder::new(
        data,
        Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
        cfg,
    )
    .build();
    let server = runner.server;
    let clients: Vec<_> = runner.clients.into_values().collect();
    let server = run_distributed(server, clients, Duration::from_secs(60)).expect("run");
    assert_eq!(server.state.round, 3);
    assert_eq!(server.state.client_reports.len(), 6);
}

#[test]
fn distributed_rejects_time_up_rule() {
    let data = twitter_like(&TwitterConfig {
        num_clients: 4,
        per_client: 12,
        ..Default::default()
    });
    let dim = data.input_dim();
    let cfg = FlConfig {
        total_rounds: 2,
        concurrency: 2,
        seed: 9,
        ..Default::default()
    }
    .async_time(
        5.0,
        1,
        BroadcastManner::AfterAggregating,
        SamplerKind::Uniform,
    );
    let runner = CourseBuilder::new(
        data,
        Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
        cfg,
    )
    .build();
    let server = runner.server;
    let clients: Vec<_> = runner.clients.into_values().collect();
    let err = run_distributed(server, clients, Duration::from_secs(5));
    assert!(
        err.is_err(),
        "time_up needs virtual time and must be rejected"
    );
}

#[test]
fn handler_override_changes_course_behaviour() {
    use fedscope::core::{Condition, Event};
    use fedscope::net::MessageKind;
    let cfg = FlConfig {
        total_rounds: 3,
        concurrency: 8,
        seed: 10,
        ..Default::default()
    };
    let mut runner = twitter_course(cfg);
    // overwrite the metrics handler: drop all reports
    runner.server.registry_mut().register(
        Event::Message(MessageKind::MetricsReport),
        "ignore_metrics",
        vec![],
        Box::new(|_, _, _| {}),
    );
    assert_eq!(runner.server.warnings().len(), 1, "overwrite must warn");
    let _ = runner.run();
    assert!(runner.server.state.client_reports.is_empty());
    // condition events remain linked
    let eff = runner.server.effective_handlers();
    assert!(eff
        .iter()
        .any(|(e, _)| matches!(e, Event::Condition(Condition::EarlyStop))));
}

#[test]
fn tcp_distributed_course_completes() {
    use fedscope::core::distributed::run_distributed_tcp;
    let data = twitter_like(&TwitterConfig {
        num_clients: 5,
        per_client: 12,
        ..Default::default()
    });
    let dim = data.input_dim();
    let cfg = FlConfig {
        total_rounds: 3,
        concurrency: 3,
        seed: 11,
        ..Default::default()
    };
    let runner = CourseBuilder::new(
        data,
        Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
        cfg,
    )
    .build();
    let server = runner.server;
    let clients: Vec<_> = runner.clients.into_values().collect();
    let server = run_distributed_tcp(server, clients, Duration::from_secs(60)).expect("tcp run");
    assert_eq!(server.state.round, 3);
    assert_eq!(server.state.client_reports.len(), 5);
}
