//! Property inference (PIA).
//!
//! An honest-but-curious server observes clients' gradient updates and trains
//! a *meta-classifier* to predict a sensitive dataset property that is
//! unrelated to the learning task — e.g. "does this client's data
//! over-represent class 0?". Following Melis et al., the meta-classifier is a
//! logistic regression over (down-projected) gradient features.

use fs_tensor::loss::Target;
use fs_tensor::model::{logistic_regression, Model};
use fs_tensor::{ParamMap, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Flattens a gradient map into a feature vector, down-sampling to at most
/// `max_dim` coordinates (stride sampling keeps it deterministic).
pub fn gradient_features(grads: &ParamMap, max_dim: usize) -> Vec<f32> {
    let flat: Vec<f32> = grads
        .iter()
        .flat_map(|(_, t)| t.data().iter().copied())
        .collect();
    if flat.len() <= max_dim {
        return flat;
    }
    let stride = flat.len() / max_dim;
    (0..max_dim).map(|i| flat[i * stride]).collect()
}

/// A trained property-inference attacker.
pub struct PropertyAttacker {
    meta: Box<dyn Model>,
    dim: usize,
}

impl PropertyAttacker {
    /// Trains the meta-classifier on labelled gradient observations
    /// (`true` = property present).
    pub fn train(observations: &[(Vec<f32>, bool)], epochs: usize, seed: u64) -> Self {
        assert!(!observations.is_empty(), "no observations");
        let dim = observations[0].0.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut meta = logistic_regression(dim, 2, &mut rng);
        let n = observations.len();
        let mut data = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        for (f, p) in observations {
            assert_eq!(f.len(), dim, "ragged features");
            data.extend_from_slice(f);
            labels.push(usize::from(*p));
        }
        let x = Tensor::from_vec(vec![n, dim], data);
        let y = Target::Classes(labels);
        for _ in 0..epochs {
            let (_, g) = meta.loss_grad(&x, &y);
            let mut p = meta.get_params();
            p.add_scaled(-0.5, &g);
            meta.set_params(&p);
        }
        Self {
            meta: Box::new(meta),
            dim,
        }
    }

    /// Predicts whether the property holds for a gradient observation.
    pub fn predict(&mut self, features: &[f32]) -> bool {
        assert_eq!(features.len(), self.dim, "feature dimension");
        let x = Tensor::from_vec(vec![1, self.dim], features.to_vec());
        let logits = self.meta.predict(&x);
        logits.at(0, 1) > logits.at(0, 0)
    }

    /// Attack accuracy over a labelled evaluation set.
    pub fn accuracy(&mut self, eval: &[(Vec<f32>, bool)]) -> f32 {
        if eval.is_empty() {
            return 0.0;
        }
        let correct = eval
            .iter()
            .map(|(f, p)| usize::from(self.predict(f) == *p))
            .sum::<usize>();
        correct as f32 / eval.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_data::synth::{cifar_like, ImageConfig};
    use rand::Rng;

    /// Builds gradient observations from clients whose datasets either do or
    /// do not over-represent class 0.
    fn observations(seed: u64, count: usize) -> Vec<(Vec<f32>, bool)> {
        let cfg = ImageConfig {
            num_clients: 2,
            per_client: 60,
            num_classes: 4,
            img: 6,
            seed,
            ..Default::default()
        };
        let data = cifar_like(&cfg, None).flattened();
        let dim = data.input_dim();
        let mut rng = StdRng::seed_from_u64(seed ^ 77);
        let mut out = Vec::new();
        for i in 0..count {
            let has_property = i % 2 == 0;
            let mut model = logistic_regression(dim, 4, &mut rng);
            // draw a biased or unbiased batch from client 0's pool
            let pool = &data.clients[0].train;
            let y = match &pool.y {
                Target::Classes(c) => c.clone(),
                _ => unreachable!(),
            };
            let idx: Vec<usize> = if has_property {
                (0..pool.len()).filter(|&j| y[j] == 0).take(10).collect()
            } else {
                (0..pool.len()).filter(|&j| y[j] != 0).take(10).collect()
            };
            let mut idx = idx;
            while idx.len() < 10 {
                idx.push(rng.gen_range(0..pool.len()));
            }
            let batch = pool.batch(&idx);
            let (_, grads) = model.loss_grad(&batch.x, &batch.y);
            out.push((gradient_features(&grads, 64), has_property));
        }
        out
    }

    #[test]
    fn attacker_learns_class_imbalance_property() {
        let train = observations(1, 60);
        let eval = observations(2, 30);
        let mut attacker = PropertyAttacker::train(&train, 200, 5);
        let acc = attacker.accuracy(&eval);
        assert!(acc > 0.8, "property attack should succeed, accuracy {acc}");
    }

    #[test]
    fn features_are_bounded_dim() {
        let mut p = ParamMap::new();
        p.insert("w", Tensor::ones(&[100, 10]));
        let f = gradient_features(&p, 64);
        assert_eq!(f.len(), 64);
        let small = ParamMap::new();
        assert!(gradient_features(&small, 64).is_empty());
    }
}
