//! The malicious-client participant plug-in (Figure 7).
//!
//! "Users can conveniently choose some of the participants to become
//! malicious clients via configuring, and attack algorithms can be added to
//! their own trainers." [`MaliciousTrainer`] wraps a benign trainer: it
//! poisons the local dataset once (data-poisoning backdoors) and/or
//! manipulates every outgoing update (model-poisoning), while behaving like
//! any other client at the message level — invisible to the server.

use crate::backdoor::{poison_dataset, Trigger};
use crate::model_poison::model_replacement;
use fs_core::trainer::{LocalTrainer, LocalUpdate, Trainer};
use fs_tensor::model::Metrics;
use fs_tensor::optim::SgdConfig;
use fs_tensor::ParamMap;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// What the malicious client does.
#[derive(Clone, Debug)]
pub enum AttackMode {
    /// Stamp a trigger on a fraction of local data and relabel to the target
    /// class (BadNets / DBA fragment).
    DataPoison {
        /// The trigger (or DBA fragment) to stamp.
        trigger: Trigger,
        /// Attacker's target class.
        target_class: usize,
        /// Fraction of local training data to poison.
        fraction: f32,
    },
    /// Scale the trained update for model replacement.
    ModelReplacement {
        /// Expected number of equally-weighted participants per aggregation.
        n_participants: usize,
    },
}

/// A trainer wrapper that turns a benign client into an attacker.
pub struct MaliciousTrainer {
    inner: LocalTrainer,
    mode: AttackMode,
    poisoned: bool,
    rng: StdRng,
}

impl MaliciousTrainer {
    /// Wraps `inner` with the given attack mode.
    pub fn new(inner: LocalTrainer, mode: AttackMode, seed: u64) -> Self {
        Self {
            inner,
            mode,
            poisoned: false,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn ensure_poisoned(&mut self) {
        if self.poisoned {
            return;
        }
        if let AttackMode::DataPoison {
            trigger,
            target_class,
            fraction,
        } = self.mode.clone()
        {
            poison_dataset(
                &mut self.inner.data_mut().train,
                &trigger,
                target_class,
                fraction,
                &mut self.rng,
            );
        }
        self.poisoned = true;
    }
}

impl Trainer for MaliciousTrainer {
    fn incorporate(&mut self, global: &ParamMap) {
        self.inner.incorporate(global);
    }

    fn local_train(&mut self, global: &ParamMap, round: u64) -> LocalUpdate {
        self.ensure_poisoned();
        let mut update = self.inner.local_train(global, round);
        if let AttackMode::ModelReplacement { n_participants } = self.mode {
            update.params = model_replacement(global, &update.params, n_participants);
        }
        update
    }

    fn evaluate_val(&mut self) -> Metrics {
        self.inner.evaluate_val()
    }

    fn evaluate_test(&mut self) -> Metrics {
        self.inner.evaluate_test()
    }

    fn num_train_samples(&self) -> usize {
        self.inner.num_train_samples()
    }

    fn set_sgd_config(&mut self, cfg: SgdConfig) {
        self.inner.set_sgd_config(cfg);
    }

    fn try_clone(&self) -> Option<Box<dyn Trainer>> {
        Some(Box::new(Self {
            inner: self.inner.clone(),
            mode: self.mode.clone(),
            poisoned: self.poisoned,
            rng: self.rng.clone(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backdoor::attack_success_rate;
    use fs_core::config::FlConfig;
    use fs_core::course::CourseBuilder;
    use fs_core::trainer::{share_all, TrainConfig};
    use fs_data::synth::{cifar_like, ImageConfig};
    use fs_tensor::model::{convnet2, Model};

    /// Runs a small FL course with `n_malicious` backdooring clients and
    /// returns (clean accuracy, attack success rate).
    fn run_backdoor_course(n_malicious: usize) -> (f32, f32) {
        let cfg_img = ImageConfig {
            num_clients: 8,
            per_client: 40,
            img: 8,
            num_classes: 4,
            seed: 21,
            ..Default::default()
        };
        let data = cifar_like(&cfg_img, None);
        let clean_test = data.clients[7].test.clone();
        let cfg = FlConfig {
            total_rounds: 15,
            concurrency: 8,
            local_steps: 8,
            batch_size: 8,
            sgd: SgdConfig::with_lr(0.2),
            ..Default::default()
        };
        let mut runner = CourseBuilder::new(
            data,
            Box::new(|rng| Box::new(convnet2(1, 8, 16, 4, 0.0, rng))),
            cfg,
        )
        .trainer_factory(Box::new(move |i, model, split, cfg| {
            let inner = LocalTrainer::new(
                model,
                split,
                TrainConfig {
                    local_steps: cfg.local_steps,
                    batch_size: cfg.batch_size,
                    sgd: cfg.sgd,
                },
                share_all(),
                cfg.seed ^ (i as u64 + 1),
            );
            if i < n_malicious {
                Box::new(MaliciousTrainer::new(
                    inner,
                    AttackMode::DataPoison {
                        trigger: Trigger::corner(),
                        target_class: 0,
                        fraction: 0.5,
                    },
                    cfg.seed ^ 0xbad ^ i as u64,
                ))
            } else {
                Box::new(inner)
            }
        }))
        .build();
        runner.run();
        // evaluate the final global model
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = convnet2(1, 8, 16, 4, 0.0, &mut rng);
        let mut p = model.get_params();
        p.merge_from(&runner.server.state.global);
        model.set_params(&p);
        let clean = model.evaluate(&clean_test.x, &clean_test.y).accuracy;
        let asr = attack_success_rate(&mut model, &clean_test, &Trigger::corner(), 0);
        (clean, asr)
    }

    #[test]
    fn backdoor_raises_asr_without_destroying_accuracy() {
        let (clean_benign, asr_benign) = run_backdoor_course(0);
        let (clean_attacked, asr_attacked) = run_backdoor_course(3);
        assert!(
            asr_attacked > asr_benign + 0.2,
            "backdoor had no effect: benign asr {asr_benign}, attacked {asr_attacked}"
        );
        assert!(
            clean_attacked > clean_benign - 0.35,
            "attack destroyed clean accuracy: {clean_benign} -> {clean_attacked}"
        );
    }
}
