//! **Table 1** — synchronous vs asynchronous training strategies: virtual
//! time (hours) to reach the target test accuracy on the three benchmark
//! datasets, with the speedup factor over `Sync-vanilla`.
//!
//! Paper's shape: `Sync-OS` ≈ 2.1–2.5× faster than vanilla; asynchronous
//! strategies ≈ 5–19× faster, with `Goal-Aggr-Group` the best on FEMNIST and
//! `Time-Aggr-Unif` the best on Twitter.
//!
//! ```text
//! cargo run -p fs-bench --release --bin exp_table1 -- [--seed N] [--workloads a,b]
//! ```

use fs_bench::args::ExpArgs;
use fs_bench::output::{render_table, write_json};
use fs_bench::strategies::Strategy;
use fs_bench::workloads::{cifar, femnist, twitter, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    target_accuracy: f32,
    strategy: String,
    hours_to_target: Option<f64>,
    speedup_vs_sync: Option<f64>,
    rounds: u64,
    dropped_updates: u64,
}

fn run_workload(wl: &Workload, threads: usize, rows: &mut Vec<Row>) {
    let mut sync_hours: Option<f64> = None;
    for strat in Strategy::table1() {
        let mut cfg = strat.configure(wl);
        cfg.target_accuracy = Some(wl.target_accuracy);
        cfg.parallelism = threads;
        let mut runner = wl.build(cfg);
        let report = runner.run();
        let hours = report
            .time_to_accuracy(wl.target_accuracy)
            .map(|s| s / 3600.0);
        if strat == Strategy::SyncVanilla {
            sync_hours = hours;
        }
        let speedup = match (sync_hours, hours) {
            (Some(s), Some(h)) if h > 0.0 => Some(s / h),
            _ => None,
        };
        eprintln!(
            "  {} / {}: {:?} h (rounds {})",
            wl.name,
            strat.label(),
            hours,
            report.rounds
        );
        rows.push(Row {
            dataset: wl.name.to_string(),
            target_accuracy: wl.target_accuracy,
            strategy: strat.label().to_string(),
            hours_to_target: hours,
            speedup_vs_sync: speedup,
            rounds: report.rounds,
            dropped_updates: report.dropped_updates,
        });
    }
}

fn main() {
    let args = ExpArgs::parse();
    let seed = args.seed_or(7);
    let mut rows = Vec::new();
    for name in args.workloads_or(&["femnist", "cifar", "twitter"]) {
        let wl = match name.as_str() {
            "femnist" => femnist(seed),
            "cifar" => cifar(seed),
            _ => twitter(seed),
        };
        eprintln!("== {} (target {:.0}%)", wl.name, wl.target_accuracy * 100.0);
        run_workload(&wl, args.threads_or(1), &mut rows);
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                format!("{:.0}%", r.target_accuracy * 100.0),
                r.strategy.clone(),
                r.hours_to_target.map_or("—".into(), |h| format!("{h:.3}")),
                r.speedup_vs_sync.map_or("—".into(), |s| format!("{s:.2}x")),
                r.rounds.to_string(),
                r.dropped_updates.to_string(),
            ]
        })
        .collect();
    println!("\nTable 1 — virtual time (hours) to target accuracy\n");
    println!(
        "{}",
        render_table(
            &["dataset", "target", "strategy", "hours", "speedup", "rounds", "dropped"],
            &table
        )
    );
    let path = write_json("table1", &rows).expect("write results");
    println!("wrote {path}");
}
