//! Federated aggregators.
//!
//! The aggregator is decoupled from the server's behaviour (§3.6): it takes
//! the buffered client updates and the current global model and produces the
//! next global model. Provided rules:
//!
//! * [`FedAvg`] — sample-weighted averaging with staleness discounting and a
//!   pluggable server optimizer (FedOpt: SGD / Adam / Yogi);
//! * [`FedNova`] — normalizes each client's contribution by its local step
//!   count before averaging, correcting objective inconsistency;
//! * [`Krum`] — Byzantine-robust selection (§3.6 "Robustness Against
//!   Malicious Participants"), including multi-Krum;
//! * [`CoordinateMedian`] / [`TrimmedMean`] — classical robust statistics
//!   aggregation.

use fs_net::ParticipantId;
use fs_tensor::optim::ServerOpt;
use fs_tensor::ParamMap;

/// One buffered client update, as seen by the aggregator.
#[derive(Clone, Debug)]
pub struct ReceivedUpdate {
    /// The contributing client.
    pub client: ParticipantId,
    /// The client's updated parameters (full values, not deltas).
    pub params: ParamMap,
    /// Version difference between the current global model and the model the
    /// client started from (§3.3.1 (i)).
    pub staleness: u64,
    /// Local training examples (FedAvg weight).
    pub n_samples: u64,
    /// Local SGD steps actually taken (FedNova weight).
    pub n_steps: u64,
}

/// A federated aggregation rule.
pub trait Aggregator: Send {
    /// Produces the next global model from the current one and the buffered
    /// updates. Implementations must return `global` unchanged when `updates`
    /// is empty.
    fn aggregate(&mut self, global: &ParamMap, updates: &[ReceivedUpdate]) -> ParamMap;

    /// Human-readable rule name for course logs.
    fn name(&self) -> &'static str;
}

/// Weight multiplier for a staled update: `1 / (1 + tau)^a`.
pub fn staleness_weight(staleness: u64, exponent: f32) -> f32 {
    if exponent == 0.0 {
        1.0
    } else {
        (1.0 + staleness as f32).powf(-exponent)
    }
}

/// Sample-weighted federated averaging with staleness discounting, applied
/// through a server optimizer (plain SGD with lr=1 reproduces vanilla FedAvg).
pub struct FedAvg {
    /// Server-side optimizer (FedOpt family).
    pub server_opt: ServerOpt,
    /// Staleness discount exponent `a`.
    pub staleness_discount: f32,
}

impl FedAvg {
    /// Vanilla FedAvg (server SGD, lr=1) with the given staleness discount.
    pub fn new(staleness_discount: f32) -> Self {
        Self {
            server_opt: ServerOpt::fedavg(),
            staleness_discount,
        }
    }

    /// FedOpt variant with a custom server optimizer.
    pub fn with_server_opt(server_opt: ServerOpt, staleness_discount: f32) -> Self {
        Self {
            server_opt,
            staleness_discount,
        }
    }
}

impl Aggregator for FedAvg {
    fn aggregate(&mut self, global: &ParamMap, updates: &[ReceivedUpdate]) -> ParamMap {
        if updates.is_empty() {
            return global.clone();
        }
        // Weighted mean of client deltas (over the shared key set), then the
        // server optimizer applies the pseudo-gradient.
        let mut total_w = 0.0f32;
        let mut delta = global.zeros_like();
        for u in updates {
            let w = u.n_samples as f32 * staleness_weight(u.staleness, self.staleness_discount);
            // only aggregate keys both sides share (multi-goal courses share a subset)
            let shared = u.params.filter(|k| global.contains(k));
            let d = shared.sub(&global.filter(|k| shared.contains(k)));
            for (k, t) in d.iter() {
                delta.get_mut(k).expect("shared key").add_scaled(w, t);
            }
            total_w += w;
        }
        if total_w <= 0.0 {
            return global.clone();
        }
        delta.scale(1.0 / total_w);
        let mut next = global.clone();
        self.server_opt.apply(&mut next, &delta);
        next
    }

    fn name(&self) -> &'static str {
        "fedavg"
    }
}

/// FedNova: each client's delta is normalized by its local step count, and
/// the effective step scale is restored globally, so clients running
/// different numbers of local steps no longer bias the objective.
pub struct FedNova {
    /// Staleness discount exponent.
    pub staleness_discount: f32,
}

impl Aggregator for FedNova {
    fn aggregate(&mut self, global: &ParamMap, updates: &[ReceivedUpdate]) -> ParamMap {
        if updates.is_empty() {
            return global.clone();
        }
        let mut total_w = 0.0f32;
        let mut eff_steps = 0.0f32;
        let mut norm_delta = global.zeros_like();
        for u in updates {
            let w = u.n_samples as f32 * staleness_weight(u.staleness, self.staleness_discount);
            let steps = u.n_steps.max(1) as f32;
            let shared = u.params.filter(|k| global.contains(k));
            let d = shared.sub(&global.filter(|k| shared.contains(k)));
            for (k, t) in d.iter() {
                norm_delta
                    .get_mut(k)
                    .expect("shared key")
                    .add_scaled(w / steps, t);
            }
            eff_steps += w * steps;
            total_w += w;
        }
        if total_w <= 0.0 {
            return global.clone();
        }
        // tau_eff = weighted mean step count; delta = tau_eff * weighted mean normalized delta
        let tau_eff = eff_steps / total_w;
        norm_delta.scale(tau_eff / total_w);
        let mut next = global.clone();
        next.add_scaled(1.0, &norm_delta);
        next
    }

    fn name(&self) -> &'static str {
        "fednova"
    }
}

/// Krum / multi-Krum Byzantine-robust aggregation: selects the update(s)
/// closest to their `n - f - 2` nearest neighbours and averages the selected
/// set, discarding outliers produced by malicious clients.
pub struct Krum {
    /// Assumed maximum number of Byzantine clients.
    pub num_byzantine: usize,
    /// Number of selected updates to average (1 = classic Krum).
    pub num_selected: usize,
}

impl Krum {
    /// Classic Krum tolerating `f` Byzantine clients.
    pub fn new(f: usize) -> Self {
        Self {
            num_byzantine: f,
            num_selected: 1,
        }
    }

    /// Multi-Krum averaging the best `m` updates.
    pub fn multi(f: usize, m: usize) -> Self {
        Self {
            num_byzantine: f,
            num_selected: m.max(1),
        }
    }

    /// Krum scores: for each update, the sum of squared distances to its
    /// `n - f - 2` nearest neighbours (lower = more central).
    pub fn scores(&self, updates: &[ReceivedUpdate]) -> Vec<f32> {
        let n = updates.len();
        let mut scores = vec![0.0f32; n];
        let keep = n.saturating_sub(self.num_byzantine + 2).max(1);
        for i in 0..n {
            let mut dists: Vec<f32> = (0..n)
                .filter(|&j| j != i)
                // a Byzantine NaN must count as "infinitely far", not panic
                .map(|j| {
                    let d = updates[i].params.sq_dist(&updates[j].params);
                    if d.is_finite() {
                        d
                    } else {
                        f32::INFINITY
                    }
                })
                .collect();
            dists.sort_by(f32::total_cmp);
            scores[i] = dists.iter().take(keep).sum();
        }
        scores
    }
}

impl Aggregator for Krum {
    fn aggregate(&mut self, global: &ParamMap, updates: &[ReceivedUpdate]) -> ParamMap {
        if updates.is_empty() {
            return global.clone();
        }
        let scores = self.scores(updates);
        let mut order: Vec<usize> = (0..updates.len()).collect();
        order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
        let m = self.num_selected.min(updates.len());
        // average only the keys the selected updates actually carry; global
        // keys absent from the updates keep their current values
        let mut next = global.clone();
        let selected: Vec<&ReceivedUpdate> = order.iter().take(m).map(|&i| &updates[i]).collect();
        for (k, out) in next.iter_mut() {
            let sources: Vec<&crate::aggregator::ReceivedUpdate> = selected
                .iter()
                .copied()
                .filter(|u| u.params.contains(k))
                .collect();
            if sources.is_empty() {
                continue;
            }
            out.scale(0.0);
            for u in &sources {
                out.add_scaled(1.0 / sources.len() as f32, u.params.get(k).expect("key"));
            }
        }
        next
    }

    fn name(&self) -> &'static str {
        "krum"
    }
}

/// Norm-bounding defence: caps every client's *delta* to a maximum L2 norm
/// before delegating to an inner rule. A cheap, widely deployed mitigation
/// against model-replacement attacks (boosted updates get rescaled back into
/// the benign range instead of dominating the average).
pub struct NormBounded {
    /// Maximum allowed L2 norm of a client delta.
    pub max_delta_norm: f32,
    /// The rule applied after bounding.
    pub inner: Box<dyn Aggregator>,
}

impl NormBounded {
    /// Wraps `inner` with a delta-norm cap.
    pub fn new(max_delta_norm: f32, inner: Box<dyn Aggregator>) -> Self {
        assert!(max_delta_norm > 0.0, "norm bound must be positive");
        Self {
            max_delta_norm,
            inner,
        }
    }
}

impl Aggregator for NormBounded {
    fn aggregate(&mut self, global: &ParamMap, updates: &[ReceivedUpdate]) -> ParamMap {
        let bounded: Vec<ReceivedUpdate> = updates
            .iter()
            .map(|u| {
                let shared = u.params.filter(|k| global.contains(k));
                let mut delta = shared.sub(&global.filter(|k| shared.contains(k)));
                delta.clip_norm(self.max_delta_norm);
                let mut params = global.filter(|k| shared.contains(k));
                params.add_scaled(1.0, &delta);
                ReceivedUpdate {
                    params,
                    ..u.clone()
                }
            })
            .collect();
        self.inner.aggregate(global, &bounded)
    }

    fn name(&self) -> &'static str {
        "norm_bounded"
    }
}

/// Coordinate-wise median aggregation.
pub struct CoordinateMedian;

impl Aggregator for CoordinateMedian {
    fn aggregate(&mut self, global: &ParamMap, updates: &[ReceivedUpdate]) -> ParamMap {
        robust_coordinatewise(global, updates, 0.0)
    }

    fn name(&self) -> &'static str {
        "median"
    }
}

/// Coordinate-wise trimmed mean: drops the `trim` fraction of extreme values
/// at each end before averaging each coordinate.
pub struct TrimmedMean {
    /// Fraction trimmed from each tail (0 ≤ trim < 0.5).
    pub trim: f32,
}

impl Aggregator for TrimmedMean {
    fn aggregate(&mut self, global: &ParamMap, updates: &[ReceivedUpdate]) -> ParamMap {
        assert!(
            (0.0..0.5).contains(&self.trim),
            "trim fraction must be in [0, 0.5), got {}",
            self.trim
        );
        robust_coordinatewise(global, updates, self.trim)
    }

    fn name(&self) -> &'static str {
        "trimmed_mean"
    }
}

/// Shared implementation: `trim = 0` computes the median; otherwise the
/// trimmed mean over each coordinate of the shared keys.
fn robust_coordinatewise(global: &ParamMap, updates: &[ReceivedUpdate], trim: f32) -> ParamMap {
    if updates.is_empty() {
        return global.clone();
    }
    let mut next = global.clone();
    let mut column: Vec<f32> = Vec::with_capacity(updates.len());
    for (k, out) in next.iter_mut() {
        let sources: Vec<&fs_tensor::Tensor> =
            updates.iter().filter_map(|u| u.params.get(k)).collect();
        if sources.is_empty() {
            continue;
        }
        for i in 0..out.numel() {
            column.clear();
            column.extend(sources.iter().map(|t| t.data()[i]));
            column.sort_by(f32::total_cmp); // NaN sorts last instead of panicking
            let n = column.len();
            let v = if trim <= 0.0 {
                // median
                if n % 2 == 1 {
                    column[n / 2]
                } else {
                    0.5 * (column[n / 2 - 1] + column[n / 2])
                }
            } else {
                let cut = (((n as f32) * trim).floor() as usize).min((n - 1) / 2);
                let kept = &column[cut..n - cut];
                // fsa::allow(FSA004, blessed kernel: column order is fixed by sort above, so the reduce is deterministic)
                kept.iter().sum::<f32>() / kept.len() as f32
            };
            out.data_mut()[i] = v;
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_tensor::Tensor;

    fn params(v: &[f32]) -> ParamMap {
        let mut p = ParamMap::new();
        p.insert("w", Tensor::from_vec(vec![v.len()], v.to_vec()));
        p
    }

    fn update(v: &[f32], n: u64, staleness: u64) -> ReceivedUpdate {
        ReceivedUpdate {
            client: 1,
            params: params(v),
            staleness,
            n_samples: n,
            n_steps: 4,
        }
    }

    #[test]
    fn staleness_weight_decays() {
        assert_eq!(staleness_weight(0, 0.5), 1.0);
        assert!(staleness_weight(3, 0.5) < staleness_weight(1, 0.5));
        assert_eq!(staleness_weight(10, 0.0), 1.0);
    }

    #[test]
    fn fedavg_weighted_mean() {
        let mut agg = FedAvg::new(0.0);
        let global = params(&[0.0]);
        let ups = vec![update(&[1.0], 1, 0), update(&[4.0], 3, 0)];
        let next = agg.aggregate(&global, &ups);
        // (1*1 + 3*4)/4 = 3.25
        assert!((next.get("w").unwrap().data()[0] - 3.25).abs() < 1e-6);
    }

    #[test]
    fn fedavg_empty_is_identity() {
        let mut agg = FedAvg::new(0.5);
        let global = params(&[7.0]);
        assert_eq!(agg.aggregate(&global, &[]), global);
    }

    #[test]
    fn fedavg_discounts_stale_updates() {
        let mut agg = FedAvg::new(1.0);
        let global = params(&[0.0]);
        let ups = vec![update(&[1.0], 1, 0), update(&[-1.0], 1, 9)];
        let next = agg.aggregate(&global, &ups);
        // weights 1 and 0.1 -> (1 - 0.1)/1.1 ~ 0.818
        assert!(next.get("w").unwrap().data()[0] > 0.5);
    }

    #[test]
    fn fednova_normalizes_step_counts() {
        let mut agg = FedNova {
            staleness_discount: 0.0,
        };
        let global = params(&[0.0]);
        // client A: 2 steps of +1 each (delta 2); client B: 8 steps of +1 each (delta 8)
        let mut a = update(&[2.0], 1, 0);
        a.n_steps = 2;
        let mut b = update(&[8.0], 1, 0);
        b.n_steps = 8;
        let next = agg.aggregate(&global, &[a, b]);
        // normalized deltas are both +1/step; tau_eff = 5 -> delta = 5
        assert!((next.get("w").unwrap().data()[0] - 5.0).abs() < 1e-5);
    }

    #[test]
    fn krum_rejects_outlier() {
        let mut agg = Krum::new(1);
        let global = params(&[0.0]);
        let ups = vec![
            update(&[1.0], 1, 0),
            update(&[1.1], 1, 0),
            update(&[0.9], 1, 0),
            update(&[100.0], 1, 0), // Byzantine
        ];
        let next = agg.aggregate(&global, &ups);
        let v = next.get("w").unwrap().data()[0];
        assert!((0.8..=1.2).contains(&v), "krum picked outlier: {v}");
    }

    #[test]
    fn multi_krum_averages_selected() {
        let mut agg = Krum::multi(1, 3);
        let global = params(&[0.0]);
        let ups = vec![
            update(&[1.0], 1, 0),
            update(&[2.0], 1, 0),
            update(&[3.0], 1, 0),
            update(&[1000.0], 1, 0),
        ];
        let next = agg.aggregate(&global, &ups);
        let v = next.get("w").unwrap().data()[0];
        assert!((v - 2.0).abs() < 1e-5, "multi-krum mean: {v}");
    }

    #[test]
    fn norm_bounding_neutralizes_boosted_update() {
        let global = params(&[0.0, 0.0]);
        // benign updates move ~1.0; the attacker submits a 100x boosted delta
        let ups = vec![
            update(&[1.0, 0.0], 10, 0),
            update(&[0.9, 0.1], 10, 0),
            update(&[100.0, -100.0], 10, 0),
        ];
        let mut plain = FedAvg::new(0.0);
        let hijacked = plain.aggregate(&global, &ups);
        assert!(
            hijacked.get("w").unwrap().data()[0] > 10.0,
            "attack must work unbounded"
        );
        let mut defended = NormBounded::new(1.5, Box::new(FedAvg::new(0.0)));
        let next = defended.aggregate(&global, &ups);
        let w = next.get("w").unwrap();
        assert!(
            w.norm() < 2.0,
            "bounded aggregate stays in benign range: {:?}",
            w.data()
        );
        assert_eq!(defended.name(), "norm_bounded");
    }

    #[test]
    fn median_resists_half_minus_one_outliers() {
        let mut agg = CoordinateMedian;
        let global = params(&[0.0]);
        let ups = vec![
            update(&[1.0], 1, 0),
            update(&[1.2], 1, 0),
            update(&[0.8], 1, 0),
            update(&[99.0], 1, 0),
            update(&[-99.0], 1, 0),
        ];
        let next = agg.aggregate(&global, &ups);
        assert!((next.get("w").unwrap().data()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn trimmed_mean_drops_tails() {
        let mut agg = TrimmedMean { trim: 0.25 };
        let global = params(&[0.0]);
        let ups = vec![
            update(&[-100.0], 1, 0),
            update(&[1.0], 1, 0),
            update(&[2.0], 1, 0),
            update(&[100.0], 1, 0),
        ];
        let next = agg.aggregate(&global, &ups);
        assert!((next.get("w").unwrap().data()[0] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn krum_preserves_unshared_global_keys() {
        let mut agg = Krum::multi(0, 2);
        let mut global = params(&[0.0]);
        global.insert("extra", Tensor::from_vec(vec![1], vec![5.0]));
        let ups = vec![update(&[1.0], 1, 0), update(&[1.2], 1, 0)];
        let next = agg.aggregate(&global, &ups);
        assert_eq!(next.get("extra").unwrap().data(), &[5.0]);
        // single update: same contract
        let next = agg.aggregate(&global, &ups[..1]);
        assert_eq!(next.get("extra").unwrap().data(), &[5.0]);
        assert!((next.get("w").unwrap().data()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn krum_survives_byzantine_nan() {
        let mut agg = Krum::new(1);
        let global = params(&[0.0]);
        let mut evil = update(&[f32::NAN], 1, 0);
        evil.client = 9;
        let ups = vec![
            update(&[1.0], 1, 0),
            update(&[1.1], 1, 0),
            update(&[0.9], 1, 0),
            evil,
        ];
        let next = agg.aggregate(&global, &ups);
        assert!(next.is_finite(), "NaN update must be rejected, not adopted");
    }

    #[test]
    #[should_panic(expected = "trim fraction")]
    fn trimmed_mean_rejects_invalid_trim() {
        let mut agg = TrimmedMean { trim: 0.5 };
        let global = params(&[0.0]);
        let _ = agg.aggregate(&global, &[update(&[1.0], 1, 0), update(&[2.0], 1, 0)]);
    }

    #[test]
    fn aggregators_only_touch_shared_keys() {
        let mut agg = FedAvg::new(0.0);
        let mut global = params(&[0.0]);
        global.insert("extra", Tensor::from_vec(vec![1], vec![5.0]));
        let ups = vec![update(&[2.0], 1, 0)]; // update lacks "extra"
        let next = agg.aggregate(&global, &ups);
        assert_eq!(next.get("extra").unwrap().data(), &[5.0]);
        assert!((next.get("w").unwrap().data()[0] - 2.0).abs() < 1e-6);
    }
}
