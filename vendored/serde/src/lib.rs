//! Minimal in-repo stand-in for the `serde` crate.
//!
//! Works through a concrete [`Value`] tree instead of upstream serde's
//! visitor machinery: [`Serialize`] has a single `to_value` method,
//! [`Deserialize`] a single `from_value`, and the derives (re-exported from
//! the in-repo `serde_derive`) map structs with named fields onto
//! [`Value::Object`]s in field declaration order. `serde_json` renders and
//! parses the tree.

// Lets derive-generated `serde::` paths resolve inside this crate's own tests.
extern crate self as serde;

use std::fmt;

/// Re-export of the derive macros so `use serde::{Serialize, Deserialize}`
/// brings in both the traits and the derives, as with upstream serde.
pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree (the stand-in for serde's data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate to round-trip `u64 > i64::MAX`).
    UInt(u64),
    /// Single-precision float, formatted with its own shortest representation.
    F32(f32),
    /// Double-precision float.
    F64(f64),
    /// String.
    String(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key–value map (field declaration order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an [`Value::Object`]; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64`, widening integers and `f32`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::F32(f) => Some(f64::from(*f)),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Short variant name for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::F32(_) | Value::F64(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a serialized value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization failure: the value tree does not match the target type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// A "expected X, got Y" mismatch error.
    pub fn mismatch(expected: &str, got: &Value) -> Self {
        DeError(format!("expected {expected}, got {}", got.kind()))
    }

    /// Prefixes the error with a field path segment.
    pub fn in_field(self, ty: &str, field: &str) -> Self {
        DeError(format!("{ty}.{field}: {}", self.0))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Builds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

impl_serialize_signed!(i8, i16, i32, i64, isize);
impl_serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F32(*self)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_serialize_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}

impl_serialize_tuple!(A: 0);
impl_serialize_tuple!(A: 0, B: 1);
impl_serialize_tuple!(A: 0, B: 1, C: 2);
impl_serialize_tuple!(A: 0, B: 1, C: 2, D: 3);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::mismatch("bool", other)),
        }
    }
}

macro_rules! impl_deserialize_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| DeError(format!("{u} overflows i64")))?,
                    other => return Err(DeError::mismatch("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| {
                    DeError(format!("{wide} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_deserialize_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: u64 = v
                    .as_u64()
                    .ok_or_else(|| DeError::mismatch("non-negative integer", v))?;
                <$t>::try_from(wide).map_err(|_| {
                    DeError(format!("{wide} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_deserialize_signed!(i8, i16, i32, i64, isize);
impl_deserialize_unsigned!(u8, u16, u32, u64, usize);

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::mismatch("number", v))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::mismatch("string", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::mismatch("array", v))?;
        items.iter().map(T::from_value).collect()
    }
}

macro_rules! impl_deserialize_tuple {
    ($len:literal, $($name:ident : $idx:tt),+) => {
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::mismatch("array", v))?;
                if items.len() != $len {
                    return Err(DeError(format!(
                        "expected array of {}, got {} elements", $len, items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    };
}

impl_deserialize_tuple!(1, A: 0);
impl_deserialize_tuple!(2, A: 0, B: 1);
impl_deserialize_tuple!(3, A: 0, B: 1, C: 2);
impl_deserialize_tuple!(4, A: 0, B: 1, C: 2, D: 3);

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(7u32.to_value(), Value::UInt(7));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::String("hi".into()));
        assert_eq!(None::<f32>.to_value(), Value::Null);
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1u64, 2.5f64)];
        assert_eq!(
            v.to_value(),
            Value::Array(vec![Value::Array(vec![Value::UInt(1), Value::F64(2.5)])])
        );
    }

    #[test]
    fn primitives_deserialize_with_widening() {
        assert_eq!(u32::from_value(&Value::UInt(7)).unwrap(), 7);
        assert_eq!(u32::from_value(&Value::Int(7)).unwrap(), 7);
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert_eq!(f64::from_value(&Value::Int(-2)).unwrap(), -2.0);
        assert_eq!(f32::from_value(&Value::F64(1.5)).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&Value::String("x".into())).unwrap(),
            "x"
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Vec::<u8>::from_value(&Value::Array(vec![Value::UInt(1), Value::UInt(2)])).unwrap(),
            vec![1, 2]
        );
        assert!(bool::from_value(&Value::UInt(1)).is_err());
    }

    #[test]
    fn value_accessors() {
        let obj = Value::Object(vec![("k".into(), Value::UInt(3))]);
        assert_eq!(obj.get("k"), Some(&Value::UInt(3)));
        assert_eq!(obj.get("missing"), None);
        assert_eq!(Value::F32(2.0).as_f64(), Some(2.0));
        assert_eq!(Value::Int(-1).as_u64(), None);
    }

    #[test]
    fn derive_deserialize_roundtrips() {
        #[derive(Serialize, Deserialize, Debug, PartialEq)]
        struct Point {
            x: u32,
            label: String,
            scale: Option<f64>,
        }
        let p = Point {
            x: 7,
            label: "a".into(),
            scale: None,
        };
        let back = Point::from_value(&p.to_value()).unwrap();
        assert_eq!(back, p);
        // a missing non-optional field is a typed error with a field path
        let partial = Value::Object(vec![("x".into(), Value::UInt(1))]);
        let err = Point::from_value(&partial).unwrap_err();
        assert!(err.0.contains("Point.label"), "{err}");
    }

    #[test]
    fn derive_builds_object_in_field_order() {
        #[derive(Serialize)]
        struct Point {
            x: u32,
            label: String,
        }
        let p = Point { x: 7, label: "a".into() };
        assert_eq!(
            p.to_value(),
            Value::Object(vec![
                ("x".into(), Value::UInt(7)),
                ("label".into(), Value::String("a".into())),
            ])
        );
    }
}
