//! Result emission: aligned text tables on stdout + JSON under `results/`.

use serde::Serialize;
use std::fs;
use std::path::Path;

/// Writes `value` as pretty JSON to `results/<name>.json` (creating the
/// directory when needed) and returns the path written.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<String> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serializable result");
    fs::write(&path, json)?;
    Ok(path.display().to_string())
}

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// A sparse ASCII histogram for distribution figures (Figs. 10, 11).
pub fn ascii_histogram(counts: &[(String, usize)], max_width: usize) -> String {
    let max = counts.iter().map(|(_, c)| *c).max().unwrap_or(1).max(1);
    let label_w = counts.iter().map(|(l, _)| l.len()).max().unwrap_or(4);
    let mut out = String::new();
    for (label, c) in counts {
        let bar = "#".repeat((c * max_width).div_ceil(max).min(max_width));
        out.push_str(&format!("{label:>label_w$} | {bar} {c}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        // the value column starts at the same offset in all rows
        let col = lines[3].find('2').unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
    }

    #[test]
    fn histogram_scales_to_width() {
        let h = ascii_histogram(&[("0".into(), 10), ("1".into(), 5), ("2".into(), 0)], 20);
        let lines: Vec<&str> = h.lines().collect();
        assert!(lines[0].matches('#').count() == 20);
        assert!(lines[1].matches('#').count() == 10);
        assert!(lines[2].matches('#').count() == 0);
    }

    #[test]
    fn write_json_roundtrips() {
        #[derive(Serialize)]
        struct S {
            x: u32,
        }
        let path = write_json("unit_test_tmp", &S { x: 7 }).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"x\": 7"));
        std::fs::remove_file(path).unwrap();
    }
}
