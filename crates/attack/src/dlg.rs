//! Gradient inversion (DLG / iDLG).
//!
//! "Deep Leakage from Gradients": an honest-but-curious server (or
//! eavesdropper) reconstructs a client's training example from the gradient
//! it shared. For a softmax-linear model trained on a single example the
//! leakage is *exact*:
//!
//! * `grad_b[c] = p_c - 1[y = c]` — so the true label is the unique class
//!   with a negative bias gradient (iDLG's label-inference trick);
//! * `grad_W[c, :] = (p_c - 1[y = c]) * x` — so `x = grad_W[c, :] /
//!   grad_b[c]` for any class with non-vanishing bias gradient.
//!
//! With DP noise injected into the shared update (Figure 13's defence) the
//! divisions amplify the perturbation and the reconstruction collapses.

use fs_tensor::{ParamMap, Tensor};

/// Result of a gradient-inversion attempt.
#[derive(Clone, Debug)]
pub struct Reconstruction {
    /// Reconstructed input features.
    pub x: Vec<f32>,
    /// Inferred label (iDLG).
    pub label: usize,
    /// Magnitude of the bias gradient used — a confidence proxy.
    pub confidence: f32,
}

/// Inverts the gradients of a softmax-linear model (`<prefix>.weight`
/// `[C, D]`, `<prefix>.bias` `[C]`) computed on a **single** example.
///
/// Returns `None` when the gradients are degenerate (all bias gradients
/// vanish — e.g. fully noise-drowned).
pub fn invert_linear_gradients(grads: &ParamMap, prefix: &str) -> Option<Reconstruction> {
    let gw = grads.get(&format!("{prefix}.weight"))?;
    let gb = grads.get(&format!("{prefix}.bias"))?;
    assert_eq!(gw.shape().len(), 2, "weight gradient must be [C, D]");
    let (c, d) = (gw.shape()[0], gw.shape()[1]);
    assert_eq!(gb.numel(), c, "bias gradient must be [C]");
    // label: the class with the most negative bias gradient (p_y - 1 < 0)
    let mut label = 0usize;
    for (i, &g) in gb.data().iter().enumerate() {
        if g < gb.data()[label] {
            label = i;
        }
    }
    if gb.data()[label] >= 0.0 {
        return None; // no negative coordinate: not a clean single-example gradient
    }
    // reconstruct from the row with the largest |grad_b| for stability
    let mut best = 0usize;
    for (i, &g) in gb.data().iter().enumerate() {
        if g.abs() > gb.data()[best].abs() {
            best = i;
        }
    }
    let denom = gb.data()[best];
    if denom.abs() < 1e-12 {
        return None;
    }
    let x: Vec<f32> = (0..d).map(|j| gw.at(best, j) / denom).collect();
    Some(Reconstruction {
        x,
        label,
        confidence: denom.abs(),
    })
}

/// Mean squared error between a reconstruction and the true input — the
/// metric Figure 13 visualizes (clean clients: near-zero; noisy clients:
/// large).
pub fn reconstruction_mse(rec: &Reconstruction, truth: &Tensor) -> f32 {
    assert_eq!(rec.x.len(), truth.numel(), "dimension mismatch");
    rec.x
        .iter()
        .zip(truth.data())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f32>()
        / rec.x.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_privacy::dp::{gaussian_mechanism, DpConfig};
    use fs_tensor::loss::Target;
    use fs_tensor::model::{logistic_regression, Model};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn single_example_grads(seed: u64) -> (ParamMap, Tensor, usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = 16;
        let mut m = logistic_regression(d, 4, &mut rng);
        let x: Vec<f32> = (0..d).map(|_| rng.gen::<f32>()).collect();
        let truth = Tensor::from_vec(vec![1, d], x);
        let label = 2usize;
        let (_, grads) = m.loss_grad(&truth, &Target::Classes(vec![label]));
        (grads, truth.reshape(&[d]), label)
    }

    #[test]
    fn exact_reconstruction_without_noise() {
        let (grads, truth, label) = single_example_grads(1);
        let rec = invert_linear_gradients(&grads, "fc").expect("invertible");
        assert_eq!(rec.label, label, "iDLG label inference");
        let mse = reconstruction_mse(&rec, &truth);
        assert!(mse < 1e-6, "clean gradients must invert exactly, mse {mse}");
    }

    #[test]
    fn dp_noise_defeats_reconstruction() {
        let (mut grads, truth, _) = single_example_grads(2);
        let mut rng = StdRng::seed_from_u64(9);
        gaussian_mechanism(
            &mut grads,
            &DpConfig {
                clip_norm: 1.0,
                sigma: 0.3,
            },
            &mut rng,
        );
        // total inversion failure also counts as a successful defence
        if let Some(rec) = invert_linear_gradients(&grads, "fc") {
            let mse = reconstruction_mse(&rec, &truth);
            assert!(
                mse > 0.05,
                "noise should destroy the reconstruction, mse {mse}"
            );
        }
    }

    #[test]
    fn missing_keys_return_none() {
        let grads = ParamMap::new();
        assert!(invert_linear_gradients(&grads, "fc").is_none());
    }

    #[test]
    fn degenerate_all_positive_bias_grad_returns_none() {
        let mut grads = ParamMap::new();
        grads.insert("fc.weight", Tensor::ones(&[2, 3]));
        grads.insert("fc.bias", Tensor::from_vec(vec![2], vec![0.5, 0.2]));
        assert!(invert_linear_gradients(&grads, "fc").is_none());
    }
}
