//! **Table 4** (Appendix G) — accuracy on CIFAR-like data under IID vs
//! non-IID (Dirichlet α) splits for FedAvg, FedBN, and Ditto.
//!
//! Paper's shape: FedAvg is competitive under IID but *degrades* as α shrinks
//! (more label skew); FedBN and Ditto *improve* as skew rises, overtaking
//! FedAvg on every non-IID split.
//!
//! ```text
//! cargo run -p fs-bench --release --bin exp_table4
//! ```

use fs_bench::output::{render_table, write_json};
use fs_core::config::FlConfig;
use fs_core::course::CourseBuilder;
use fs_core::trainer::{share_all, TrainConfig};
use fs_data::synth::{cifar_like, ImageConfig};
use fs_data::FedDataset;
use fs_personalize::fedbn::fedbn_share_filter;
use fs_personalize::DittoTrainer;
use fs_tensor::model::{mlp_bn, Metrics, Model};
use fs_tensor::optim::SgdConfig;
use rand::rngs::StdRng;
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    method: String,
    split: String,
    accuracy: f32,
}

fn dataset(alpha: Option<f64>) -> FedDataset {
    cifar_like(
        &ImageConfig {
            num_clients: 30,
            num_classes: 10,
            img: 8,
            per_client: 40,
            noise: 1.1,
            size_skew: 0.0,
            seed: 23,
        },
        alpha,
    )
    .flattened()
}

fn cfg() -> FlConfig {
    FlConfig {
        total_rounds: 40,
        concurrency: 30,
        local_steps: 6,
        batch_size: 16,
        sgd: SgdConfig::with_lr(0.15),
        eval_every: 10,
        seed: 23,
        ..Default::default()
    }
}

/// Size-weighted mean of client-side final test accuracies.
fn weighted_accuracy(runner: &fs_core::StandaloneRunner) -> f32 {
    let reports: Vec<Metrics> = runner
        .server
        .state
        .client_reports
        .values()
        .copied()
        .collect();
    Metrics::weighted_merge(&reports).accuracy
}

fn run_method(method: &str, data: &FedDataset) -> f32 {
    let dim = data.input_dim();
    let classes = data.num_classes;
    let factory =
        move |rng: &mut StdRng| -> Box<dyn Model> { Box::new(mlp_bn(&[dim, 48, classes], rng)) };
    let mut builder = CourseBuilder::new(data.clone(), Box::new(factory), cfg());
    builder = match method {
        "FedAvg" => builder,
        "FedBN" => builder.share_filter(fedbn_share_filter()),
        "Ditto" => builder.trainer_factory(Box::new(|i, model, split, cfg| {
            Box::new(DittoTrainer::new(
                model,
                split,
                TrainConfig {
                    local_steps: cfg.local_steps,
                    batch_size: cfg.batch_size,
                    sgd: cfg.sgd,
                },
                0.5,
                share_all(),
                cfg.seed ^ (i as u64 + 1),
            ))
        })),
        other => panic!("unknown method {other}"),
    };
    let mut runner = builder.build();
    runner.run();
    weighted_accuracy(&runner)
}

fn main() {
    let splits: Vec<(String, Option<f64>)> = vec![
        ("IID".into(), None),
        ("alpha=1.0".into(), Some(1.0)),
        ("alpha=0.5".into(), Some(0.5)),
        ("alpha=0.2".into(), Some(0.2)),
    ];
    let methods = ["FedAvg", "FedBN", "Ditto"];
    let mut cells = Vec::new();
    for (split_name, alpha) in &splits {
        let data = dataset(*alpha);
        for method in methods {
            let acc = run_method(method, &data);
            eprintln!("  {method} / {split_name}: {acc:.4}");
            cells.push(Cell {
                method: method.into(),
                split: split_name.clone(),
                accuracy: acc,
            });
        }
    }
    println!("\nTable 4 — accuracy on CIFAR-like, IID vs Dirichlet splits\n");
    let rows: Vec<Vec<String>> = methods
        .iter()
        .map(|m| {
            let mut row = vec![m.to_string()];
            for (split_name, _) in &splits {
                let c = cells
                    .iter()
                    .find(|c| &c.method == m && &c.split == split_name)
                    .expect("cell");
                row.push(format!("{:.4}", c.accuracy));
            }
            row
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["method", "IID", "alpha=1.0", "alpha=0.5", "alpha=0.2"],
            &rows
        )
    );
    let path = write_json("table4", &cells).expect("write results");
    println!("wrote {path}");
}
