//! pFedMe: personalization with Moreau envelopes.
//!
//! Each outer step solves (approximately, with `k_inner` proximal SGD steps)
//! the personalized problem `theta* = argmin f_i(theta) + lambda/2 ||theta -
//! w||^2` around the local copy `w` of the global model, then moves the local
//! copy toward the personalized solution: `w <- w - eta * lambda * (w -
//! theta*)`. The client shares `w`; `theta*` is its personal model.

use fs_core::trainer::{LocalUpdate, ShareFilter, TrainConfig, Trainer};
use fs_data::ClientSplit;
use fs_tensor::model::{Metrics, Model};
use fs_tensor::optim::{Sgd, SgdConfig};
use fs_tensor::ParamMap;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The pFedMe trainer.
pub struct PFedMeTrainer {
    /// Personal model `theta` (also used to evaluate).
    personal: Box<dyn Model>,
    /// Local copy of the global iterate `w`.
    w: ParamMap,
    data: ClientSplit,
    cfg: TrainConfig,
    /// Moreau-envelope regularization strength.
    pub lambda: f32,
    /// Outer learning rate on `w`.
    pub outer_lr: f32,
    /// Inner proximal SGD steps per outer step.
    pub k_inner: usize,
    share: ShareFilter,
    inner_opt: Sgd,
    rng: StdRng,
}

impl PFedMeTrainer {
    /// Creates a pFedMe trainer.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        model: Box<dyn Model>,
        data: ClientSplit,
        cfg: TrainConfig,
        lambda: f32,
        outer_lr: f32,
        k_inner: usize,
        share: ShareFilter,
        seed: u64,
    ) -> Self {
        let w = model.get_params();
        let inner_cfg = SgdConfig {
            prox_mu: lambda,
            ..cfg.sgd
        };
        Self {
            personal: model,
            w,
            data,
            cfg,
            lambda,
            outer_lr,
            k_inner: k_inner.max(1),
            share,
            inner_opt: Sgd::new(inner_cfg),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The personal model parameters `theta`.
    pub fn personal_params(&self) -> ParamMap {
        self.personal.get_params()
    }
}

impl Trainer for PFedMeTrainer {
    fn incorporate(&mut self, global: &ParamMap) {
        // only the local iterate absorbs the global model; the personal model
        // survives (it is re-derived from `w` by the inner solve during
        // training, and must persist for end-of-course evaluation)
        self.w.merge_from(global);
    }

    fn local_train(&mut self, global: &ParamMap, _round: u64) -> LocalUpdate {
        self.incorporate(global);
        // the personal model warm-starts each round from the local iterate
        let mut p = self.personal.get_params();
        p.merge_from(&self.w);
        self.personal.set_params(&p);
        let mut examples = 0usize;
        for _ in 0..self.cfg.local_steps {
            // inner: approximately solve argmin f(theta) + lambda/2 ||theta-w||^2
            let anchor = self.w.clone();
            for _ in 0..self.k_inner {
                let b = self
                    .data
                    .train
                    .sample_batch(self.cfg.batch_size, &mut self.rng);
                if b.is_empty() {
                    break;
                }
                let (_, grads) = self.personal.loss_grad(&b.x, &b.y);
                let mut theta = self.personal.get_params();
                self.inner_opt.step(&mut theta, &grads, Some(&anchor));
                self.personal.set_params(&theta);
                examples += b.len();
            }
            // outer: w <- w - eta * lambda * (w - theta)
            let theta = self.personal.get_params();
            let mut diff = self.w.clone();
            diff.add_scaled(-1.0, &theta.filter(|k| diff.contains(k)));
            self.w.add_scaled(-self.outer_lr * self.lambda, &diff);
        }
        let share = self.share.clone();
        LocalUpdate {
            params: self.w.filter(|k| share(k)),
            n_samples: self.data.train.len() as u64,
            n_steps: (self.cfg.local_steps * self.k_inner) as u64,
            examples_processed: examples,
        }
    }

    fn evaluate_val(&mut self) -> Metrics {
        if self.data.val.is_empty() {
            return Metrics::default();
        }
        self.personal.evaluate(&self.data.val.x, &self.data.val.y)
    }

    fn evaluate_test(&mut self) -> Metrics {
        if self.data.test.is_empty() {
            return Metrics::default();
        }
        self.personal.evaluate(&self.data.test.x, &self.data.test.y)
    }

    fn num_train_samples(&self) -> usize {
        self.data.train.len()
    }

    fn set_sgd_config(&mut self, cfg: SgdConfig) {
        self.cfg.sgd = cfg;
        self.inner_opt.set_config(SgdConfig {
            prox_mu: self.lambda,
            ..cfg
        });
    }

    fn try_clone(&self) -> Option<Box<dyn Trainer>> {
        Some(Box::new(Self {
            personal: self.personal.clone_model(),
            w: self.w.clone(),
            data: self.data.clone(),
            cfg: self.cfg.clone(),
            lambda: self.lambda,
            outer_lr: self.outer_lr,
            k_inner: self.k_inner,
            share: self.share.clone(),
            inner_opt: self.inner_opt.clone(),
            rng: self.rng.clone(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_core::trainer::share_all;
    use fs_data::synth::{twitter_like, TwitterConfig};
    use fs_tensor::model::logistic_regression;

    fn setup(lambda: f32) -> PFedMeTrainer {
        let d = twitter_like(&TwitterConfig {
            num_clients: 1,
            per_client: 30,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(0);
        let model = logistic_regression(d.input_dim(), 2, &mut rng);
        PFedMeTrainer::new(
            Box::new(model),
            d.clients[0].clone(),
            TrainConfig {
                local_steps: 3,
                batch_size: 4,
                sgd: SgdConfig::with_lr(0.3),
            },
            lambda,
            1.0,
            5,
            share_all(),
            7,
        )
    }

    #[test]
    fn outer_iterate_moves_toward_personal() {
        let mut t = setup(2.0);
        let global = t.w.clone();
        let up = t.local_train(&global, 0);
        // w moved away from the received global
        assert!(up.params.sq_dist(&global) > 0.0);
        // personal and w remain close-ish under the proximal pull
        let theta = t.personal_params();
        assert!(theta.sq_dist(&t.w) < theta.sq_dist(&global) + 1.0);
    }

    #[test]
    fn step_accounting() {
        let mut t = setup(2.0);
        let global = t.w.clone();
        let up = t.local_train(&global, 0);
        assert_eq!(up.n_steps, 15); // 3 outer x 5 inner
        assert!(up.examples_processed > 0);
    }

    #[test]
    fn personal_model_fits_local_data() {
        let mut t = setup(0.5);
        let global = t.w.clone();
        let before = t.evaluate_test();
        for r in 0..20 {
            t.local_train(&global, r);
        }
        let after = t.evaluate_test();
        assert!(
            after.loss < before.loss,
            "personalization failed: {} -> {}",
            before.loss,
            after.loss
        );
    }
}
