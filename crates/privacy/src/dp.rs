//! Differential privacy for FL (§4.1, Figure 6).
//!
//! The paper exposes DP as a *behavior plug-in*: clients clip and perturb the
//! messages they are about to share. This module provides the Gaussian and
//! Laplace mechanisms over [`ParamMap`]s, the calibration formula
//! `sigma = sqrt(2 ln(1.25/delta)) * sensitivity / epsilon`, and a simple
//! composition accountant. As the paper notes, a formal end-to-end guarantee
//! still requires the user to fix the noise distribution and budget
//! allocation for their own data and task.

use fs_tensor::ParamMap;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Configuration of the client-side DP perturbation.
#[derive(Clone, Copy, Debug)]
pub struct DpConfig {
    /// L2 clipping bound applied before noising (the sensitivity).
    pub clip_norm: f32,
    /// Gaussian noise standard deviation (absolute, post-clipping).
    pub sigma: f32,
}

impl DpConfig {
    /// Calibrates Gaussian noise for `(epsilon, delta)`-DP with the given
    /// L2 sensitivity: `sigma = sqrt(2 ln(1.25/delta)) * sens / epsilon`.
    pub fn gaussian(epsilon: f64, delta: f64, clip_norm: f32) -> Self {
        assert!(epsilon > 0.0 && (0.0..1.0).contains(&delta) && delta > 0.0);
        let sigma = ((2.0 * (1.25 / delta).ln()).sqrt() * clip_norm as f64 / epsilon) as f32;
        Self { clip_norm, sigma }
    }
}

/// Clips `params` to `clip_norm` and adds i.i.d. Gaussian noise `N(0, sigma²)`
/// to every coordinate. Returns the scaling factor from clipping.
pub fn gaussian_mechanism(params: &mut ParamMap, cfg: &DpConfig, rng: &mut impl Rng) -> f32 {
    let scale = params.clip_norm(cfg.clip_norm);
    if cfg.sigma > 0.0 {
        let noise = Normal::new(0.0, cfg.sigma as f64).expect("valid sigma");
        for (_, t) in params.iter_mut() {
            for v in t.data_mut() {
                *v += noise.sample(rng) as f32;
            }
        }
    }
    scale
}

/// Clips and adds Laplace noise with scale `b = sensitivity / epsilon` for
/// pure `epsilon`-DP.
pub fn laplace_mechanism(
    params: &mut ParamMap,
    clip_norm: f32,
    epsilon: f64,
    rng: &mut impl Rng,
) -> f32 {
    assert!(epsilon > 0.0, "epsilon must be positive");
    let scale_factor = params.clip_norm(clip_norm);
    let b = clip_norm as f64 / epsilon;
    for (_, t) in params.iter_mut() {
        for v in t.data_mut() {
            // inverse-CDF sampling of Laplace(0, b)
            let u: f64 = rng.gen::<f64>() - 0.5;
            let noise = -b * u.signum() * (1.0 - 2.0 * u.abs()).ln();
            *v += noise as f32;
        }
    }
    scale_factor
}

/// Tracks cumulative privacy loss over repeated mechanism invocations.
#[derive(Clone, Debug, Default)]
pub struct PrivacyAccountant {
    events: Vec<(f64, f64)>, // (epsilon, delta)
}

impl PrivacyAccountant {
    /// Creates an empty accountant.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one `(epsilon, delta)` mechanism invocation.
    pub fn spend(&mut self, epsilon: f64, delta: f64) {
        assert!(epsilon >= 0.0 && delta >= 0.0);
        self.events.push((epsilon, delta));
    }

    /// Number of recorded invocations.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing has been spent.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Basic sequential composition: epsilons and deltas add.
    pub fn basic_composition(&self) -> (f64, f64) {
        let eps = self.events.iter().map(|e| e.0).sum();
        let delta = self.events.iter().map(|e| e.1).sum();
        (eps, delta)
    }

    /// Advanced composition (Dwork–Rothblum–Vadhan) for `k` homogeneous
    /// invocations at the slack `delta_prime`:
    /// `eps_total = eps * sqrt(2 k ln(1/delta'))+ k eps (e^eps - 1)`.
    pub fn advanced_composition(&self, delta_prime: f64) -> Option<(f64, f64)> {
        if self.events.is_empty() {
            return Some((0.0, 0.0));
        }
        let (e0, d0) = self.events[0];
        if !self
            .events
            .iter()
            .all(|&(e, d)| (e - e0).abs() < 1e-12 && (d - d0).abs() < 1e-12)
        {
            return None; // heterogeneous events: use basic composition
        }
        let k = self.events.len() as f64;
        let eps = e0 * (2.0 * k * (1.0 / delta_prime).ln()).sqrt() + k * e0 * (e0.exp() - 1.0);
        let delta = k * d0 + delta_prime;
        Some((eps, delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params(v: &[f32]) -> ParamMap {
        let mut p = ParamMap::new();
        p.insert("w", Tensor::from_vec(vec![v.len()], v.to_vec()));
        p
    }

    #[test]
    fn gaussian_clips_then_noises() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = params(&[30.0, 40.0]); // norm 50
        let cfg = DpConfig {
            clip_norm: 1.0,
            sigma: 0.0,
        };
        let scale = gaussian_mechanism(&mut p, &cfg, &mut rng);
        assert!((scale - 0.02).abs() < 1e-6);
        assert!((p.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn gaussian_noise_has_expected_scale() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = params(&vec![0.0; 20_000]);
        let cfg = DpConfig {
            clip_norm: 1.0,
            sigma: 0.5,
        };
        gaussian_mechanism(&mut p, &cfg, &mut rng);
        let t = p.get("w").unwrap();
        let std = (t.data().iter().map(|v| v * v).sum::<f32>() / t.numel() as f32).sqrt();
        assert!((std - 0.5).abs() < 0.02, "std {std}");
    }

    #[test]
    fn calibration_shrinks_with_epsilon() {
        let strict = DpConfig::gaussian(0.5, 1e-5, 1.0);
        let loose = DpConfig::gaussian(5.0, 1e-5, 1.0);
        assert!(strict.sigma > loose.sigma);
        // spot-check the formula at eps=1
        let c = DpConfig::gaussian(1.0, 1e-5, 1.0);
        let expect = (2.0f64 * (1.25e5f64).ln()).sqrt();
        assert!((c.sigma as f64 - expect).abs() < 1e-3);
    }

    #[test]
    fn laplace_noise_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = params(&vec![0.0; 20_000]);
        laplace_mechanism(&mut p, 1.0, 2.0, &mut rng);
        let t = p.get("w").unwrap();
        // Laplace(b) has std b*sqrt(2); b = 1/2
        let std = (t.data().iter().map(|v| v * v).sum::<f32>() / t.numel() as f32).sqrt();
        assert!((std - 0.5 * 2.0f32.sqrt()).abs() < 0.05, "std {std}");
    }

    #[test]
    fn accountant_compositions() {
        let mut acc = PrivacyAccountant::new();
        for _ in 0..10 {
            acc.spend(0.1, 1e-6);
        }
        let (eps, delta) = acc.basic_composition();
        assert!((eps - 1.0).abs() < 1e-9);
        assert!((delta - 1e-5).abs() < 1e-12);
        let (adv_eps, adv_delta) = acc.advanced_composition(1e-6).unwrap();
        assert!(adv_eps > 0.0);
        assert!(adv_delta > 1e-5);
        // heterogeneous events fall back to None
        acc.spend(0.7, 0.0);
        assert!(acc.advanced_composition(1e-6).is_none());
    }

    #[test]
    fn advanced_beats_basic_for_many_small_epsilons() {
        let mut acc = PrivacyAccountant::new();
        for _ in 0..1000 {
            acc.spend(0.01, 0.0);
        }
        let (basic, _) = acc.basic_composition();
        let (adv, _) = acc.advanced_composition(1e-6).unwrap();
        assert!(adv < basic, "advanced {adv} should beat basic {basic}");
    }
}
