//! End-to-end tests for the `fs-monitor` subsystem attached to a full
//! standalone course: byte-counter reconciliation with the sim-charged
//! totals under each compressor, round records mirroring the server's
//! evaluation history, span validity, and a zero-cost null path.

use fedscope::core::config::{CodecSpec, CompressionConfig, FlConfig};
use fedscope::core::course::CourseBuilder;
use fedscope::core::runner::CourseReport;
use fedscope::data::synth::{twitter_like, TwitterConfig};
use fedscope::monitor::{counters, MonitorHandle, RecordingMonitor};
use fedscope::tensor::model::logistic_regression;
use fedscope::tensor::optim::SgdConfig;
use std::sync::{Arc, Mutex, PoisonError};

fn run_monitored(compression: CompressionConfig) -> (CourseReport, RecordingMonitor) {
    // same setup as the compression e2e suite: separable topics, a model big
    // enough that framing overhead is noise next to the parameter payloads
    let data = twitter_like(&TwitterConfig {
        num_clients: 10,
        per_client: 20,
        vocab: 500,
        seed: 21,
        ..Default::default()
    });
    let dim = data.input_dim();
    let cfg = FlConfig {
        total_rounds: 12,
        concurrency: 5,
        local_steps: 8,
        batch_size: 4,
        sgd: SgdConfig::with_lr(0.4),
        compression,
        seed: 9,
        ..Default::default()
    };
    let monitor = Arc::new(Mutex::new(RecordingMonitor::new()));
    let mut runner = CourseBuilder::new(
        data,
        Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
        cfg,
    )
    .build()
    .with_monitor(MonitorHandle::from_shared(monitor.clone()));
    let report = runner.run();
    drop(runner);
    let mon = Arc::try_unwrap(monitor)
        .map_err(|_| "runner kept a monitor handle")
        .unwrap()
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    (report, mon)
}

/// The reconciliation the ISSUE demands: the monitor's byte counters must
/// equal the sim-charged totals exactly, for the identity codec and for a
/// real compressor whose encoded sizes differ per message.
#[test]
fn byte_counters_reconcile_with_sim_charges_under_each_compressor() {
    let identity = CompressionConfig {
        upload: Some(CodecSpec::Identity),
        upload_delta: false,
        download: None,
    };
    let topk = CompressionConfig {
        upload: Some(CodecSpec::TopK { ratio: 0.1 }),
        upload_delta: false,
        download: None,
    };
    let mut uploaded = Vec::new();
    for compression in [identity, topk] {
        let (report, mon) = run_monitored(compression);
        assert_eq!(
            mon.counter(counters::UPLOADED_BYTES),
            report.uploaded_bytes,
            "uploaded bytes disagree under {compression:?}"
        );
        assert_eq!(
            mon.counter(counters::DOWNLOADED_BYTES),
            report.downloaded_bytes,
            "downloaded bytes disagree under {compression:?}"
        );
        uploaded.push(report.uploaded_bytes);
    }
    // sanity: the two compressors charge genuinely different uplink traffic,
    // so the equalities above are not vacuous
    assert!(
        uploaded[1] < uploaded[0] / 2,
        "top-k did not shrink the uplink: {uploaded:?}"
    );
}

#[test]
fn round_records_mirror_server_history_and_spans_validate() {
    let (report, mon) = run_monitored(CompressionConfig::default());

    // every evaluated round reached the monitor, in the same order with the
    // same metrics and timestamps
    assert_eq!(mon.rounds().len(), report.history.len());
    for (rec, eval) in mon.rounds().iter().zip(&report.history) {
        assert_eq!(rec.round, eval.round);
        assert_eq!(rec.time_secs, eval.time_secs);
        assert_eq!(rec.metrics(), eval.metrics);
    }
    assert_eq!(
        mon.best_round().map(|r| r.accuracy),
        report
            .history
            .iter()
            .map(|r| r.metrics.accuracy)
            .reduce(f32::max),
    );

    // spans are balanced and well-nested across the whole course
    assert_eq!(mon.open_spans(), 0);
    assert_eq!(mon.unbalanced_exits(), 0);
    mon.validate_nesting().unwrap();

    // dispatch/counter bookkeeping holds together
    assert_eq!(
        mon.counter(counters::UPDATES_RECEIVED),
        report.total_updates
    );
    assert_eq!(
        mon.counter(counters::UPDATES_DROPPED),
        report.dropped_updates
    );
    assert_eq!(
        mon.counter(counters::CRASHED_DELIVERIES),
        report.crashed_deliveries
    );
    assert!(mon.counter(counters::MESSAGES_SENT) > 0);
    assert!(
        mon.counter(counters::MESSAGES_DELIVERED) <= mon.counter(counters::MESSAGES_SENT),
        "cannot deliver more than was sent"
    );
    // the chrome trace built from this run must be loadable
    let trace = fedscope::monitor::trace::chrome_trace_json(&mon);
    fedscope::monitor::trace::validate_chrome_trace(&trace).unwrap();
}

/// A course with no monitor attached must behave identically to one with a
/// live monitor: observation cannot perturb the simulation.
#[test]
fn null_monitor_course_is_unperturbed() {
    let (observed, _) = run_monitored(CompressionConfig::default());

    let data = twitter_like(&TwitterConfig {
        num_clients: 10,
        per_client: 20,
        vocab: 500,
        seed: 21,
        ..Default::default()
    });
    let dim = data.input_dim();
    let cfg = FlConfig {
        total_rounds: 12,
        concurrency: 5,
        local_steps: 8,
        batch_size: 4,
        sgd: SgdConfig::with_lr(0.4),
        seed: 9,
        ..Default::default()
    };
    let mut runner = CourseBuilder::new(
        data,
        Box::new(move |rng| Box::new(logistic_regression(dim, 2, rng))),
        cfg,
    )
    .build();
    let unobserved = runner.run();

    assert_eq!(observed.final_time_secs, unobserved.final_time_secs);
    assert_eq!(observed.rounds, unobserved.rounds);
    assert_eq!(observed.uploaded_bytes, unobserved.uploaded_bytes);
    assert_eq!(observed.downloaded_bytes, unobserved.downloaded_bytes);
    assert_eq!(observed.history.len(), unobserved.history.len());
}
