//! # fs-compress — pluggable update compression
//!
//! FederatedScope's exchange loop moves model parameters every round, and on
//! realistic deployments the uplink is the bottleneck (§5 of the paper charges
//! communication in the virtual-time cost model). This crate provides the
//! compression layer between a trainer's [`fs_tensor::ParamMap`] and the bytes
//! that actually cross the wire:
//!
//! * [`Identity`] — dense f32 passthrough, the baseline.
//! * [`UniformQuant`] — 8-bit or 4-bit linear quantization with per-tensor
//!   min/max, bounding per-value error by `range / (2^bits - 1)`.
//! * [`TopK`] — magnitude sparsification with client-side error-feedback
//!   residuals, so mass dropped in one round is re-injected the next.
//! * [`DeltaEncode`] — encodes the difference against the last broadcast
//!   model, composable with either of the above (quantizing a small-range
//!   delta is far more precise than quantizing raw weights).
//!
//! The [`CompressedBlock`] container has an exact, validated byte codec
//! ([`encode_block`] / [`decode_block`]) that `fs-net` embeds in its message
//! framing, and whose [`CompressedBlock::encoded_len`] the simulator uses to
//! charge *actual* bytes instead of `4 × numel`.
//!
//! Everything here is deterministic: same inputs and same compressor state
//! produce identical bytes, so seeded courses stay reproducible.

// Library code must surface malformed input as typed errors, never panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod block;
mod compressors;

pub use block::{
    decode_block, encode_block, packed_len, put_block, take_block, BlockCodecError,
    CompressedBlock, CompressedTensor, Encoding,
};
pub use compressors::{
    decompress, Compressor, DecompressError, DeltaEncode, Identity, TopK, UniformQuant,
};
