//! **Proposition 1** (§3.3.3) — empirical validation of the asynchronous
//! convergence bound.
//!
//! The proposition states, for an L-smooth µ-strongly-convex objective with
//! `0 < µQη < 1`:
//!
//! ```text
//! E[F(θ_T) − F*] ≤ (1 − µQη)^T E[F(θ_0) − F*]
//!                + (3LQη/µ)(σl²+σg²+C) [ ηQL(τ_max²+1) + 1/2 ]
//! ```
//!
//! i.e. (a) geometric convergence toward (b) an error floor that grows with
//! the maximum staleness τ_max. We run asynchronous FedAvg-style updates
//! (Eq. 5: clients take Q local SGD steps from a staled iterate) on a
//! strongly-convex quadratic federation and verify both parts: a log-linear
//! early phase and a floor monotone in τ_max.
//!
//! ```text
//! cargo run -p fs-bench --release --bin exp_prop1
//! ```

use fs_bench::output::{render_table, write_json};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::Serialize;

const DIM: usize = 8;
const M_CLIENTS: usize = 10;
const Q: usize = 4;
const ETA: f64 = 0.02;

/// Client i's objective: F_i(θ) = 1/2 (θ − b_i)ᵀ A_i (θ − b_i), with A_i
/// diagonal positive — µ-strongly convex and L-smooth by construction.
struct Client {
    a: Vec<f64>,
    b: Vec<f64>,
}

impl Client {
    /// Stochastic gradient at θ: exact gradient plus Gaussian noise (σl).
    fn grad(&self, theta: &[f64], rng: &mut StdRng) -> Vec<f64> {
        let noise = Normal::new(0.0, 0.05).expect("valid");
        theta
            .iter()
            .zip(&self.a)
            .zip(&self.b)
            .map(|((&t, &a), &b)| a * (t - b) + noise.sample(rng))
            .collect()
    }
}

fn global_optimum(clients: &[Client]) -> Vec<f64> {
    // F = mean of quadratics: optimum solves (Σ A_i) θ = Σ A_i b_i
    (0..DIM)
        .map(|d| {
            let num: f64 = clients.iter().map(|c| c.a[d] * c.b[d]).sum();
            let den: f64 = clients.iter().map(|c| c.a[d]).sum();
            num / den
        })
        .collect()
}

fn objective(clients: &[Client], theta: &[f64]) -> f64 {
    clients
        .iter()
        .map(|c| {
            0.5 * theta
                .iter()
                .zip(&c.a)
                .zip(&c.b)
                .map(|((&t, &a), &b)| a * (t - b) * (t - b))
                .sum::<f64>()
        })
        .sum::<f64>()
        / clients.len() as f64
}

/// Runs T rounds of Eq. (5): every round, each participating client starts
/// from the iterate that is `τ ~ U{0..τ_max}` versions old, takes Q SGD
/// steps, and the server averages the deltas.
fn run_async(clients: &[Client], tau_max: usize, t_rounds: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut theta = vec![0.0f64; DIM];
    let mut history: Vec<Vec<f64>> = vec![theta.clone()];
    let mut gaps = Vec::with_capacity(t_rounds);
    let f_star = objective(clients, &global_optimum(clients));
    for _ in 0..t_rounds {
        let mut delta = vec![0.0f64; DIM];
        for c in clients {
            // staled start iterate
            let tau = if tau_max == 0 {
                0
            } else {
                rng.gen_range(0..=tau_max)
            };
            let idx = history.len().saturating_sub(1 + tau);
            let mut local = history[idx].clone();
            for _ in 0..Q {
                let g = c.grad(&local, &mut rng);
                for (l, gi) in local.iter_mut().zip(&g) {
                    *l -= ETA * gi;
                }
            }
            let start = &history[idx];
            for ((d, l), s) in delta.iter_mut().zip(&local).zip(start) {
                *d += (l - s) / M_CLIENTS as f64;
            }
        }
        for (t, d) in theta.iter_mut().zip(&delta) {
            *t += d;
        }
        history.push(theta.clone());
        if history.len() > 64 {
            history.remove(0);
        }
        gaps.push(objective(clients, &theta) - f_star);
    }
    gaps
}

#[derive(Serialize)]
struct Prop1Result {
    tau_max: usize,
    final_gap: f64,
    /// gap at a quarter of the course — used for the geometric-phase check
    quarter_gap: f64,
    gaps: Vec<f64>,
}

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let clients: Vec<Client> = (0..M_CLIENTS)
        .map(|_| Client {
            a: (0..DIM).map(|_| 0.5 + rng.gen::<f64>()).collect(), // µ ≥ 0.5, L ≤ 1.5
            b: (0..DIM).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect(),
        })
        .collect();
    let t_rounds = 400;
    let mut results = Vec::new();
    for tau_max in [0usize, 4, 16, 48] {
        // average the floor over a few seeds for stability
        let mut final_gap = 0.0;
        let mut quarter_gap = 0.0;
        let mut gaps = Vec::new();
        let seeds = 5;
        for s in 0..seeds {
            let g = run_async(&clients, tau_max, t_rounds, 100 + s);
            final_gap += g[t_rounds - 50..].iter().sum::<f64>() / 50.0 / seeds as f64;
            quarter_gap += g[t_rounds / 4] / seeds as f64;
            if s == 0 {
                gaps = g;
            }
        }
        eprintln!("  tau_max={tau_max}: floor {final_gap:.6}, quarter {quarter_gap:.6}");
        results.push(Prop1Result {
            tau_max,
            final_gap,
            quarter_gap,
            gaps,
        });
    }
    println!(
        "\nProposition 1 — error floor vs maximum staleness (µQη = {:.3} < 1)\n",
        0.5 * Q as f64 * ETA
    );
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.tau_max.to_string(),
                format!("{:.6}", r.quarter_gap),
                format!("{:.6}", r.final_gap),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["tau_max", "gap @ T/4", "floor (last 50 rounds)"], &rows)
    );
    // geometric phase: the synchronous run's early gaps decay log-linearly
    let sync = &results[0].gaps;
    let ratio1 = sync[40] / sync[20];
    let ratio2 = sync[60] / sync[40];
    println!(
        "geometric-decay check (sync): gap ratios over equal spans {:.3} vs {:.3}",
        ratio1, ratio2
    );
    let path = write_json("prop1", &results).expect("write results");
    println!("wrote {path}");
}
